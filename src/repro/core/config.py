"""Configuration for a KathDB instance."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

from repro.datamodel.lineage import LINEAGE_LEVEL_OFF, LINEAGE_LEVEL_ROW, LINEAGE_LEVEL_TABLE
from repro.errors import KathDBError


@dataclass
class KathDBConfig:
    """Everything tunable about a KathDB instance.

    The defaults reproduce the paper's prototype behaviour; the benchmark
    harness varies individual knobs (lineage level, rewrites, fusion, variant
    overrides, interaction modes) for the ablations.
    """

    seed: int = 0
    # Simulated-model noise.
    vlm_error_rate: float = 0.05
    ocr_error_rate: float = 0.02
    # Lineage tracking level: "row", "table", or "off".
    lineage_level: str = LINEAGE_LEVEL_ROW
    # Optimizer behaviour.
    enable_pushdown: bool = True
    enable_fusion: bool = False
    explore_variants: bool = True
    max_variants: int = 3
    parallel_codegen: bool = False
    variant_overrides: Dict[str, str] = field(default_factory=dict)
    optimizer_sample_size: int = 4
    min_accuracy: float = 0.88
    # Offline profiling: reuse per-(family, variant) profiling statistics across
    # queries instead of re-profiling every candidate on sample rows.
    enable_profile_cache: bool = False
    profile_cache_path: Optional[Union[str, Path]] = None
    # Durable skill store: persist validated FAOs (code + signature
    # fingerprint + profile + critic verdict) and reuse them across restarts
    # after revalidation on sampled live data.  Backends: "memory" (default),
    # "file" (atomic JSON directory), "sqlite".  Setting a path with the
    # default backend promotes it to "file".  When the store is enabled the
    # profile cache persists through the same backend.
    enable_skill_store: bool = False
    skill_store_backend: str = "memory"
    skill_store_path: Optional[Union[str, Path]] = None
    # Minimum cosine similarity between signature texts for a stored skill to
    # be considered a near-match candidate for a new predicate.
    skill_retrieval_threshold: float = 0.9
    # Vectorized execution: batchable FAO bodies and the view populators
    # collect per-row model inputs into column vectors and issue one batched
    # call per chunk of this many rows (sub-linear token cost; results are
    # bit-identical to the serial path).  Disabling restores row-at-a-time
    # model access everywhere.
    enable_vectorized_execution: bool = True
    vectorized_batch_size: int = 32
    # Parser interaction modes.
    proactive_clarification: bool = True
    reactive_correction: bool = True
    max_correction_rounds: int = 4
    # Execution behaviour.
    monitor_enabled: bool = True
    monitor_sample_size: int = 5
    max_repair_rounds: int = 3
    # Fault injection for repair demonstrations (node name -> fault kind).
    fault_injection: Dict[str, str] = field(default_factory=dict)
    # Where generated functions are persisted (None = in-memory only).
    workspace: Optional[Union[str, Path]] = None
    # Service layer: default worker-thread count for query batches.
    service_max_workers: int = 4
    # Prepared queries: cache parse+optimize results keyed on the normalized
    # NL query, the catalog fingerprint, and the user's interaction script.
    enable_prepared_cache: bool = True
    prepared_cache_size: int = 64
    # When > 0, every simulated model call sleeps its synthetic latency times
    # this factor (like a real network-bound model call would), so concurrency
    # benchmarks measure genuine overlap rather than GIL contention.
    simulate_model_latency: float = 0.0
    # Model gateway: the shared front door for all foundation-model traffic
    # (service sessions only; the legacy single-user facade keeps its
    # historical direct accounting).  See src/repro/gateway/.
    enable_model_gateway: bool = True
    # Exact-match result cache (and the semantic tier riding on it).
    enable_model_cache: bool = True
    gateway_cache_entries: int = 4096
    gateway_cache_token_budget: Optional[int] = None
    # Durable gateway cache: persist the exact tier's non-volatile entries
    # and the semantic tier's (group, signature, answer) records through the
    # same pluggable backends as the skill store ("memory" = process-local
    # only, "file" = atomic JSON directory, "sqlite").  A restarted service
    # pointed at the same path starts with a warm exact cache and rebuilds
    # the semantic LSH index from the persisted signatures.  Setting a path
    # with the default backend promotes it to "file".
    gateway_cache_backend: str = "memory"
    gateway_cache_path: Optional[Union[str, Path]] = None
    # In-flight coalescing of identical concurrent calls.
    enable_request_coalescing: bool = True
    # Micro-batching of batchable kinds (embeddings, NER, detector).  A None
    # window auto-selects: a few ms when model latency is simulated (there is
    # wall-clock to amortize), zero (pure pass-through batching) otherwise.
    enable_micro_batching: bool = True
    gateway_batch_window_s: Optional[float] = None
    gateway_max_batch: int = 32
    # Semantic near-match tier for embeddings-backed predicates.  On by
    # default since the ANN graduation: benchmarks/bench_semantic.py measures
    # the tier's accuracy against exact execution, and the shipped default
    # threshold is the one it proves produces zero false accepts on the
    # scoring workload (below-threshold lookups always fall back to exact
    # execution).  The sweep shows looser thresholds (0.97, 0.995) serving
    # wrong answers to near-boundary requests — one extra term on a long
    # candidate list — so the default only reuses answers whose signatures
    # embed identically (case/order/format variants of the same request,
    # which exact caching cannot dedup).  Disable for bit-identical-to-
    # uncached runs.
    enable_semantic_cache: bool = True
    semantic_similarity_threshold: float = 0.999
    # Lookup structure: "ann" (multi-probe LSH over signature vectors,
    # lookup cost independent of entry count) or "linear" (exhaustive scan).
    semantic_cache_mode: str = "ann"
    # ANN geometry: hyperplanes per bucket key (more planes = smaller,
    # better-separated buckets) and near-bucket probes per lookup (more
    # probes = higher recall at slightly higher lookup cost).
    semantic_ann_planes: int = 16
    semantic_ann_probes: int = 8
    # Admission control.
    gateway_max_concurrency: int = 16
    session_token_quota: Optional[int] = None
    # LRU bound on the gateway's per-session stats/ledger entries.  Lower it
    # for workloads dominated by throwaway per-request sessions (e.g. steady
    # benchmark loops) so the tracked set reaches a fixed size instead of
    # growing toward the default for hours.
    gateway_max_tracked_sessions: int = 4096
    # Observability (src/repro/obs/): per-query trace trees fed into the
    # service's MetricsRegistry and trace sinks.  Tracing is on by default —
    # benchmarks/bench_observability.py holds its overhead under 5% wall
    # time and 0 extra tokens (spans never call models).
    enable_tracing: bool = True
    # How many finished traces service.traces() retains in memory.
    trace_buffer_size: int = 256
    # When set, every finished trace is appended to this JSONL file.
    trace_jsonl_path: Optional[Union[str, Path]] = None
    # When set, queries slower than this end-to-end land in the service's
    # SlowQueryLog ring (surfaced by service.describe() and --slow-query-ms)
    # with their slowest operator span pinned.
    slow_query_ms: Optional[float] = None
    # Admission scheduler (src/repro/sched/): multi-tenant fair-share queues
    # over the service worker pool.  Requests carry tenant/priority/deadline
    # (QueryRequest fields); per-tenant queues inside each priority class are
    # drained by deficit round-robin, classes hold concurrency reservations,
    # full queues shed with a structured rejection, and lapsed deadlines
    # cancel before dispatch.  Off = the legacy flat thread pool (shards in a
    # ShardedService run with this off — the coordinator schedules once).
    enable_scheduler: bool = True
    # Per-tenant, per-class bounded queue depth; submissions beyond it shed
    # with reason "backpressure" instead of blocking.
    sched_queue_limit: int = 64
    # Worker-slot reservations per priority class ({"interactive": 2, ...}).
    # Empty = auto split: interactive half, batch a quarter, background the
    # rest.  Reservations are minimum guarantees; idle slots are borrowable.
    sched_class_reservations: Dict[str, int] = field(default_factory=dict)
    # Deficit-round-robin weights per tenant id (default 1.0 each): a tenant
    # with weight 2 drains twice as fast as a weight-1 tenant under load.
    sched_tenant_weights: Dict[str, float] = field(default_factory=dict)
    # Priority class used when a request names none.
    sched_default_priority: str = "interactive"

    def __post_init__(self):
        if self.lineage_level not in (LINEAGE_LEVEL_ROW, LINEAGE_LEVEL_TABLE, LINEAGE_LEVEL_OFF):
            raise KathDBError(f"invalid lineage_level: {self.lineage_level!r}")
        if not 0.0 <= self.vlm_error_rate <= 1.0:
            raise KathDBError("vlm_error_rate must be in [0, 1]")
        if self.max_variants < 1:
            raise KathDBError("max_variants must be at least 1")
        if self.service_max_workers < 1:
            raise KathDBError("service_max_workers must be at least 1")
        if self.prepared_cache_size < 1:
            raise KathDBError("prepared_cache_size must be at least 1")
        if self.simulate_model_latency < 0:
            raise KathDBError("simulate_model_latency must be non-negative")
        if self.vectorized_batch_size < 1:
            raise KathDBError("vectorized_batch_size must be at least 1")
        if self.gateway_cache_entries < 1:
            raise KathDBError("gateway_cache_entries must be at least 1")
        if self.gateway_cache_path is not None and self.gateway_cache_backend == "memory":
            # A path means the caller wants durability; default to files.
            self.gateway_cache_backend = "file"
        if self.gateway_cache_backend not in ("memory", "file", "sqlite"):
            raise KathDBError(
                "gateway_cache_backend must be 'memory', 'file', or 'sqlite'")
        if self.gateway_cache_backend != "memory" and self.gateway_cache_path is None:
            raise KathDBError(
                f"gateway_cache_backend {self.gateway_cache_backend!r} "
                "requires gateway_cache_path")
        if self.gateway_batch_window_s is not None and self.gateway_batch_window_s < 0:
            raise KathDBError("gateway_batch_window_s must be non-negative")
        if self.gateway_max_batch < 1:
            raise KathDBError("gateway_max_batch must be at least 1")
        if not 0.0 < self.semantic_similarity_threshold <= 1.0:
            raise KathDBError("semantic_similarity_threshold must be in (0, 1]")
        if self.semantic_cache_mode not in ("linear", "ann"):
            raise KathDBError("semantic_cache_mode must be 'linear' or 'ann'")
        if not 1 <= self.semantic_ann_planes <= 64:
            raise KathDBError("semantic_ann_planes must be in [1, 64]")
        if self.semantic_ann_probes < 0:
            raise KathDBError("semantic_ann_probes must be non-negative")
        if self.gateway_max_concurrency < 1:
            raise KathDBError("gateway_max_concurrency must be at least 1")
        if self.gateway_max_tracked_sessions < 1:
            raise KathDBError("gateway_max_tracked_sessions must be at least 1")
        if self.skill_store_path is not None and self.skill_store_backend == "memory":
            # A path means the caller wants durability; default to files.
            self.skill_store_backend = "file"
        if self.skill_store_backend not in ("memory", "file", "sqlite"):
            raise KathDBError("skill_store_backend must be 'memory', 'file', or 'sqlite'")
        if self.enable_skill_store and self.skill_store_backend != "memory" \
                and self.skill_store_path is None:
            raise KathDBError(
                f"skill_store_backend {self.skill_store_backend!r} requires skill_store_path")
        if not 0.0 < self.skill_retrieval_threshold <= 1.0:
            raise KathDBError("skill_retrieval_threshold must be in (0, 1]")
        if self.session_token_quota is not None and self.session_token_quota < 1:
            raise KathDBError("session_token_quota must be positive when set")
        if self.trace_buffer_size < 1:
            raise KathDBError("trace_buffer_size must be at least 1")
        if self.sched_queue_limit < 1:
            raise KathDBError("sched_queue_limit must be at least 1")
        from repro.sched.scheduler import PRIORITY_CLASSES
        if self.sched_default_priority not in PRIORITY_CLASSES:
            raise KathDBError(
                f"sched_default_priority must be one of {PRIORITY_CLASSES}")
        for sched_class, slots in self.sched_class_reservations.items():
            if sched_class not in PRIORITY_CLASSES:
                raise KathDBError(
                    f"unknown priority class in sched_class_reservations: "
                    f"{sched_class!r}")
            if int(slots) < 0:
                raise KathDBError("sched_class_reservations values must be >= 0")
        for tenant, weight in self.sched_tenant_weights.items():
            if float(weight) <= 0:
                raise KathDBError(
                    f"sched_tenant_weights[{tenant!r}] must be positive")
        if self.slow_query_ms is not None and self.slow_query_ms < 0:
            raise KathDBError("slow_query_ms must be non-negative when set")

    def effective_batch_size(self) -> int:
        """The vectorization chunk size execution should use (1 = serial).

        Clamped to ``gateway_max_batch`` when the gateway is on: the batch
        client re-chunks at that bound anyway, and the optimizer's setup
        pricing must count the same number of chunks execution will pay for.
        """
        if not self.enable_vectorized_execution:
            return 1
        if self.enable_model_gateway:
            return min(self.vectorized_batch_size, self.gateway_max_batch)
        return self.vectorized_batch_size

    def gateway_config(self):
        """The :class:`~repro.gateway.gateway.GatewayConfig` these knobs imply,
        or None when the gateway is disabled."""
        if not self.enable_model_gateway:
            return None
        from repro.gateway.gateway import GatewayConfig
        window = self.gateway_batch_window_s
        if window is None:
            window = 0.004 if self.simulate_model_latency > 0 else 0.0
        return GatewayConfig(
            enable_cache=self.enable_model_cache,
            cache_entries=self.gateway_cache_entries,
            cache_token_budget=self.gateway_cache_token_budget,
            enable_coalescing=self.enable_request_coalescing,
            enable_batching=self.enable_micro_batching,
            batch_window_s=window,
            max_batch=self.gateway_max_batch,
            enable_semantic=self.enable_semantic_cache,
            semantic_threshold=self.semantic_similarity_threshold,
            semantic_mode=self.semantic_cache_mode,
            semantic_planes=self.semantic_ann_planes,
            semantic_probes=self.semantic_ann_probes,
            max_concurrency=self.gateway_max_concurrency,
            session_token_quota=self.session_token_quota,
            max_tracked_sessions=self.gateway_max_tracked_sessions)

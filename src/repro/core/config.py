"""Configuration for a KathDB instance."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

from repro.datamodel.lineage import LINEAGE_LEVEL_OFF, LINEAGE_LEVEL_ROW, LINEAGE_LEVEL_TABLE
from repro.errors import KathDBError


@dataclass
class KathDBConfig:
    """Everything tunable about a KathDB instance.

    The defaults reproduce the paper's prototype behaviour; the benchmark
    harness varies individual knobs (lineage level, rewrites, fusion, variant
    overrides, interaction modes) for the ablations.
    """

    seed: int = 0
    # Simulated-model noise.
    vlm_error_rate: float = 0.05
    ocr_error_rate: float = 0.02
    # Lineage tracking level: "row", "table", or "off".
    lineage_level: str = LINEAGE_LEVEL_ROW
    # Optimizer behaviour.
    enable_pushdown: bool = True
    enable_fusion: bool = False
    explore_variants: bool = True
    max_variants: int = 3
    parallel_codegen: bool = False
    variant_overrides: Dict[str, str] = field(default_factory=dict)
    optimizer_sample_size: int = 4
    min_accuracy: float = 0.88
    # Offline profiling: reuse per-(family, variant) profiling statistics across
    # queries instead of re-profiling every candidate on sample rows.
    enable_profile_cache: bool = False
    profile_cache_path: Optional[Union[str, Path]] = None
    # Parser interaction modes.
    proactive_clarification: bool = True
    reactive_correction: bool = True
    max_correction_rounds: int = 4
    # Execution behaviour.
    monitor_enabled: bool = True
    monitor_sample_size: int = 5
    max_repair_rounds: int = 3
    # Fault injection for repair demonstrations (node name -> fault kind).
    fault_injection: Dict[str, str] = field(default_factory=dict)
    # Where generated functions are persisted (None = in-memory only).
    workspace: Optional[Union[str, Path]] = None
    # Service layer: default worker-thread count for query batches.
    service_max_workers: int = 4
    # Prepared queries: cache parse+optimize results keyed on the normalized
    # NL query, the catalog fingerprint, and the user's interaction script.
    enable_prepared_cache: bool = True
    prepared_cache_size: int = 64
    # When > 0, every simulated model call sleeps its synthetic latency times
    # this factor (like a real network-bound model call would), so concurrency
    # benchmarks measure genuine overlap rather than GIL contention.
    simulate_model_latency: float = 0.0

    def __post_init__(self):
        if self.lineage_level not in (LINEAGE_LEVEL_ROW, LINEAGE_LEVEL_TABLE, LINEAGE_LEVEL_OFF):
            raise KathDBError(f"invalid lineage_level: {self.lineage_level!r}")
        if not 0.0 <= self.vlm_error_rate <= 1.0:
            raise KathDBError("vlm_error_rate must be in [0, 1]")
        if self.max_variants < 1:
            raise KathDBError("max_variants must be at least 1")
        if self.service_max_workers < 1:
            raise KathDBError("service_max_workers must be at least 1")
        if self.prepared_cache_size < 1:
            raise KathDBError("prepared_cache_size must be at least 1")
        if self.simulate_model_latency < 0:
            raise KathDBError("simulate_model_latency must be non-negative")

"""The KathDB facade: configuration plus the top-level system object.

``KathDB`` is imported lazily: the api package (sessions/service) depends on
:mod:`repro.core.stack` and :mod:`repro.core.config`, while the facade in turn
depends on the api package — eager re-export here would close that cycle.
"""

from repro.core.config import KathDBConfig

__all__ = ["KathDBConfig", "KathDB"]


def __getattr__(name):
    if name == "KathDB":
        from repro.core.kathdb import KathDB
        return KathDB
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

"""The KathDB facade: configuration plus the top-level system object."""

from repro.core.config import KathDBConfig
from repro.core.kathdb import KathDB

__all__ = ["KathDBConfig", "KathDB"]

"""The KathDB system facade.

Wires together every subsystem described in the paper (Figure 1): the
simulated foundation models, the relational catalog with its multimodal
views, the interactive NL parser, the plan writer/verifier loop, the
cost-based optimizer with its coder/profiler/critic agents, the execution
engine with lineage + on-the-fly repair + semantic monitoring, and the
result explainer.

Since the session/service redesign this facade is a thin backward-compatible
wrapper over one *default session* of a :class:`~repro.api.service.KathDBService`:
the default session shares the facade's model suite and lineage store (so the
historical single-user accounting is unchanged), while :meth:`session` hands
out fully isolated sessions and :attr:`service` exposes the concurrent
request/response API.

Typical use::

    db = KathDB(KathDBConfig(seed=7))
    db.load_corpus(build_movie_corpus(size=20, seed=7))
    user = ScriptedUser({"exciting": "...uncommon scenes..."},
                        ["I prefer more recent movies as well when scoring"])
    result = db.query("Sort the films in the table by how exciting they are, "
                      "but the poster should be 'boring'.", user=user)
    print(result.final_table.pretty())
    print(db.explain_pipeline(result))
    print(db.explain_tuple(result, result.rows()[0]["lid"]).describe())
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.api.request import QueryOptions, QueryRequest
from repro.api.service import KathDBService
from repro.api.session import Session
from repro.core.config import KathDBConfig
from repro.data.mmqa import MovieCorpus
from repro.datamodel.views import PopulationReport
from repro.errors import PlanVerificationError
from repro.executor.result import QueryResult
from repro.explain.explainer import TupleExplanation
from repro.interaction.channel import InteractionChannel, Transcript
from repro.interaction.user import SilentUser, UserAgent
from repro.parser.logical_plan import LogicalPlan
from repro.parser.nl_parser import ParseOutcome
from repro.parser.plan_verifier import VerificationReport


class KathDB:
    """The explainable multimodal DBMS with human-AI collaboration."""

    def __init__(self, config: Optional[KathDBConfig] = None):
        self.config = config or KathDBConfig()
        self.service = KathDBService(self.config)
        # Shared-core aliases (unchanged public surface).
        self.models = self.service.models
        self.catalog = self.service.catalog
        self.lineage = self.service.lineage
        self.registry = self.service.registry
        self.populator = self.service.populator
        self.profile_cache = self.service.profile_cache
        self.skill_store = self.service.skill_store
        # The default session shares the facade's models and lineage store, so
        # single-user behaviour (token ledger, lid sequence) is identical to
        # the pre-session design.
        self._session = Session(self.service, "default",
                                models=self.models, lineage=self.lineage)
        stack = self._session.stack
        self.coder = stack.coder
        self.parser = stack.parser
        self.plan_generator = stack.plan_generator
        self.plan_verifier = stack.plan_verifier
        self.optimizer = stack.optimizer
        self.engine = stack.engine
        self.explainer = stack.explainer
        self.lineage_qa = stack.lineage_qa
        self.population_report: Optional[PopulationReport] = None
        self.last_result: Optional[QueryResult] = None

    # -- sessions ----------------------------------------------------------------------
    @property
    def default_session(self) -> Session:
        """The session behind :meth:`query` (shares this facade's state)."""
        return self._session

    def session(self, user: Optional[UserAgent] = None) -> Session:
        """A fresh *isolated* session over this instance's loaded corpus."""
        return self.service.session(user=user)

    # -- data loading ------------------------------------------------------------------
    def load_corpus(self, corpus: MovieCorpus, populate_views: bool = True) -> PopulationReport:
        """Load a multimodal corpus: base tables plus the modality views.

        This is the paper's "pre-written view-population function" step: it is
        the only part of the pipeline that is not generated per query.
        """
        self.population_report = self.service.load_corpus(corpus,
                                                          populate_views=populate_views)
        return self.population_report

    # -- querying --------------------------------------------------------------------------
    def query(self, nl_query: str, user: Optional[UserAgent] = None,
              transcript: Optional[Transcript] = None,
              options: Optional[QueryOptions] = None) -> QueryResult:
        """Answer one NL query end to end (parse -> plan -> optimize -> execute).

        The facade keeps its historical semantics: every call gets a fresh
        transcript (unless one is passed in) and re-parses/re-optimizes from
        scratch (no prepared-plan reuse — pass ``options`` with
        ``use_prepared=True`` or use :meth:`session` / :attr:`service` to opt
        into the cache).
        """
        request = QueryRequest(nl_query=nl_query, user=user or SilentUser(),
                               options=options or QueryOptions(use_prepared=False),
                               transcript=transcript if transcript is not None
                               else Transcript())
        response = self._session.query(request)
        self.last_result = response.result
        return response.result

    def parse_and_plan(self, nl_query: str,
                       channel: InteractionChannel,
                       max_plan_rounds: int = 3
                       ) -> Tuple[ParseOutcome, LogicalPlan, VerificationReport]:
        """Run the parser and the plan writer/verifier loop for one query."""
        parse_outcome = self.parser.parse(nl_query, channel)
        plan = self.plan_generator.generate(parse_outcome.sketch, parse_outcome.intent)
        report = self.plan_verifier.verify(plan)
        rounds = 0
        while not report.approved and rounds < max_plan_rounds:
            plan = self.plan_generator.revise(plan, report.hints)
            report = self.plan_verifier.verify(plan)
            rounds += 1
        if not report.approved:
            raise PlanVerificationError(
                "the plan verifier rejected the logical plan after "
                f"{max_plan_rounds} revision rounds: {report.problems}")
        return parse_outcome, plan, report

    # -- explanation -----------------------------------------------------------------------
    def explain_pipeline(self, result: Optional[QueryResult] = None) -> str:
        """Coarse-grained explanation of the latest (or given) query."""
        return self.explainer.explain_pipeline(self._result(result))

    def explain_tuple(self, result: Optional[QueryResult], lid: int) -> TupleExplanation:
        """Fine-grained explanation of one output tuple by lineage id."""
        return self.explainer.explain_tuple(self._result(result), lid)

    def ask(self, question: str, result: Optional[QueryResult] = None) -> str:
        """Free-form NL question over the latest (or given) query's lineage."""
        resolved = self._result(result)
        answer = self.lineage_qa.ask(question, resolved)
        if resolved.transcript is not None:
            channel = InteractionChannel(SilentUser(), resolved.transcript)
            channel.record_explanation_request(question, answer)
        return answer

    def _result(self, result: Optional[QueryResult]) -> QueryResult:
        resolved = result or self.last_result
        if resolved is None:
            raise ValueError("no query has been executed yet")
        return resolved

    # -- versioning: roll-backs and iterative refinement --------------------------------------
    def rollback_function(self, name: str):
        """Return the previous version of a generated function (paper Section 4).

        Versions are immutable; this only *selects* the earlier implementation.
        Combine with :meth:`rerun_with_versions` to re-execute the last query
        using it.
        """
        return self.registry.rollback(name)

    def rerun_with_versions(self, result: Optional[QueryResult] = None,
                            versions: Optional[Dict[str, int]] = None,
                            user: Optional[UserAgent] = None) -> QueryResult:
        """Re-execute a query's physical plan with specific function versions.

        ``versions`` maps function names to the version id to use (e.g. the one
        returned by :meth:`rollback_function`); unmentioned operators keep the
        implementation the optimizer chose.  This is the paper's "safe
        roll-backs to a prior version" / iterative-refinement workflow.  The
        rerun *continues the source result's transcript*, so the explanation
        history of the original run is preserved alongside the new turns.
        """
        source = self._result(result)
        if source.physical_plan is None:
            raise ValueError("the result carries no physical plan to re-run")
        plan = source.physical_plan.clone().pin_versions(self.registry, versions or {})
        channel = InteractionChannel(user or SilentUser(), source.transcript)
        rerun = self.engine.execute(plan, channel, nl_query=source.nl_query)
        rerun.sketch = source.sketch
        rerun.intent = source.intent
        rerun.logical_plan = source.logical_plan
        self.last_result = rerun
        self._session.last_result = rerun
        return rerun

    # -- introspection ----------------------------------------------------------------------
    @property
    def cost_meter(self):
        """The shared token/cost ledger."""
        return self.models.cost_meter

    def total_tokens(self) -> int:
        """Total tokens spent by this instance so far."""
        return self.models.cost_meter.total_tokens

    def function_versions(self) -> Dict[str, int]:
        """function name -> number of generated versions."""
        return {name: self.registry.version_count(name) for name in self.registry.names()}

    def describe_catalog(self, kinds: Optional[List[str]] = None) -> str:
        """The system-catalog description handed to the agents."""
        return self.catalog.describe(kinds=kinds)

"""The KathDB system facade.

Wires together every subsystem described in the paper (Figure 1): the
simulated foundation models, the relational catalog with its multimodal
views, the interactive NL parser, the plan writer/verifier loop, the
cost-based optimizer with its coder/profiler/critic agents, the execution
engine with lineage + on-the-fly repair + semantic monitoring, and the
result explainer.

Typical use::

    db = KathDB(KathDBConfig(seed=7))
    db.load_corpus(build_movie_corpus(size=20, seed=7))
    user = ScriptedUser({"exciting": "...uncommon scenes..."},
                        ["I prefer more recent movies as well when scoring"])
    result = db.query("Sort the films in the table by how exciting they are, "
                      "but the poster should be 'boring'.", user=user)
    print(result.final_table.pretty())
    print(db.explain_pipeline(result))
    print(db.explain_tuple(result, result.rows()[0]["lid"]).describe())
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.config import KathDBConfig
from repro.data.mmqa import MovieCorpus
from repro.datamodel.lineage import LineageStore
from repro.datamodel.views import PopulationReport, ViewPopulator
from repro.errors import PlanVerificationError
from repro.executor.engine import ExecutionEngine
from repro.executor.monitor import ExecutionMonitor
from repro.executor.result import QueryResult
from repro.explain.explainer import Explainer, TupleExplanation
from repro.explain.lineage_query import LineageQueryInterface
from repro.fao.codegen import Coder
from repro.fao.registry import FunctionRegistry
from repro.interaction.channel import InteractionChannel, Transcript
from repro.interaction.user import SilentUser, UserAgent
from repro.models.base import ModelSuite
from repro.optimizer.optimizer import OptimizationReport, QueryOptimizer
from repro.optimizer.physical_plan import PhysicalOperator, PhysicalPlan
from repro.optimizer.profile_cache import ProfileCache
from repro.parser.nl_parser import NLParser, ParseOutcome
from repro.parser.plan_generator import LogicalPlanGenerator
from repro.parser.plan_verifier import PlanVerifier, VerificationReport
from repro.parser.logical_plan import LogicalPlan
from repro.relational.catalog import Catalog


class KathDB:
    """The explainable multimodal DBMS with human-AI collaboration."""

    def __init__(self, config: Optional[KathDBConfig] = None):
        self.config = config or KathDBConfig()
        self.models = ModelSuite.create(seed=self.config.seed,
                                        vlm_error_rate=self.config.vlm_error_rate,
                                        ocr_error_rate=self.config.ocr_error_rate)
        self.catalog = Catalog()
        self.lineage = LineageStore(level=self.config.lineage_level)
        self.registry = FunctionRegistry(workspace=self.config.workspace)
        self.coder = Coder(self.models, fault_injection=dict(self.config.fault_injection))
        self.populator = ViewPopulator(self.models, self.catalog, self.lineage)
        self.parser = NLParser(self.models,
                               proactive=self.config.proactive_clarification,
                               reactive=self.config.reactive_correction,
                               max_correction_rounds=self.config.max_correction_rounds)
        self.plan_generator = LogicalPlanGenerator(self.models, self.catalog)
        self.plan_verifier = PlanVerifier(self.models, self.catalog)
        self.profile_cache = (ProfileCache(path=self.config.profile_cache_path)
                              if self.config.enable_profile_cache else None)
        self.optimizer = QueryOptimizer(
            self.models, self.catalog, self.registry, coder=self.coder,
            enable_pushdown=self.config.enable_pushdown,
            enable_fusion=self.config.enable_fusion,
            explore_variants=self.config.explore_variants,
            max_variants=self.config.max_variants,
            parallel=self.config.parallel_codegen,
            variant_overrides=dict(self.config.variant_overrides),
            sample_size=self.config.optimizer_sample_size,
            max_repair_rounds=self.config.max_repair_rounds,
            min_accuracy=self.config.min_accuracy,
            profile_cache=self.profile_cache)
        self.engine = ExecutionEngine(
            self.models, self.catalog, self.lineage, self.registry, coder=self.coder,
            monitor=ExecutionMonitor(self.models, sample_size=self.config.monitor_sample_size,
                                     enabled=self.config.monitor_enabled),
            max_repair_rounds=self.config.max_repair_rounds)
        self.explainer = Explainer(self.models, registry=self.registry)
        self.lineage_qa = LineageQueryInterface(self.models, self.explainer)
        self.population_report: Optional[PopulationReport] = None
        self.last_result: Optional[QueryResult] = None

    # -- data loading ------------------------------------------------------------------
    def load_corpus(self, corpus: MovieCorpus, populate_views: bool = True) -> PopulationReport:
        """Load a multimodal corpus: base tables plus the modality views.

        This is the paper's "pre-written view-population function" step: it is
        the only part of the pipeline that is not generated per query.
        """
        self.population_report = self.populator.load_corpus(corpus, populate_views=populate_views)
        return self.population_report

    # -- querying --------------------------------------------------------------------------
    def query(self, nl_query: str, user: Optional[UserAgent] = None,
              transcript: Optional[Transcript] = None) -> QueryResult:
        """Answer one NL query end to end (parse -> plan -> optimize -> execute)."""
        channel = InteractionChannel(user or SilentUser(), transcript)
        parse_outcome, logical_plan, verification = self.parse_and_plan(nl_query, channel)
        physical_plan, optimization = self.optimizer.optimize(logical_plan)
        result = self.engine.execute(physical_plan, channel, nl_query=nl_query)
        result.sketch = parse_outcome.sketch
        result.intent = parse_outcome.intent
        result.logical_plan = logical_plan
        self.last_result = result
        return result

    def parse_and_plan(self, nl_query: str,
                       channel: InteractionChannel,
                       max_plan_rounds: int = 3
                       ) -> Tuple[ParseOutcome, LogicalPlan, VerificationReport]:
        """Run the parser and the plan writer/verifier loop for one query."""
        parse_outcome = self.parser.parse(nl_query, channel)
        plan = self.plan_generator.generate(parse_outcome.sketch, parse_outcome.intent)
        report = self.plan_verifier.verify(plan)
        rounds = 0
        while not report.approved and rounds < max_plan_rounds:
            plan = self.plan_generator.revise(plan, report.hints)
            report = self.plan_verifier.verify(plan)
            rounds += 1
        if not report.approved:
            raise PlanVerificationError(
                "the plan verifier rejected the logical plan after "
                f"{max_plan_rounds} revision rounds: {report.problems}")
        return parse_outcome, plan, report

    # -- explanation -----------------------------------------------------------------------
    def explain_pipeline(self, result: Optional[QueryResult] = None) -> str:
        """Coarse-grained explanation of the latest (or given) query."""
        return self.explainer.explain_pipeline(self._result(result))

    def explain_tuple(self, result: Optional[QueryResult], lid: int) -> TupleExplanation:
        """Fine-grained explanation of one output tuple by lineage id."""
        return self.explainer.explain_tuple(self._result(result), lid)

    def ask(self, question: str, result: Optional[QueryResult] = None) -> str:
        """Free-form NL question over the latest (or given) query's lineage."""
        resolved = self._result(result)
        answer = self.lineage_qa.ask(question, resolved)
        if resolved.transcript is not None:
            channel = InteractionChannel(SilentUser(), resolved.transcript)
            channel.record_explanation_request(question, answer)
        return answer

    def _result(self, result: Optional[QueryResult]) -> QueryResult:
        resolved = result or self.last_result
        if resolved is None:
            raise ValueError("no query has been executed yet")
        return resolved

    # -- versioning: roll-backs and iterative refinement --------------------------------------
    def rollback_function(self, name: str):
        """Return the previous version of a generated function (paper Section 4).

        Versions are immutable; this only *selects* the earlier implementation.
        Combine with :meth:`rerun_with_versions` to re-execute the last query
        using it.
        """
        return self.registry.rollback(name)

    def rerun_with_versions(self, result: Optional[QueryResult] = None,
                            versions: Optional[Dict[str, int]] = None,
                            user: Optional[UserAgent] = None) -> QueryResult:
        """Re-execute a query's physical plan with specific function versions.

        ``versions`` maps function names to the version id to use (e.g. the one
        returned by :meth:`rollback_function`); unmentioned operators keep the
        implementation the optimizer chose.  This is the paper's "safe
        roll-backs to a prior version" / iterative-refinement workflow.
        """
        source = self._result(result)
        if source.physical_plan is None:
            raise ValueError("the result carries no physical plan to re-run")
        versions = versions or {}
        operators = []
        for operator in source.physical_plan.operators:
            function = operator.function
            if operator.name in versions:
                function = self.registry.get(operator.name, versions[operator.name])
            operators.append(PhysicalOperator(
                node=operator.node, function=function,
                estimated_tokens=operator.estimated_tokens,
                estimated_runtime_s=operator.estimated_runtime_s,
                estimated_cardinality=operator.estimated_cardinality))
        plan = PhysicalPlan(operators=operators, logical_plan=source.logical_plan,
                            rewrites_applied=list(source.physical_plan.rewrites_applied))
        channel = InteractionChannel(user or SilentUser())
        rerun = self.engine.execute(plan, channel, nl_query=source.nl_query)
        rerun.sketch = source.sketch
        rerun.intent = source.intent
        rerun.logical_plan = source.logical_plan
        self.last_result = rerun
        return rerun

    # -- introspection ----------------------------------------------------------------------
    @property
    def cost_meter(self):
        """The shared token/cost ledger."""
        return self.models.cost_meter

    def total_tokens(self) -> int:
        """Total tokens spent by this instance so far."""
        return self.models.cost_meter.total_tokens

    def function_versions(self) -> Dict[str, int]:
        """function name -> number of generated versions."""
        return {name: self.registry.version_count(name) for name in self.registry.names()}

    def describe_catalog(self, kinds: Optional[List[str]] = None) -> str:
        """The system-catalog description handed to the agents."""
        return self.catalog.describe(kinds=kinds)

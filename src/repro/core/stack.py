"""Per-context wiring of the query pipeline components.

A :class:`QueryStack` bundles everything needed to take one NL query from
text to result: parser, plan generator/verifier, optimizer, execution engine,
and explainer.  The heavyweight shared state (catalog, function registry,
profile cache) is passed in; the stack itself is cheap to build, so every
session gets its own — wired to its own model-suite fork and lineage scope —
while the legacy :class:`~repro.core.kathdb.KathDB` facade builds exactly one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import KathDBConfig
from repro.datamodel.lineage import LineageStore
from repro.executor.engine import ExecutionEngine
from repro.executor.monitor import ExecutionMonitor
from repro.explain.explainer import Explainer
from repro.explain.lineage_query import LineageQueryInterface
from repro.fao.codegen import Coder
from repro.fao.registry import FunctionRegistry
from repro.models.base import ModelSuite
from repro.optimizer.optimizer import QueryOptimizer
from repro.optimizer.profile_cache import ProfileCache
from repro.parser.nl_parser import NLParser
from repro.parser.plan_generator import LogicalPlanGenerator
from repro.parser.plan_verifier import PlanVerifier
from repro.relational.catalog import Catalog
from repro.skills.store import SkillStore


@dataclass
class QueryStack:
    """One fully wired parse → plan → optimize → execute → explain pipeline."""

    config: KathDBConfig
    models: ModelSuite
    catalog: Catalog
    lineage: LineageStore
    registry: FunctionRegistry
    coder: Coder
    parser: NLParser
    plan_generator: LogicalPlanGenerator
    plan_verifier: PlanVerifier
    optimizer: QueryOptimizer
    engine: ExecutionEngine
    explainer: Explainer
    lineage_qa: LineageQueryInterface

    @classmethod
    def build(cls, config: KathDBConfig, models: ModelSuite, catalog: Catalog,
              lineage: LineageStore, registry: FunctionRegistry,
              profile_cache: Optional[ProfileCache] = None,
              skill_store: Optional[SkillStore] = None) -> "QueryStack":
        """Wire a pipeline over the given shared state."""
        coder = Coder(models, fault_injection=dict(config.fault_injection))
        parser = NLParser(models,
                          proactive=config.proactive_clarification,
                          reactive=config.reactive_correction,
                          max_correction_rounds=config.max_correction_rounds)
        plan_generator = LogicalPlanGenerator(models, catalog)
        plan_verifier = PlanVerifier(models, catalog)
        # One monitor serves both halves of the pipeline: execution (anomaly
        # escalation) and the optimizer's skill revalidation runs.
        monitor = ExecutionMonitor(models, sample_size=config.monitor_sample_size,
                                   enabled=config.monitor_enabled)
        optimizer = QueryOptimizer(
            models, catalog, registry, coder=coder,
            enable_pushdown=config.enable_pushdown,
            enable_fusion=config.enable_fusion,
            explore_variants=config.explore_variants,
            max_variants=config.max_variants,
            parallel=config.parallel_codegen,
            variant_overrides=dict(config.variant_overrides),
            sample_size=config.optimizer_sample_size,
            max_repair_rounds=config.max_repair_rounds,
            min_accuracy=config.min_accuracy,
            profile_cache=profile_cache,
            vectorized_batch_size=config.effective_batch_size(),
            skill_store=skill_store,
            monitor=monitor)
        engine = ExecutionEngine(
            models, catalog, lineage, registry, coder=coder,
            monitor=monitor,
            max_repair_rounds=config.max_repair_rounds,
            skill_store=skill_store)
        explainer = Explainer(models, registry=registry)
        lineage_qa = LineageQueryInterface(models, explainer)
        return cls(config=config, models=models, catalog=catalog, lineage=lineage,
                   registry=registry, coder=coder, parser=parser,
                   plan_generator=plan_generator, plan_verifier=plan_verifier,
                   optimizer=optimizer, engine=engine, explainer=explainer,
                   lineage_qa=lineage_qa)

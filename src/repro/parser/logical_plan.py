"""Logical plans: trees of function signatures (paper Section 4, Figure 3).

Each node carries exactly the fields of the paper's JSON layout -- ``name``,
``description``, ``inputs`` (datasource names: base relations, views, or the
outputs of earlier nodes), and ``output`` (the table the function produces) --
plus bookkeeping the optimizer and lineage need (dependency pattern, the
sketch step the node realizes, and free-form parameters such as keyword lists
or score weights).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import PlanError


@dataclass
class LogicalPlanNode:
    """One logical operator: a function signature plus semantic hints."""

    name: str
    description: str
    inputs: List[str] = field(default_factory=list)
    output: str = ""
    dependency_pattern: str = "one_to_one"
    sketch_step: Optional[int] = None
    parameters: Dict[str, Any] = field(default_factory=dict)

    def signature_json(self) -> Dict[str, Any]:
        """The exact JSON layout of the paper's Figure 3."""
        return {
            "name": self.name,
            "description": self.description,
            "inputs": list(self.inputs),
            "output": self.output,
        }

    def describe(self) -> str:
        inputs = ", ".join(self.inputs) or "<none>"
        return f"{self.name}({inputs}) -> {self.output}  [{self.dependency_pattern}]"


@dataclass
class LogicalPlan:
    """An ordered collection of logical-plan nodes.

    Nodes are stored in a valid execution order (each node's inputs are either
    base relations/views or outputs of earlier nodes); :meth:`validate` checks
    that property and :meth:`execution_order` re-derives it topologically.
    """

    nodes: List[LogicalPlanNode] = field(default_factory=list)
    nl_query: str = ""
    sketch_version: int = 1

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def add(self, node: LogicalPlanNode) -> LogicalPlanNode:
        if any(existing.name == node.name for existing in self.nodes):
            raise PlanError(f"duplicate logical plan node name: {node.name!r}")
        self.nodes.append(node)
        return node

    def node(self, name: str) -> LogicalPlanNode:
        """Look up a node by name."""
        for node in self.nodes:
            if node.name == name:
                return node
        raise PlanError(f"no logical plan node named {name!r}")

    def output_names(self) -> List[str]:
        """The output table names of all nodes."""
        return [node.output for node in self.nodes]

    def producers(self) -> Dict[str, LogicalPlanNode]:
        """output table name -> producing node."""
        return {node.output: node for node in self.nodes}

    def final_output(self) -> str:
        """The output of the last node (the query result table)."""
        if not self.nodes:
            raise PlanError("empty logical plan")
        return self.nodes[-1].output

    def to_json(self, indent: int = 2) -> str:
        """Serialize all signatures in the Figure 3 JSON layout."""
        return json.dumps([node.signature_json() for node in self.nodes], indent=indent)

    def validate(self, available_sources: Iterable[str]) -> List[str]:
        """Check structural validity; returns a list of problems (empty = valid).

        ``available_sources`` are the base relations and views registered in
        the catalog.
        """
        problems: List[str] = []
        known = {name.lower() for name in available_sources}
        for node in self.nodes:
            if not node.output:
                problems.append(f"node {node.name!r} declares no output")
            for source in node.inputs:
                if source.lower() not in known:
                    problems.append(
                        f"node {node.name!r} reads {source!r} which is neither a catalog "
                        f"table nor the output of an earlier node")
            if node.output:
                known.add(node.output.lower())
        outputs = [node.output for node in self.nodes if node.output]
        duplicates = {o for o in outputs if outputs.count(o) > 1}
        if duplicates:
            problems.append(f"multiple nodes produce the same output table(s): {sorted(duplicates)}")
        return problems

    def execution_order(self) -> List[LogicalPlanNode]:
        """Topological order of the nodes by their data dependencies."""
        producers = self.producers()
        ordered: List[LogicalPlanNode] = []
        visiting: set = set()
        done: set = set()

        def visit(node: LogicalPlanNode) -> None:
            if node.name in done:
                return
            if node.name in visiting:
                raise PlanError(f"cycle detected at node {node.name!r}")
            visiting.add(node.name)
            for source in node.inputs:
                producer = producers.get(source)
                if producer is not None and producer is not node:
                    visit(producer)
            visiting.discard(node.name)
            done.add(node.name)
            ordered.append(node)

        for node in self.nodes:
            visit(node)
        return ordered

    def describe(self) -> str:
        """One line per node, in stored order."""
        lines = [f"logical plan for: {self.nl_query} (sketch v{self.sketch_version})"]
        lines.extend("  " + node.describe() for node in self.nodes)
        return "\n".join(lines)

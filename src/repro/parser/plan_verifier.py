"""The agentic plan verifier (paper Section 4).

Three roles collaborate on every draft logical plan:

* the **plan writer** (:class:`~repro.parser.plan_generator.LogicalPlanGenerator`)
  drafts a tree of logical-plan nodes;
* the **verifier** reads the draft together with initial sample data from the
  related relations; if that snapshot is enough it approves, otherwise it
  names the specific relations it needs more information about;
* the **tool user** owns a small set of database utilities (row sampler,
  joinability tester, column profiler) and fetches the requested information
  so the verifier can judge again.

If the verifier finds problems it returns hints; the writer is expected to
redraft and resubmit (the loop is driven by whoever owns both agents --
in this reproduction the :class:`~repro.core.kathdb.KathDB` facade).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.models.base import ModelSuite
from repro.parser.logical_plan import LogicalPlan, LogicalPlanNode
from repro.relational.catalog import Catalog


@dataclass
class VerificationReport:
    """The verifier's judgement on one draft plan."""

    approved: bool
    problems: List[str] = field(default_factory=list)
    hints: List[str] = field(default_factory=list)
    inspected_relations: List[str] = field(default_factory=list)
    tool_calls: int = 0

    def describe(self) -> str:
        status = "APPROVED" if self.approved else "REJECTED"
        lines = [f"plan verification: {status}"]
        lines.extend(f"  problem: {p}" for p in self.problems)
        lines.extend(f"  hint: {h}" for h in self.hints)
        if self.inspected_relations:
            lines.append(f"  inspected: {', '.join(self.inspected_relations)} "
                         f"({self.tool_calls} tool calls)")
        return "\n".join(lines)


class CatalogToolUser:
    """The tool-user agent: a small set of database utilities over the catalog."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self.calls = 0

    def sample_rows(self, table_name: str, n: int = 3) -> List[Dict[str, Any]]:
        """Row sampler."""
        self.calls += 1
        return self.catalog.sample_rows(table_name, n)

    def column_names(self, table_name: str) -> List[str]:
        """Schema lookup."""
        self.calls += 1
        return self.catalog.schema(table_name).column_names()

    def joinability(self, left: str, right: str) -> List[str]:
        """Joinability tester: columns shared by two tables."""
        self.calls += 1
        return self.catalog.joinable_columns(left, right)

    def row_count(self, table_name: str) -> int:
        """Cardinality lookup."""
        self.calls += 1
        return len(self.catalog.table(table_name))


class PlanVerifier:
    """Checks a draft logical plan against the catalog."""

    def __init__(self, models: ModelSuite, catalog: Catalog):
        self.models = models
        self.catalog = catalog
        self.tool_user = CatalogToolUser(catalog)

    def verify(self, plan: LogicalPlan) -> VerificationReport:
        """Verify one draft plan.

        The checks performed:

        1. structural validity (every input resolvable, unique outputs);
        2. every *base* input relation exists in the catalog -- when a node
           reads a catalog relation the verifier asks the tool user for sample
           rows and confirms the columns the node's parameters mention exist;
        3. join nodes reading two catalog relations must have at least one
           joinable column (tool-user joinability test);
        4. the final node must produce an output.
        """
        report = VerificationReport(approved=True)
        catalog_names = {name.lower() for name in self.catalog.table_names()}

        problems = plan.validate(self.catalog.table_names())
        for problem in problems:
            report.problems.append(problem)
            report.hints.append(f"redraft: {problem}")

        produced = set()
        for node in plan.nodes:
            catalog_inputs = [name for name in node.inputs
                              if name.lower() in catalog_names and name.lower() not in produced]
            for relation in catalog_inputs:
                if relation not in report.inspected_relations:
                    report.inspected_relations.append(relation)
                # Both tool calls are verification traffic (schema + sample
                # inspection) recorded by the tool user; the column check
                # itself goes through _column_available below.
                self.tool_user.column_names(relation)
                self.tool_user.sample_rows(relation, 2)
                for mentioned in self._columns_mentioned(node):
                    # A mentioned column must exist in *some* input of the node,
                    # not necessarily this one; only flag when absent everywhere.
                    if not self._column_available(node, mentioned, catalog_names):
                        message = (f"node {node.name!r} refers to column {mentioned!r} "
                                   f"which none of its catalog inputs provide")
                        if message not in report.problems:
                            report.problems.append(message)
                            report.hints.append(
                                f"check the schema of {', '.join(node.inputs)} for {mentioned!r}")
                # Joinability: a node that reads two or more catalog relations
                # should either share a column with the first relation or carry
                # an explicit join-key mapping for both sides.
                if len(catalog_inputs) >= 2 and relation != catalog_inputs[0]:
                    shared = self.tool_user.joinability(catalog_inputs[0], relation)
                    if not shared and not self._has_explicit_join_keys(
                            node, catalog_inputs[0], relation):
                        report.problems.append(
                            f"node {node.name!r} joins {catalog_inputs[0]!r} and {relation!r} "
                            f"but they share no column")
                        report.hints.append(
                            f"add an explicit join key for {catalog_inputs[0]!r} and {relation!r}")
            produced.add(node.output.lower())

        if plan.nodes and not plan.nodes[-1].output:
            report.problems.append("the final node does not declare an output table")

        report.tool_calls = self.tool_user.calls
        report.approved = not report.problems
        # Charge the verifier's reasoning to the LLM budget.
        self.models.llm.render_text(
            "verified plan with {n} nodes: {status}",
            purpose="plan_verification",
            n=len(plan.nodes), status="approved" if report.approved else "rejected")
        return report

    def _has_explicit_join_keys(self, node: LogicalPlanNode, left: str, right: str) -> bool:
        """Whether the node declares join keys for both relations and they exist."""
        join_keys = node.parameters.get("join_keys") or {}
        left_key, right_key = join_keys.get(left), join_keys.get(right)
        if not left_key or not right_key:
            return False
        left_columns = {c.lower() for c in self.catalog.schema(left).column_names()}
        right_columns = {c.lower() for c in self.catalog.schema(right).column_names()}
        return left_key.lower() in left_columns and right_key.lower() in right_columns

    def _columns_mentioned(self, node: LogicalPlanNode) -> List[str]:
        """Columns a node's parameters explicitly reference on its *inputs*."""
        mentioned: List[str] = []
        parameters = node.parameters
        for key in ("columns", "input_columns"):
            for column in parameters.get(key, []) or []:
                mentioned.append(column)
        for key in ("year_column", "column", "join_key", "source_column"):
            value = parameters.get(key)
            if value:
                mentioned.append(value)
        # Columns the node itself creates are not input requirements.
        created = {parameters.get("score_column"), parameters.get("flag_column"),
                   parameters.get("output_column")}
        return [c for c in mentioned if c not in created]

    def _column_available(self, node: LogicalPlanNode, column: str,
                          catalog_names: set) -> bool:
        """Whether any of the node's inputs could provide ``column``.

        Catalog relations are checked against their schemas; outputs of earlier
        nodes are assumed to carry whatever their producers computed (their
        schemas are only known after code generation), so they satisfy any
        column requirement at this stage.
        """
        lowered = column.lower()
        for source in node.inputs:
            if source.lower() not in catalog_names:
                return True
            if lowered in {c.lower() for c in self.catalog.schema(source).column_names()}:
                return True
        return False

"""The interactive NL parser: reviewer + sketch-generator agents.

The parser implements both interaction modes from the paper's Figure 4:

* **Proactive clarification** -- the reviewer agent inspects the NL query; if
  it finds a high-priority ambiguous term it asks the user a focused question
  before drafting anything.
* **Reactive correction** -- after showing the drafted sketch, the user may
  reply with a correction ("I prefer more recent movies as well when
  scoring"); the sketch generator folds the correction in, bumps the sketch
  version, and submits it for another review, until the user answers "OK".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.interaction.channel import InteractionChannel
from repro.models.base import ModelSuite
from repro.models.llm import QueryIntent
from repro.parser.sketch import QuerySketch
from repro.utils.text import join_names


@dataclass
class ParseOutcome:
    """What the NL parser produced for one query."""

    sketch: QuerySketch
    intent: QueryIntent
    clarification_rounds: int = 0
    correction_rounds: int = 0
    sketch_history: List[QuerySketch] = field(default_factory=list)


class NLParser:
    """Translates NL queries into query sketches, interacting with the user."""

    def __init__(self, models: ModelSuite, ambiguity_threshold: float = 0.5,
                 max_correction_rounds: int = 4, proactive: bool = True,
                 reactive: bool = True):
        self.models = models
        self.ambiguity_threshold = ambiguity_threshold
        self.max_correction_rounds = max_correction_rounds
        self.proactive = proactive
        self.reactive = reactive

    # -- public API --------------------------------------------------------------
    def parse(self, nl_query: str, channel: InteractionChannel) -> ParseOutcome:
        """Run the full clarify -> sketch -> correct loop for one query."""
        llm = self.models.llm
        clarifications: Dict[str, str] = {}
        clarification_rounds = 0

        # Proactive clarification (reviewer agent).
        if self.proactive:
            for report in llm.detect_ambiguity(nl_query):
                if report.priority < self.ambiguity_threshold:
                    continue
                answer = channel.ask_clarification(report.question, report.term)
                clarification_rounds += 1
                if answer:
                    clarifications[report.term] = answer
                    # The clarification teaches the system what the subjective
                    # term means; remember it in the lexicon for keyword reuse.
                    self.models.lexicon.add_terms(
                        report.term, llm.generate_keywords(report.term, answer))

        corrections: List[str] = []
        intent = llm.interpret_query(nl_query, clarifications, corrections)
        sketch = self.generate_sketch(nl_query, intent, clarifications, corrections, version=1)
        history = [sketch]
        correction_rounds = 0

        # Reactive correction loop (query writer + user review).
        if self.reactive:
            while correction_rounds < self.max_correction_rounds:
                reply = channel.review_sketch(sketch.describe(), sketch.version)
                if not reply or reply.strip().upper() == "OK":
                    break
                corrections.append(reply)
                correction_rounds += 1
                intent = llm.interpret_query(nl_query, clarifications, corrections)
                sketch = self.generate_sketch(nl_query, intent, clarifications, corrections,
                                              version=sketch.version + 1)
                history.append(sketch)

        return ParseOutcome(sketch=sketch, intent=intent,
                            clarification_rounds=clarification_rounds,
                            correction_rounds=correction_rounds,
                            sketch_history=history)

    # -- sketch generation -------------------------------------------------------------
    def generate_sketch(self, nl_query: str, intent: QueryIntent,
                        clarifications: Dict[str, str], corrections: List[str],
                        version: int = 1) -> QuerySketch:
        """Generate the chain-of-thought query sketch for an interpreted query.

        The step structure mirrors the paper's Section 6 walk-through: view
        population first, column selection, one join per needed modality, one
        step per semantic score, classification/filtering over images,
        combination, and final ranking -- 8 steps for the flagship query
        without the recency correction and 11 with it.
        """
        sketch = QuerySketch(nl_query=nl_query, version=version,
                             clarifications=dict(clarifications),
                             corrections=list(corrections))
        llm = self.models.llm

        sketch.add_step(
            "Populate the relational views over the raw text and images "
            "(scene graphs for posters, semantic graphs for plot documents) so that "
            "later steps can operate on relational data.",
            purpose="populate_views")

        sketch.add_step(
            "Select the relevant columns (title, release year) from the movie table.",
            purpose="select_columns")

        if intent.needs_text:
            sketch.add_step(
                "Join the relational view over text (extracted entities per plot document) "
                "with the movie table so each film is associated with the entities "
                "mentioned in its plot.",
                purpose="join_text")
        if intent.needs_images:
            sketch.add_step(
                "Check the Objects table associated with each poster image so each film is "
                "associated with the objects and visual statistics of its poster.",
                purpose="join_images")

        for score in intent.semantic_scores:
            keywords = join_names(score.keywords[:6]) or score.concept
            sketch.add_step(
                llm.render_text(
                    "Assign a \"{name}\" to each film: generate a keyword list for the "
                    "concept (e.g., {keywords}), embed the keywords and the entities "
                    "extracted from the plot, and aggregate their vector similarity into "
                    "a score per movie.",
                    purpose="sketch_step_generation",
                    name=score.name.replace("_", " "), keywords=keywords),
                purpose=f"score:{score.name}")

        if intent.include_recency:
            sketch.add_step(
                "Assign a \"recency score\" to each film based on its release date, so that "
                "more recent films score higher.",
                purpose="score:recency_score")
            sketch.add_step(
                llm.render_text(
                    "Combine the individual scores into a final score per film using the "
                    "weights {weights}.",
                    purpose="sketch_step_generation",
                    weights=intent.score_weights),
                purpose="combine_scores")

        for predicate in intent.image_predicates:
            sketch.add_step(
                llm.render_text(
                    "Analyze poster visual features using both extracted objects and image "
                    "pixels to determine if the poster appears '{name}' (e.g., lacks vivid "
                    "colors, few objects, little action, plain background).",
                    purpose="sketch_step_generation", name=predicate.name),
                purpose=f"classify:{predicate.name}")
            if predicate.mode == "filter":
                keep = "keep only" if predicate.keep_if_true else "remove"
                sketch.add_step(
                    f"Filter the films so as to {keep} those whose poster is classified "
                    f"as '{predicate.name}'.",
                    purpose=f"filter:{predicate.name}")

        for relational_filter in intent.relational_filters:
            sketch.add_step(
                f"Keep only films where {relational_filter.column} {relational_filter.op} "
                f"{relational_filter.value}.",
                purpose=f"relational_filter:{relational_filter.column}")

        if intent.include_recency or len(intent.semantic_scores) > 1:
            sketch.add_step(
                "Join all intermediate results so every film carries its scores and "
                "classification flags.",
                purpose="join_results")

        if intent.ranking:
            target = "final score" if intent.include_recency else (
                intent.semantic_scores[0].name.replace("_", " ") if intent.semantic_scores
                else "relevance")
            sketch.add_step(
                f"Rank the remaining films by their {target}, highest first, and return "
                "the ranked list.",
                purpose="rank")
        else:
            sketch.add_step(
                "Return the films that satisfy all conditions.",
                purpose="project_result")

        return sketch

"""The logical plan generator (plan-writer agent).

Expands a query sketch + interpreted intent into a logical plan whose nodes
follow the paper's Figure 3 JSON layout.  The writer works purpose-by-purpose
over the sketch: column selection, one join per modality, one scoring node per
semantic score, recency + combination when requested, classification/filter
nodes for image predicates, relational filters, and a final ranking or
projection node.

Relational filters are deliberately placed *late* in the drafted plan (just
before the final node); the optimizer's predicate-pushdown rewrite is what
moves them next to the data source, so the logical-rewrite ablation measures a
real difference.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.models.base import ModelSuite
from repro.models.llm import QueryIntent
from repro.parser.logical_plan import LogicalPlan, LogicalPlanNode
from repro.parser.sketch import QuerySketch
from repro.relational.catalog import Catalog


class LogicalPlanGenerator:
    """Drafts a logical plan from a sketch, an intent, and the catalog."""

    def __init__(self, models: ModelSuite, catalog: Catalog):
        self.models = models
        self.catalog = catalog

    def generate(self, sketch: QuerySketch, intent: QueryIntent) -> LogicalPlan:
        """Produce a draft logical plan (to be checked by the plan verifier)."""
        plan = LogicalPlan(nl_query=sketch.nl_query, sketch_version=sketch.version)
        llm = self.models.llm

        def step_index(purpose: str) -> Optional[int]:
            step = sketch.step_by_purpose(purpose)
            return step.index if step else None

        def add(name: str, description: str, inputs: List[str], output: str,
                purpose: str, parameters: Optional[Dict] = None) -> LogicalPlanNode:
            node = LogicalPlanNode(
                name=name,
                description=description,
                inputs=inputs,
                output=output,
                dependency_pattern=llm.classify_dependency_pattern(description),
                sketch_step=step_index(purpose),
                parameters=parameters or {},
            )
            plan.add(node)
            return node

        # 1. Column selection over the base movie table.
        current = "films_base"
        add("select_movie_columns",
            "Select the relevant columns (movie_id, title, release year) from movie_table.",
            ["movie_table"], current, "select_columns",
            parameters={"columns": ["movie_id", "title", "year"]})

        # 2. Modality joins.
        text_current: Optional[str] = None
        image_current: Optional[str] = None
        if intent.needs_text:
            text_current = "films_with_text_entities"
            add("join_text_entities",
                "Join the relational view over text with the movie table: associate each film "
                "with the entities extracted from its plot document.",
                [current, "film_plot", "text_entities"], text_current, "join_text")
        if intent.needs_images:
            image_current = "films_with_image_scene"
            add("join_image_scene",
                "Join the relational view over images with the movie table: associate each film "
                "with its poster's scene-graph objects and pixel statistics.",
                [current, "poster_images", "image_objects", "image_frames"],
                image_current, "join_images")

        # 3. Semantic scores over the text side.
        score_source = text_current or current
        score_columns: List[str] = []
        for score in intent.semantic_scores:
            output = f"films_with_{score.concept}"
            add(f"gen_{score.name}",
                f"Assign a {score.name.replace('_', ' ')} to each film by measuring vector "
                f"similarity between the generated keyword list and the entities extracted "
                f"from the plot.",
                [score_source], output, f"score:{score.name}",
                parameters={"score_column": score.name, "concept": score.concept,
                            "keywords": list(score.keywords),
                            "source_column": score.source_column})
            score_columns.append(score.name)
            score_source = output

        # 4. Recency + combination.
        if intent.include_recency:
            output = "films_with_recency"
            add("gen_recency_score",
                "Assign a recency score to each film based on its release year, giving higher "
                "scores to more recent films.",
                [score_source], output, "score:recency_score",
                parameters={"score_column": "recency_score", "year_column": "year"})
            score_source = output
            score_columns.append("recency_score")
            add("combine_scores",
                "Combine the individual scores into a final score per film as a weighted sum "
                f"using the weights {intent.score_weights}.",
                [score_source], "films_with_final_score", "combine_scores",
                parameters={"weights": dict(intent.score_weights),
                            "output_column": "final_score",
                            "input_columns": list(score_columns)})
            score_source = "films_with_final_score"

        # 5. Image predicates: classification + filter.
        image_final: Optional[str] = None
        for predicate in intent.image_predicates:
            flag_column = f"{predicate.name}_poster"
            classified = f"films_with_{predicate.name}_flag"
            add(f"classify_{predicate.name}",
                f"Analyze visual features of each film's poster (extracted objects, number of "
                f"objects, color statistics) to determine whether the poster is "
                f"'{predicate.name}'.",
                [image_current or current], classified, f"classify:{predicate.name}",
                parameters={"flag_column": flag_column, "concept": predicate.concept})
            image_final = classified
            if predicate.mode == "filter":
                filtered = f"films_{predicate.name}_only"
                keep = "keep" if predicate.keep_if_true else "remove"
                add(f"filter_{predicate.name}",
                    f"Filter the films to {keep} those whose poster is classified as "
                    f"'{predicate.name}'.",
                    [classified], filtered, f"filter:{predicate.name}",
                    parameters={"flag_column": flag_column,
                                "keep_if_true": predicate.keep_if_true})
                image_final = filtered

        # 6. Semantic threshold filters for non-ranking queries.
        if not intent.ranking:
            for score in intent.semantic_scores:
                filtered = f"films_{score.concept}_filtered"
                add(f"filter_{score.name}",
                    f"Keep only films whose {score.name.replace('_', ' ')} indicates the plot "
                    f"matches the requested concept (score above threshold).",
                    [score_source], filtered, f"filter:{score.name}",
                    parameters={"score_column": score.name, "threshold": 0.4})
                score_source = filtered

        # 7. Relational filters (placed late on purpose; see module docstring).
        for index, relational_filter in enumerate(intent.relational_filters):
            filtered = f"films_relfilter_{index}"
            add(f"filter_{relational_filter.column}_{index}",
                f"Keep only films where {relational_filter.column} {relational_filter.op} "
                f"{relational_filter.value}.",
                [score_source], filtered, f"relational_filter:{relational_filter.column}",
                parameters={"column": relational_filter.column, "op": relational_filter.op,
                            "value": relational_filter.value})
            score_source = filtered

        # 8. Join the text-side and image-side intermediate results if both exist.
        final_source = score_source
        if image_final is not None and image_final != final_source:
            if intent.semantic_scores or intent.include_recency or intent.relational_filters:
                add("join_results",
                    "Join all intermediate results so every film carries its scores and its "
                    "poster classification.",
                    [score_source, image_final], "films_joined", "join_results",
                    parameters={"join_key": "movie_id"})
                final_source = "films_joined"
            else:
                final_source = image_final

        # 9. Final ranking or projection (see below for the revision loop).
        if intent.ranking:
            sort_column = ("final_score" if intent.include_recency
                           else (score_columns[0] if score_columns else "title"))
            add("rank_films",
                f"Rank the films by {sort_column.replace('_', ' ')}, highest first, and return "
                "the ranked list with their scores and flags.",
                [final_source], "final_ranked_films", "rank",
                parameters={"sort_column": sort_column, "descending": True})
        else:
            add("project_result",
                "Return the films that satisfy all conditions, with their supporting columns.",
                [final_source], "final_films", "project_result",
                parameters={})

        return plan

    # -- revision loop ----------------------------------------------------------------
    def revise(self, plan: LogicalPlan, hints: List[str]) -> LogicalPlan:
        """Apply the verifier's hints to a rejected draft plan.

        The only hint family the writer currently knows how to act on is the
        joinability hint ("add an explicit join key for 'A' and 'B'"): the
        writer inspects both relations' schemas and records an explicit
        ``join_keys`` mapping on the node that reads them, choosing each side's
        identifier-like column (``movie_id``, ``vid``, ``did``, ...).  Other
        hints are attached to the plan nodes as notes for the coder.
        """
        import re

        hint_pattern = re.compile(r"add an explicit join key for '([^']+)' and '([^']+)'")
        for hint in hints:
            match = hint_pattern.search(hint)
            if not match:
                continue
            left, right = match.group(1), match.group(2)
            for node in plan.nodes:
                if left in node.inputs and right in node.inputs:
                    join_keys = dict(node.parameters.get("join_keys") or {})
                    join_keys.setdefault(left, self._identifier_column(left))
                    join_keys.setdefault(right, self._identifier_column(right))
                    node.parameters["join_keys"] = join_keys
        return plan

    def _identifier_column(self, table_name: str) -> str:
        """The identifier-like column of a catalog table (``*_id``, ``vid``, ``did``)."""
        columns = self.catalog.schema(table_name).column_names()
        for column in columns:
            lowered = column.lower()
            if lowered.endswith("_id") or lowered in ("vid", "did", "oid", "eid", "lid"):
                return column
        return columns[0] if columns else "id"

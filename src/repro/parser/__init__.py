"""The query parser (paper Section 2.1 and Section 5).

The parser converts an NL request into an executable logical plan in two
stages, both with a human in the loop:

1. :class:`~repro.parser.nl_parser.NLParser` -- reviewer + sketch-generator
   agents: detect ambiguity, ask proactive clarification questions, emit a
   chain-of-thought *query sketch*, and run the reactive correction loop.
2. :class:`~repro.parser.plan_generator.LogicalPlanGenerator` /
   :class:`~repro.parser.plan_verifier.PlanVerifier` -- plan writer, tool user,
   and verifier agents: expand each sketch step into logical-plan nodes with
   function signatures (Figure 3's JSON layout) and verify them against the
   catalog.
"""

from repro.parser.sketch import QuerySketch, SketchStep
from repro.parser.nl_parser import NLParser, ParseOutcome
from repro.parser.logical_plan import LogicalPlan, LogicalPlanNode
from repro.parser.plan_generator import LogicalPlanGenerator
from repro.parser.plan_verifier import PlanVerifier, VerificationReport, CatalogToolUser

__all__ = [
    "QuerySketch",
    "SketchStep",
    "NLParser",
    "ParseOutcome",
    "LogicalPlan",
    "LogicalPlanNode",
    "LogicalPlanGenerator",
    "PlanVerifier",
    "VerificationReport",
    "CatalogToolUser",
]

"""Query sketches: the chain-of-thought decomposition of an NL query.

A query sketch is "a step-by-step description of the intended execution logic
expressed entirely in NL" (paper Section 2.1).  It deliberately stays one
abstraction level above the logical plan: no function signatures, no schemas,
just numbered natural-language steps the user can inspect and correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class SketchStep:
    """One step of a query sketch."""

    index: int
    description: str
    purpose: str = ""  # machine-readable tag linking the step to plan nodes

    def describe(self) -> str:
        return f"{self.index}. {self.description}"


@dataclass
class QuerySketch:
    """A versioned, ordered list of sketch steps."""

    nl_query: str
    steps: List[SketchStep] = field(default_factory=list)
    version: int = 1
    clarifications: Dict[str, str] = field(default_factory=dict)
    corrections: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def add_step(self, description: str, purpose: str = "") -> SketchStep:
        """Append a step with the next index."""
        step = SketchStep(index=len(self.steps) + 1, description=description, purpose=purpose)
        self.steps.append(step)
        return step

    def step_by_purpose(self, purpose: str) -> Optional[SketchStep]:
        """The first step tagged with ``purpose``, if any."""
        for step in self.steps:
            if step.purpose == purpose:
                return step
        return None

    def purposes(self) -> List[str]:
        """All purpose tags, in step order."""
        return [s.purpose for s in self.steps]

    def describe(self) -> str:
        """The full sketch as numbered natural-language lines."""
        header = f"query sketch v{self.version} for: {self.nl_query}"
        return "\n".join([header] + [step.describe() for step in self.steps])

    def revised(self) -> "QuerySketch":
        """A new, empty sketch with the version bumped (used on correction)."""
        return QuerySketch(nl_query=self.nl_query, steps=[], version=self.version + 1,
                           clarifications=dict(self.clarifications),
                           corrections=list(self.corrections))

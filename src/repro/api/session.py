"""Sessions: isolated per-caller query state over a shared service core.

A :class:`Session` owns everything one caller's queries mutate — a private
intermediates namespace, a per-session transcript, a scoped lineage store, a
forked model suite (own cost meter, own lexicon copy) — while sharing the
expensive read-only state (catalog, corpus views, function registry, prepared
plans) with every other session of the same :class:`KathDBService`.  Two
sessions can therefore run queries concurrently and produce exactly the rows
a serial run would.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, Optional, Tuple, Union

from repro.api.prepared import PreparedQuery, prepared_key
from repro.api.request import QueryOptions, QueryRequest, QueryResponse
from repro.core.stack import QueryStack
from repro.datamodel.lineage import LineageStore, ScopedLineageStore
from repro.errors import PlanVerificationError
from repro.executor.context import ExecutionContext
from repro.executor.result import QueryResult
from repro.interaction.channel import InteractionChannel, Transcript
from repro.interaction.user import SilentUser, UserAgent
from repro.models.base import ModelSuite
from repro.obs.trace import current_trace, span as obs_span
from repro.sched.cancel import current_cancel_token
from repro.sched.scheduler import current_task as sched_current_task
from repro.relational.table import Table
from repro.utils.timer import Timer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.service import KathDBService


class Session:
    """One caller's isolated query context.

    Created via :meth:`KathDBService.session` (isolated: forked models,
    scoped lineage) or by the legacy facade with explicit components (shared:
    the single-user path keeps its historical accounting).
    """

    def __init__(self, service: "KathDBService", session_id: str,
                 user: Optional[UserAgent] = None,
                 models: Optional[ModelSuite] = None,
                 lineage: Optional[LineageStore] = None,
                 transcript: Optional[Transcript] = None,
                 stack: Optional[QueryStack] = None,
                 tenant_id: Optional[str] = None):
        self.service = service
        self.id = session_id
        # The tenant this session bills and queues under.  Defaulting to the
        # session id preserves the pre-scheduler behavior (one throwaway
        # session = one ledger entry) for callers that never name a tenant.
        self.tenant = tenant_id or session_id
        self.default_user = user or SilentUser()
        if models is not None:
            # Legacy facade path: the caller wired the suite explicitly (the
            # shared one); keep its historical direct accounting un-routed.
            self.models = models
        else:
            self.models = service.models.fork()
            if service.gateway is not None:
                # Route the fork through the shared gateway: identical calls
                # across sessions are cached/coalesced/batched service-wide
                # while misses still charge this session's private meter.
                self.models = self.models.routed(service.gateway, session_id,
                                                 tenant_id=self.tenant)
        # ``or`` would discard an *empty* store (LineageStore is sized, and a
        # fresh one is falsy), so test for None explicitly.
        self.lineage = lineage if lineage is not None else ScopedLineageStore(service.lineage)
        self.transcript = transcript if transcript is not None else Transcript()
        self.stack = stack or QueryStack.build(
            service.config, self.models, service.catalog, self.lineage,
            service.registry, profile_cache=service.profile_cache,
            skill_store=service.skill_store)
        self._intermediates: Dict[str, Table] = {}
        self._table_lids: Dict[str, int] = {}
        self.last_result: Optional[QueryResult] = None
        # The most recent query's trace id, surviving even when the query
        # raised (the service's error responses link back through it).
        self.last_trace_id: Optional[str] = None

    # -- state accessors -------------------------------------------------------------
    @property
    def engine(self):
        return self.stack.engine

    @property
    def explainer(self):
        return self.stack.explainer

    def intermediates(self) -> Dict[str, Table]:
        """This session's materialized intermediate tables (name -> table).

        This replaces the old behaviour of registering every intermediate into
        the shared catalog: the namespace is now private to the session.  The
        returned tables are O(columns) copy-on-write forks — callers can read
        (or even mutate) them freely without touching the session's own
        namespace, and untouched columns stay physically shared.
        """
        return {name: table.fork() for name, table in self._intermediates.items()}

    def execution_context(self) -> ExecutionContext:
        """A context over the shared catalog and this session's scopes.

        Both the intermediates namespace and the table-lid map persist across
        the session's queries, so a later query that references an earlier
        result keeps its provenance chain intact.
        """
        if isinstance(self.lineage, ScopedLineageStore):
            # A scope created before the corpus finished loading (or before
            # legacy facade queries) may still slide forward to avoid lid
            # collisions with the shared store.
            self.lineage.rebase_if_unused()
        context = ExecutionContext.for_catalog(self.service.catalog,
                                               lineage=self.lineage,
                                               intermediates=self._intermediates,
                                               table_lids=self._table_lids)
        # Carry the active trace so work handed to other threads can
        # re-attach (repro.obs.trace.attach); same-thread spans propagate
        # through the contextvar regardless.
        context.trace = current_trace()
        # Carry the scheduler's cancel token: the engine checks it at
        # operator boundaries, the gateway before each model call.
        context.cancel = current_cancel_token()
        return context

    def total_tokens(self) -> int:
        """Tokens spent by this session so far."""
        return self.models.cost_meter.total_tokens

    def gateway_stats(self, window_s: Optional[float] = None
                      ) -> Dict[str, object]:
        """What the shared gateway has done for *this* session.

        The cumulative block is this session's own counters (hits, misses,
        semantic hits, tokens saved/charged, batch savings); ``window_s``
        attaches a ``windowed`` entry covering only this session's events
        over the last that-many seconds — the per-tenant live view the
        ROADMAP's multi-tenant quota-tuning item asked for.  Empty for
        un-routed (legacy facade) sessions.
        """
        client = getattr(self.models, "gateway_client", None)
        if client is None:
            return {}
        stats: Dict[str, object] = dict(client.counters.as_dict())
        stats["session_id"] = self.id
        if window_s is not None:
            stats["windowed"] = client.gateway.windowed_stats(
                window_s, session_id=client.session_id)
        return stats

    # -- quota state -----------------------------------------------------------------
    def quota_state(self) -> Dict[str, Optional[int]]:
        """This session's live quota position (see the properties below).

        Routed sessions read the gateway's admission ledger — the authority
        the quota is enforced against; un-routed (legacy facade) sessions
        fall back to their private meter and never exhaust.
        """
        client = getattr(self.models, "gateway_client", None)
        if client is not None:
            return client.quota_state()
        return {"tokens_used": self.models.cost_meter.total_tokens,
                "tokens_remaining": None, "quota_exhausted": False}

    @property
    def tokens_used(self) -> int:
        """Tokens counted against this session's gateway quota so far."""
        return self.quota_state()["tokens_used"]

    @property
    def tokens_remaining(self) -> Optional[int]:
        """Quota headroom left, or None when no per-session quota applies."""
        return self.quota_state()["tokens_remaining"]

    @property
    def quota_exhausted(self) -> bool:
        """True when the next gateway miss would be refused over quota."""
        return bool(self.quota_state()["quota_exhausted"])

    # -- querying --------------------------------------------------------------------
    def query(self, request: Union[str, QueryRequest],
              user: Optional[UserAgent] = None,
              options: Optional[QueryOptions] = None) -> QueryResponse:
        """Answer one NL query end to end inside this session.

        Each query opens one trace (when the service's tracer is enabled):
        a root ``query`` span with stage children (prepare → parse/plan/
        optimize on a cold compile, execute) and, below those, operator and
        model-call spans recorded by the engine and the gateway.  The trace
        id rides back on the response; ``latency_ms`` is the end-to-end
        wall time regardless of tracing.
        """
        if isinstance(request, str):
            request = QueryRequest(nl_query=request, user=user, options=options or QueryOptions())
        start_pc = time.perf_counter()
        with self.service.tracer.trace("query", session_id=self.id,
                                       query=request.nl_query) as trace:
            if trace is not None:
                self.last_trace_id = trace.trace_id
                self._record_queue_span(trace)
            response = self._answer(request)
            if trace is not None:
                rows = (len(response.result.final_table)
                        if response.result is not None else 0)
                trace.root.tag(tokens=response.total_tokens, rows_out=rows,
                               prepared_hit=response.prepared_hit)
        response.latency_ms = (time.perf_counter() - start_pc) * 1000.0
        if trace is not None:
            # Attached after the scope closed, so the root span's duration
            # is final; ``response.trace_spans`` summarizes lazily.
            response.trace_id = trace.trace_id
            response._trace = trace
        return response

    def _record_queue_span(self, trace) -> None:
        """Backdate a ``queue`` span covering this request's time-in-queue.

        The scheduler stamps enqueue/dispatch on the ``perf_counter`` clock
        (the same clock every span uses), so the span slots into the trace
        tree before the stage children and feeds the registry's
        ``latency_ms.queue`` histogram through normal trace aggregation.
        """
        task = sched_current_task()
        if task is None or task.dispatch_pc is None:
            return
        span = trace.begin("queue", trace.root, kind="queue",
                           tags={"tenant": task.tenant,
                                 "sched_class": task.sched_class})
        span.start_pc = task.enqueue_pc
        span.finish()
        span.end_pc = task.dispatch_pc

    def _answer(self, request: QueryRequest) -> QueryResponse:
        """The query pipeline body (runs inside the trace scope, if any)."""
        opts = request.options
        agent = request.user or self.default_user
        transcript = request.transcript if request.transcript is not None else self.transcript
        channel = InteractionChannel(agent, transcript)

        gateway_client = getattr(self.models, "gateway_client", None)
        gateway_marker = gateway_client.counters.snapshot() if gateway_client else None

        timer = Timer()
        with timer:
            with obs_span("prepare", kind="stage") as prep_sp:
                prepared, hit = self._prepare(request, channel)
                prep_sp.tag(prepared_hit=hit,
                            tokens=0 if hit else prepared.prepare_tokens)
            plan = prepared.instantiate()
            if opts.function_versions:
                plan.pin_versions(self.service.registry, opts.function_versions)

            execute_marker = self.models.cost_meter.snapshot()
            with obs_span("execute", kind="stage") as exec_sp:
                result = self.stack.engine.execute(plan, channel,
                                                   nl_query=request.nl_query,
                                                   context=self.execution_context())
                execute_tokens = self.models.cost_meter.tokens_since(execute_marker)
                exec_sp.tag(tokens=execute_tokens,
                            rows_out=len(result.final_table))

        self._adopt_repairs(prepared, plan, result, opts.function_versions)
        result.sketch = prepared.parse_outcome.sketch
        result.intent = prepared.parse_outcome.intent
        result.logical_plan = prepared.logical_plan
        self.last_result = result

        response = QueryResponse(request=request, result=result, session_id=self.id,
                                 prepared_hit=hit,
                                 prepare_tokens=0 if hit else prepared.prepare_tokens,
                                 optimize_tokens=0 if hit else
                                 prepared.optimization.tokens_spent,
                                 execute_tokens=execute_tokens,
                                 wall_clock_s=timer.elapsed)
        if gateway_client is not None:
            # What the shared gateway did for *this* request (per-session
            # counters are race-free: a session runs one query at a time).
            response.gateway_stats = gateway_client.counters.delta(gateway_marker)
        quota = self.quota_state()
        response.tokens_used = quota["tokens_used"]
        response.tokens_remaining = quota["tokens_remaining"]
        response.quota_exhausted = bool(quota["quota_exhausted"])
        if self.service.skill_store is not None:
            response.skill_store_stats = self.service.skill_store.stats()
        if opts.explain:
            response.explanation = self.stack.explainer.explain_pipeline(result)
        if opts.explain_top and len(result.final_table) and \
                result.final_table.schema.has_column("lid"):
            top_lid = result.rows()[0]["lid"]
            if top_lid is not None:
                response.top_explanation = \
                    self.stack.explainer.explain_tuple(result, top_lid).describe()
        return response

    def _prepare(self, request: QueryRequest,
                 channel: InteractionChannel) -> Tuple[PreparedQuery, bool]:
        """Fetch the compiled plan from the service cache, or compile it here."""
        cache = self.service.prepared
        agent = channel.user
        user_fp = agent.interaction_fingerprint()
        cacheable = (cache is not None and request.options.use_prepared
                     and user_fp is not None)
        if not cacheable:
            if cache is not None:
                cache.note_uncacheable()
            return self._compile(request, channel, key=None), False

        key = prepared_key(request.nl_query, self.service.catalog_fingerprint(),
                           user_fp, self.models.lexicon.fingerprint())
        return cache.get_or_build(key, lambda: self._compile(request, channel, key=key))

    def _compile(self, request: QueryRequest, channel: InteractionChannel,
                 key) -> PreparedQuery:
        """Parse, plan, verify, and optimize one query (the expensive path)."""
        marker = self.models.cost_meter.snapshot()
        with obs_span("parse", kind="stage"):
            parse_outcome = self.stack.parser.parse(request.nl_query, channel)
        with obs_span("plan", kind="stage") as plan_sp:
            plan = self.stack.plan_generator.generate(parse_outcome.sketch, parse_outcome.intent)
            report = self.stack.plan_verifier.verify(plan)
            rounds = 0
            while not report.approved and rounds < request.options.max_plan_rounds:
                plan = self.stack.plan_generator.revise(plan, report.hints)
                report = self.stack.plan_verifier.verify(plan)
                rounds += 1
            plan_sp.tag(revision_rounds=rounds, approved=report.approved)
            if not report.approved:
                raise PlanVerificationError(
                    "the plan verifier rejected the logical plan after "
                    f"{request.options.max_plan_rounds} revision rounds: {report.problems}")
        physical, optimization = self.stack.optimizer.optimize(plan)
        return PreparedQuery(key=key, nl_query=request.nl_query,
                             parse_outcome=parse_outcome, logical_plan=plan,
                             verification=report, physical_plan=physical,
                             optimization=optimization,
                             prepare_tokens=self.models.cost_meter.tokens_since(marker))

    def _adopt_repairs(self, prepared: PreparedQuery, executed_plan, result,
                       pins: Dict[str, int]) -> None:
        """Fold on-the-fly repairs back into the cached plan.

        Execution runs on a clone, so without this every prepared hit would
        start from the original faulty implementation and re-pay the same
        repair (and re-register one more registry version) on every request.
        The repaired function is written back operator-by-operator; pinned
        operators are skipped (their version was the caller's choice).
        ``operator.function`` assignment is atomic, so concurrent executions
        at worst write back equivalent repairs.
        """
        records = {record.operator_name: record for record in result.records}
        for cached_op, run_op in zip(prepared.physical_plan.operators,
                                     executed_plan.operators):
            record = records.get(run_op.name)
            if record is None or run_op.name in pins:
                continue
            if (record.repairs or record.anomalies) and \
                    run_op.function is not cached_op.function:
                cached_op.function = run_op.function

    # -- explanation -----------------------------------------------------------------
    def explain_pipeline(self, result: Optional[QueryResult] = None) -> str:
        """Coarse-grained explanation of this session's latest (or given) result."""
        return self.stack.explainer.explain_pipeline(self._result(result))

    def explain_tuple(self, result: Optional[QueryResult], lid: int):
        """Fine-grained explanation of one output tuple by lineage id."""
        return self.stack.explainer.explain_tuple(self._result(result), lid)

    def ask(self, question: str, result: Optional[QueryResult] = None) -> str:
        """Free-form NL question over a result's lineage."""
        resolved = self._result(result)
        answer = self.stack.lineage_qa.ask(question, resolved)
        if resolved.transcript is not None:
            channel = InteractionChannel(SilentUser(), resolved.transcript)
            channel.record_explanation_request(question, answer)
        return answer

    def _result(self, result: Optional[QueryResult]) -> QueryResult:
        resolved = result or self.last_result
        if resolved is None:
            raise ValueError("no query has been executed in this session yet")
        return resolved

    def __repr__(self) -> str:
        return (f"Session(id={self.id!r}, queries={len(self.transcript)}, "
                f"intermediates={len(self._intermediates)})")

"""The request/response service layer: shared core + concurrent sessions.

:class:`KathDBService` owns the expensive shared state exactly once — the
simulated model suite, the populated catalog with its multimodal views, the
lineage of the loaded corpus, the versioned function registry, and the
prepared-query cache — and hands out cheap isolated :class:`Session` objects.
Queries are submitted as :class:`QueryRequest` values and answered with
:class:`QueryResponse` values, either one at a time (:meth:`query`),
fire-and-forget (:meth:`submit` / :meth:`gather`), or as a batch over a
worker thread pool (:meth:`query_batch`).
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import itertools
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.api.prepared import PreparedQueryCache
from repro.api.request import QueryOptions, QueryRequest, QueryResponse
from repro.api.session import Session
from repro.core.config import KathDBConfig
from repro.errors import QueryCancelledError, SchedulerRejection
from repro.data.mmqa import MovieCorpus
from repro.datamodel.lineage import LineageStore
from repro.datamodel.views import PopulationReport, ViewPopulator
from repro.fao.registry import FunctionRegistry
from repro.gateway.gateway import ModelGateway
from repro.interaction.user import UserAgent
from repro.models.base import ModelSuite
from repro.models.cost import CostMeter
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import (JsonlTraceSink, SlowQueryLog, TraceRingBuffer,
                             write_chrome_trace)
from repro.obs.span import Trace
from repro.obs.trace import Tracer
from repro.optimizer.profile_cache import ProfileCache
from repro.relational.catalog import Catalog
from repro.sched.cancel import CancelToken
from repro.sched.scheduler import FairShareScheduler, ScheduledTask
from repro.skills.backends import backend_from_spec
from repro.skills.store import SkillStore


class KathDBService:
    """A multi-session KathDB server core."""

    def __init__(self, config: Optional[KathDBConfig] = None,
                 max_workers: Optional[int] = None):
        self.config = config or KathDBConfig()
        # Observability: one MetricsRegistry is the single backing store for
        # every stats surface (the gateway's event stream and counters, the
        # skill store's counters, the registered gateway/skills/prepared
        # views), and one Tracer feeds it span-finish events.  Finished
        # traces flow through _trace_finished into the ring buffer, the
        # optional JSONL sink, and the slow-query log.
        self.metrics = MetricsRegistry()
        self._trace_buffer = TraceRingBuffer(self.config.trace_buffer_size)
        self._trace_sink = (JsonlTraceSink(self.config.trace_jsonl_path)
                            if self.config.trace_jsonl_path is not None
                            else None)
        self.slow_queries = SlowQueryLog(threshold_ms=self.config.slow_query_ms)
        self.tracer = Tracer(enabled=self.config.enable_tracing,
                             metrics=self.metrics,
                             on_trace_finish=self._trace_finished)
        meter = CostMeter(latency_scale=self.config.simulate_model_latency)
        self.models = ModelSuite.create(seed=self.config.seed,
                                        vlm_error_rate=self.config.vlm_error_rate,
                                        ocr_error_rate=self.config.ocr_error_rate,
                                        cost_meter=meter)
        self.catalog = Catalog()
        self.lineage = LineageStore(level=self.config.lineage_level)
        # The durable skill store (when configured) is the single persistence
        # path for generated code: the registry mirrors sources through its
        # file backend, and the profile cache persists through the same
        # backend.  A bare ``workspace`` keeps mounting a file backend at
        # that path (the legacy layout) without enabling retrieval.
        self.skill_store = self._build_skill_store()
        source_sink = (self.skill_store.source_sink()
                       if self.skill_store is not None and self.config.workspace is None
                       else None)
        self.registry = FunctionRegistry(workspace=self.config.workspace,
                                         source_sink=source_sink)
        # The model gateway fronts all foundation-model traffic from service
        # sessions (and corpus population): shared exact/semantic caching,
        # in-flight coalescing, micro-batching, and admission control.
        gateway_config = self.config.gateway_config()
        self.gateway_store = (self._build_gateway_store()
                              if gateway_config is not None else None)
        self.gateway: Optional[ModelGateway] = (
            ModelGateway(gateway_config, metrics=self.metrics,
                         store=self.gateway_store)
            if gateway_config is not None else None)
        populator_models = (
            self.gateway.route(self.models, "loader", quota_exempt=True)
            if self.gateway is not None else self.models)
        self.populator = ViewPopulator(populator_models, self.catalog, self.lineage,
                                       batch_size=self.config.effective_batch_size())
        self.profile_cache = (
            ProfileCache(path=self.config.profile_cache_path,
                         backend=(self.skill_store.backend
                                  if self.skill_store is not None else None))
            if self.config.enable_profile_cache else None)
        self.prepared: Optional[PreparedQueryCache] = (
            PreparedQueryCache(capacity=self.config.prepared_cache_size)
            if self.config.enable_prepared_cache else None)
        self.max_workers = max_workers or self.config.service_max_workers
        self.population_report: Optional[PopulationReport] = None
        self._session_ids = itertools.count(1)
        self._pool: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._closed = False
        # The admission scheduler replaces the flat worker pool: per-tenant
        # fair-share queues inside priority classes, bounded backpressure,
        # deadline shedding.  When disabled (enable_scheduler=False — e.g.
        # the shards of a ShardedService, or the flat-pool benchmark
        # baseline) the legacy _ensure_pool() path is used instead.
        self.scheduler: Optional[FairShareScheduler] = (
            FairShareScheduler(
                workers=self.max_workers,
                queue_limit=self.config.sched_queue_limit,
                reservations=self.config.sched_class_reservations or None,
                tenant_weights=self.config.sched_tenant_weights or None,
                metrics=self.metrics)
            if self.config.enable_scheduler else None)
        # The legacy stats surfaces stay API-compatible as registry views:
        # gateway_stats()/skill_stats() read *through* the registry, so one
        # store owns every number the service reports.
        if self.gateway is not None:
            self.metrics.register_view("gateway", self.gateway.flat_stats)
        if self.skill_store is not None:
            self.metrics.register_view("skills", self.skill_store.stats)
        if self.prepared is not None:
            self.metrics.register_view("prepared", self.prepared.stats.as_dict)
        if self.gateway_store is not None:
            self.metrics.register_view("gateway_cache_store",
                                       self.gateway_store.stats.as_dict)
        if self.scheduler is not None:
            self.metrics.register_view("sched", self.scheduler.stats)

    def _build_gateway_store(self):
        """The durable gateway cache store these config knobs imply, or None.

        ``"memory"`` means no cross-process durability is wanted — the
        in-process :class:`~repro.gateway.cache.ExactResultCache` already
        is the memory tier, so wrapping a second in-memory copy would only
        double every entry.
        """
        config = self.config
        if config.gateway_cache_backend == "memory" or not config.enable_model_cache:
            return None
        from repro.gateway.persist import GatewayCacheStore
        backend = backend_from_spec(config.gateway_cache_backend,
                                    config.gateway_cache_path)
        return GatewayCacheStore(backend)

    def _build_skill_store(self) -> Optional[SkillStore]:
        """The durable skill store these config knobs imply, or None."""
        config = self.config
        if not config.enable_skill_store and config.skill_store_path is None:
            return None
        backend = backend_from_spec(config.skill_store_backend, config.skill_store_path)
        provenance = {
            "seed": config.seed,
            "model_suite": type(self.models.llm).__name__,
            "explore_variants": config.explore_variants,
            "min_accuracy": config.min_accuracy,
            "max_repair_rounds": config.max_repair_rounds,
            "vectorized_batch_size": config.effective_batch_size(),
        }
        return SkillStore(backend,
                          retrieval_threshold=config.skill_retrieval_threshold,
                          provenance=provenance,
                          metrics=self.metrics)

    # -- data loading ------------------------------------------------------------------
    def load_corpus(self, corpus: MovieCorpus, populate_views: bool = True) -> PopulationReport:
        """Load a multimodal corpus into the shared catalog (once, up front).

        This is the only phase that writes to the shared catalog and lineage
        store; afterwards both are treated as read-only by every session.
        """
        # Swapping corpora invalidates the *URI-keyed* slice of the gateway
        # cache: image URIs collide across corpora — two corpora both contain
        # file://posters/clean_and_sober.png with different pixels — so
        # entries whose request embeds a URI are dropped before populating.
        # Purely text-keyed entries (NER extraction, embeddings, LLM calls)
        # hash their own content and stay valid, so a reload that shares
        # documents with the previous corpus re-uses their results.
        # (Prepared plans are cleared after population, below, once the new
        # catalog fingerprint is final.)
        if self.gateway is not None:
            self.gateway.clear(volatile_only=True)
        self.population_report = self.populator.load_corpus(corpus,
                                                            populate_views=populate_views)
        self.invalidate_prepared()
        return self.population_report

    def catalog_fingerprint(self) -> str:
        """The current digest of the shared catalog's registered contents.

        Computed fresh on every call (it is a cheap walk over table names,
        kinds, row counts, and column names) so that even direct catalog
        mutations — ``db.catalog.register(...)`` from legacy callers —
        immediately shift every prepared-query key instead of serving plans
        compiled against a stale schema.
        """
        return self.catalog.fingerprint()

    def invalidate_prepared(self) -> None:
        """Drop every cached plan (after the catalog contents changed)."""
        if self.prepared is not None:
            self.prepared.clear()

    # -- sessions ----------------------------------------------------------------------
    def session(self, user: Optional[UserAgent] = None,
                name: Optional[str] = None,
                tenant_id: Optional[str] = None) -> Session:
        """A fresh isolated session: forked models, scoped lineage, own transcript."""
        session_id = name or f"s{next(self._session_ids)}"
        return Session(self, session_id, user=user, tenant_id=tenant_id)

    # -- querying ----------------------------------------------------------------------
    def query(self, request: Union[str, QueryRequest],
              user: Optional[UserAgent] = None,
              options: Optional[QueryOptions] = None) -> QueryResponse:
        """Answer one request in a fresh throwaway session."""
        return self._schedule(self._coerce(request, user, options)).result()

    def submit(self, request: Union[str, QueryRequest],
               user: Optional[UserAgent] = None,
               options: Optional[QueryOptions] = None
               ) -> "concurrent.futures.Future[QueryResponse]":
        """Admit one request to the scheduler; returns a future.

        The future always resolves to a :class:`QueryResponse` — a shed
        request (full queue, lapsed deadline, draining scheduler) yields a
        structured ``ok=False`` response with ``shed_reason`` set rather
        than raising.
        """
        return self._schedule(self._coerce(request, user, options))

    def gather(self, futures: Iterable["concurrent.futures.Future[QueryResponse]"]
               ) -> List[QueryResponse]:
        """Wait for submitted requests, preserving submission order."""
        return [future.result() for future in futures]

    def query_batch(self, requests: Sequence[Union[str, QueryRequest]],
                    user: Optional[UserAgent] = None,
                    options: Optional[QueryOptions] = None,
                    jobs: Optional[int] = None) -> List[QueryResponse]:
        """Answer many requests, each in its own session.

        ``jobs`` caps this batch's in-flight requests (default: the service
        worker count); ``jobs=1`` degrades to a serial loop, which by design
        produces row-identical results to the concurrent path.  All paths
        funnel through :meth:`_schedule`, so batch requests queue under
        their tenants like any other work.
        """
        coerced = [self._coerce(r, user, options) for r in requests]
        if len(coerced) > 1:
            # One agent shared across concurrent requests — whether via the
            # user= convenience parameter or embedded in the QueryRequests —
            # would race its internal state (e.g. a ScriptedUser's correction
            # cursor); give every request an equivalent independent copy.
            coerced = [self._isolate_user(request) for request in coerced]
        workers = jobs or self.max_workers
        if workers <= 1 or len(coerced) <= 1:
            # Serial: at most one request in flight at a time.
            return [self._schedule(request).result() for request in coerced]
        limit = min(workers, len(coerced))
        if self.scheduler is None:
            # Legacy flat pool (enable_scheduler=False): a private per-batch
            # pool, exactly the pre-scheduler dispatch path.
            with concurrent.futures.ThreadPoolExecutor(
                    max_workers=limit,
                    thread_name_prefix="kathdb-batch") as pool:
                return list(pool.map(self._run, coerced))
        # A counting gate caps this batch's in-flight share of the scheduler
        # at ``jobs`` without blocking other callers' submissions.
        self.scheduler.ensure_workers(limit)
        gate = threading.Semaphore(limit)
        futures: List["concurrent.futures.Future[QueryResponse]"] = []
        for request in coerced:
            gate.acquire()
            future = self._schedule(request)
            future.add_done_callback(lambda _f: gate.release())
            futures.append(future)
        return [future.result() for future in futures]

    # -- internals ---------------------------------------------------------------------
    def _coerce(self, request: Union[str, QueryRequest],
                user: Optional[UserAgent],
                options: Optional[QueryOptions]) -> QueryRequest:
        if isinstance(request, str):
            return QueryRequest(nl_query=request, user=user,
                                options=options or QueryOptions())
        return request

    def _isolate_user(self, request: QueryRequest) -> QueryRequest:
        """Swap a request's agent for an independent copy (stateful agents)."""
        if request.user is None:
            return request
        cloned = request.user.clone()
        if cloned is request.user:
            return request
        return dataclasses.replace(request, user=cloned)

    def _schedule(self, request: QueryRequest
                  ) -> "concurrent.futures.Future[QueryResponse]":
        """The single dispatch entry point behind query/submit/query_batch.

        Resolves the request's (tenant, priority class, deadline), admits it
        to the fair-share scheduler, and returns a future that *always*
        resolves to a response: scheduler rejections (backpressure, lapsed
        deadline, shutdown) become structured ``ok=False`` responses with
        ``shed_reason`` set instead of exceptions.
        """
        session_name = f"s{next(self._session_ids)}"
        tenant, sched_class, deadline_ms = request.sched_params(
            self.config.sched_default_priority)
        tenant = tenant or session_name
        if self.scheduler is None:
            # Legacy flat pool: no queueing policy, no deadline enforcement.
            return self._ensure_pool().submit(
                self._run, request, session_name, None, tenant)
        token = CancelToken.with_deadline_ms(deadline_ms)

        def runner(task: ScheduledTask) -> QueryResponse:
            return self._run(request, session_name, task, tenant)

        def shed(task: ScheduledTask, reason: str) -> QueryResponse:
            return self._shed_response(request, session_name, tenant,
                                       task.sched_class, reason,
                                       queue_ms=task.queue_ms)

        if self.scheduler.in_worker():
            # Re-entrant submission from inside a worker (e.g. a nested
            # query): run inline — queueing could deadlock a full pool.
            future: "concurrent.futures.Future[QueryResponse]" = \
                concurrent.futures.Future()
            future.set_result(self.scheduler.run_inline(
                runner, tenant, sched_class, token=token))
            return future
        try:
            return self.scheduler.submit(runner, tenant, sched_class,
                                         token=token, shed_result=shed)
        except SchedulerRejection as rejection:
            future = concurrent.futures.Future()
            future.set_result(self._shed_response(
                request, session_name, tenant, sched_class, rejection.reason))
            return future

    def _shed_response(self, request: QueryRequest, session_id: str,
                       tenant: str, sched_class: str, reason: str,
                       queue_ms: float = 0.0) -> QueryResponse:
        """A structured ``ok=False`` response for a request that never ran."""
        stats = (self.scheduler.tenant_snapshot(tenant)
                 if self.scheduler is not None else None)
        return QueryResponse(
            request=request, result=None, session_id=session_id, ok=False,
            error=f"request shed by scheduler ({reason}) for tenant {tenant!r}",
            shed_reason=reason, sched_class=sched_class, queue_ms=queue_ms,
            scheduler_stats=stats)

    def _run(self, request: QueryRequest, session_name: Optional[str] = None,
             task: Optional[ScheduledTask] = None,
             tenant: Optional[str] = None) -> QueryResponse:
        """Execute one request in a fresh session, capturing failures."""
        session = self.session(user=request.user, name=session_name,
                               tenant_id=tenant)
        start_pc = time.perf_counter()
        try:
            response = session.query(request)
        except QueryCancelledError as cancelled:
            # Cooperative cancellation (deadline mid-flight): the partial
            # work was abandoned at an operator/gateway boundary; the
            # session was throwaway, so no shared state is left dirty.
            quota = session.quota_state()
            response = QueryResponse(
                request=request, result=None, session_id=session.id,
                ok=False, error=f"query cancelled: {cancelled.reason}",
                shed_reason=cancelled.reason,
                tokens_used=quota["tokens_used"],
                tokens_remaining=quota["tokens_remaining"],
                quota_exhausted=bool(quota["quota_exhausted"]),
                latency_ms=(time.perf_counter() - start_pc) * 1000.0,
                trace_id=session.last_trace_id)
        except Exception as error:  # noqa: BLE001 - service boundary
            quota = session.quota_state()
            response = QueryResponse(
                request=request, result=None, session_id=session.id,
                ok=False, error=f"{type(error).__name__}: {error}",
                tokens_used=quota["tokens_used"],
                tokens_remaining=quota["tokens_remaining"],
                quota_exhausted=bool(quota["quota_exhausted"]),
                latency_ms=(time.perf_counter() - start_pc) * 1000.0,
                trace_id=session.last_trace_id)
        if task is not None:
            response.queue_ms = task.queue_ms
            response.sched_class = task.sched_class
        if self.scheduler is not None and tenant is not None:
            response.scheduler_stats = self.scheduler.tenant_snapshot(tenant)
        return response

    def _trace_finished(self, trace: Trace) -> None:
        """Tracer hook: fan a finished trace out to every sink.

        Sinks must never break a query — IO failures are tallied on the
        registry and dropped.
        """
        self._trace_buffer.add(trace)
        self.slow_queries.observe(trace)
        if self._trace_sink is not None:
            try:
                self._trace_sink.write(trace)
            except OSError:
                self.metrics.counter("trace_sink_errors").inc()

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.max_workers, thread_name_prefix="kathdb-svc")
            return self._pool

    # -- lifecycle / introspection -------------------------------------------------------
    def shutdown(self) -> None:
        """Stop the worker pool and flush/close persistent backends.

        Idempotent: the pool teardown always runs (and re-runs harmlessly),
        while the backend closes — the gateway's durable cache store, the
        skill store's backend, the JSONL trace sink — happen exactly once.
        File and SQLite-backed runs must never lose buffered writes to a
        double ``shutdown()`` or a ``with`` block that also calls it.
        """
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
            if self._closed:
                return
            self._closed = True
        if self.scheduler is not None:
            self.scheduler.shutdown(wait=True)
        if self.gateway is not None:
            self.gateway.close()
        if self.skill_store is not None:
            self.skill_store.close()
        if self._trace_sink is not None:
            try:
                self._trace_sink.close()
            except OSError:
                self.metrics.counter("trace_sink_errors").inc()

    def __enter__(self) -> "KathDBService":
        return self

    def __exit__(self, *exc_info) -> None:
        """Idempotent close: re-entering/exiting never double-releases."""
        self.shutdown()

    def total_tokens(self) -> int:
        """Tokens spent by the shared suite (corpus population, default stack)."""
        return self.models.cost_meter.total_tokens

    def prepared_stats(self) -> Dict[str, int]:
        """Prepared-query cache counters (empty when the cache is disabled)."""
        return self.prepared.stats.as_dict() if self.prepared is not None else {}

    def scheduler_stats(self) -> Optional[Dict[str, Any]]:
        """Fair-share scheduler state (None when the scheduler is disabled).

        A view over the shared :class:`MetricsRegistry`, matching how
        ``gateway_stats()``/``skill_stats()`` are surfaced: per-class queue
        depth/running/reservations, per-tenant queued/shed/expired counts,
        and the admitted/completed/shed/expired totals.
        """
        if self.scheduler is None:
            return None
        return self.metrics.view("sched")

    def skill_stats(self) -> Optional[Dict[str, int]]:
        """Skill-store hit/miss/revalidation counters (None when disabled).

        A view over the shared :class:`MetricsRegistry` (the store's
        counters live there); the return shape is unchanged.
        """
        if self.skill_store is None:
            return None
        return self.metrics.view("skills")

    # -- observability ------------------------------------------------------------------
    def traces(self, limit: Optional[int] = None) -> List[Trace]:
        """Recently finished query traces, oldest first."""
        return self._trace_buffer.list(limit)

    def trace(self, trace_id: str) -> Optional[Trace]:
        """One buffered trace by id (``QueryResponse.trace_id``), or None."""
        return self._trace_buffer.get(trace_id)

    def export_chrome_trace(self, path: Union[str, Path],
                            trace_ids: Optional[Sequence[str]] = None) -> int:
        """Write buffered traces as Chrome ``trace_event`` JSON.

        The file opens directly in ``chrome://tracing`` or Perfetto.
        ``trace_ids`` selects a subset (unknown ids are skipped); the
        default exports the whole ring buffer.  Returns the event count.
        """
        if trace_ids is None:
            traces = self.traces()
        else:
            traces = [t for t in (self.trace(tid) for tid in trace_ids)
                      if t is not None]
        return write_chrome_trace(path, traces)

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Every counter, gauge, and histogram summary in the registry."""
        return self.metrics.snapshot()

    def gateway_stats(self, window_s: Optional[float] = None,
                      session_id: Optional[str] = None) -> Dict[str, object]:
        """Headline model-gateway counters (empty when the gateway is off).

        ``window_s`` additionally attaches a ``windowed`` entry with the
        rolling counters and rates over the last that-many seconds — the
        live-traffic view for long-running services, alongside the
        cumulative headline numbers.  ``session_id`` scopes the answer to
        one session: the cumulative block becomes that session's gateway
        counters and the windowed block (when requested) covers only the
        events its calls produced — the per-tenant view for quota tuning.
        """
        if self.gateway is None:
            return {}
        stats: Dict[str, object]
        if session_id is not None:
            stats = dict(self.gateway.session_counters(session_id) or {})
            stats["session_id"] = session_id
            if window_s is not None:
                stats["windowed"] = self.gateway.windowed_stats(
                    window_s, session_id=session_id)
            return stats
        # The headline block is the registered "gateway" registry view —
        # same dict flat_stats() always returned, read through the registry.
        stats = dict(self.metrics.view("gateway"))
        if window_s is not None:
            stats["windowed"] = self.gateway.windowed_stats(window_s)
        return stats

    def describe(self) -> str:
        """A short status summary for operators."""
        lines = [f"KathDBService: {len(self.catalog)} catalog tables, "
                 f"{len(self.registry.names())} generated functions, "
                 f"{self.max_workers} workers"]
        if self.scheduler is not None:
            lines.append(self.scheduler.describe())
        if self.prepared is not None:
            lines.append(self.prepared.describe())
        if self.gateway is not None:
            lines.append(self.gateway.describe())
        if self.skill_store is not None:
            lines.append(self.skill_store.describe())
        query_latency = self.metrics.histogram("latency_ms.query")
        if query_latency.count:
            summary = query_latency.summary()
            lines.append(f"queries: {summary['count']} traced, "
                         f"p50={summary['p50']}ms p95={summary['p95']}ms "
                         f"p99={summary['p99']}ms max={summary['max']}ms")
        if self.slow_queries.enabled:
            lines.append(self.slow_queries.describe())
        return "\n".join(lines)

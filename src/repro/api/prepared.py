"""Prepared queries: parse + optimize once, execute many.

Parsing and optimizing dominate a query's token budget (agent calls for
ambiguity detection, sketch generation, plan writing/verification, candidate
profiling); execution of the chosen relational implementations is
comparatively cheap.  The cache therefore stores the *compiled* artifact — the
physical plan plus the parse outcome — keyed on:

* the normalized NL text,
* the catalog fingerprint (schema/kind/row-count digest),
* the user's interaction fingerprint (two users with the same clarification
  script steer parsing identically; a console user is uncacheable), and
* the session lexicon's fingerprint (clarifications mutate a session's
  private lexicon, and the lexicon steers parsing — diverged sessions must
  not share plans).

Entries are immutable: executions run on :meth:`PhysicalPlan.clone` copies,
so one run's on-the-fly repairs never leak into the cached plan.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.optimizer.optimizer import OptimizationReport
from repro.optimizer.physical_plan import PhysicalPlan
from repro.parser.logical_plan import LogicalPlan
from repro.parser.nl_parser import ParseOutcome
from repro.parser.plan_verifier import VerificationReport
from repro.utils.text import normalize

PreparedKey = Tuple[str, str, str, str]


def normalize_query(nl_query: str) -> str:
    """Canonical cache form of an NL query: lowercased, whitespace-collapsed,
    trailing sentence punctuation stripped."""
    return normalize(nl_query).strip().rstrip(".!?").strip()


def prepared_key(nl_query: str, catalog_fingerprint: str,
                 user_fingerprint: str, lexicon_fingerprint: str = "") -> PreparedKey:
    """The full cache key for one (query, catalog, user-script, lexicon)
    combination.

    Function-version pins are deliberately *not* part of the key: compilation
    never reads them (they are applied to the per-execution plan clone), so
    pinned and unpinned requests share one compiled artifact.
    """
    return (normalize_query(nl_query), catalog_fingerprint, user_fingerprint,
            lexicon_fingerprint)


@dataclass
class PreparedQuery:
    """One compiled query: everything produced before execution."""

    key: PreparedKey
    nl_query: str
    parse_outcome: ParseOutcome
    logical_plan: LogicalPlan
    verification: VerificationReport
    physical_plan: PhysicalPlan
    optimization: OptimizationReport
    prepare_tokens: int = 0
    hits: int = 0

    def instantiate(self) -> PhysicalPlan:
        """A fresh executable copy of the cached plan."""
        return self.physical_plan.clone()


@dataclass
class CacheStats:
    """Hit/miss counters for observability."""

    hits: int = 0
    misses: int = 0
    uncacheable: int = 0
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "uncacheable": self.uncacheable, "evictions": self.evictions}


class PreparedQueryCache:
    """A thread-safe LRU cache of :class:`PreparedQuery` entries.

    :meth:`get_or_build` serializes concurrent preparations of the *same* key
    behind a per-key lock (the first caller compiles, the rest reuse) while
    different keys prepare in parallel.
    """

    def __init__(self, capacity: int = 64):
        self.capacity = max(1, capacity)
        self._entries: "OrderedDict[PreparedKey, PreparedQuery]" = OrderedDict()
        self._lock = threading.Lock()
        self._key_locks: Dict[PreparedKey, threading.Lock] = {}
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: PreparedKey) -> Optional[PreparedQuery]:
        """Look one entry up, bumping its LRU position on a hit."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                entry.hits += 1
                self.stats.hits += 1
            return entry

    def put(self, entry: PreparedQuery) -> None:
        """Insert one entry, evicting the least recently used beyond capacity."""
        with self._lock:
            self._entries[entry.key] = entry
            self._entries.move_to_end(entry.key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def get_or_build(self, key: PreparedKey,
                     build: Callable[[], PreparedQuery]) -> Tuple[PreparedQuery, bool]:
        """Return ``(entry, hit)``; ``build`` runs at most once per key at a time."""
        entry = self.get(key)
        if entry is not None:
            return entry, True
        with self._lock:
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        try:
            with key_lock:
                entry = self.get(key)
                if entry is not None:
                    return entry, True
                with self._lock:
                    self.stats.misses += 1
                entry = build()
                self.put(entry)
        finally:
            # Always release the per-key lock slot, even when build() raises
            # (e.g. plan verification fails) — otherwise failing keys leak one
            # lock object apiece for the life of the service.
            with self._lock:
                self._key_locks.pop(key, None)
        return entry, False

    def note_uncacheable(self) -> None:
        """Count one request that could not use the cache (locked)."""
        with self._lock:
            self.stats.uncacheable += 1

    def clear(self) -> None:
        """Drop every cached plan (e.g. after the catalog changed)."""
        with self._lock:
            self._entries.clear()

    def describe(self) -> str:
        """A short human-readable summary."""
        stats = self.stats.as_dict()
        with self._lock:
            entries = list(self._entries.values())
        lines = [f"prepared-query cache: {len(entries)}/{self.capacity} entries, "
                 + ", ".join(f"{k}={v}" for k, v in stats.items())]
        for entry in entries:
            lines.append(f"  {entry.key[0][:60]!r}: {entry.hits} hit(s), "
                         f"{len(entry.physical_plan)} operators")
        return "\n".join(lines)

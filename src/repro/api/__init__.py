"""The layered public API: Session → Service → Engine.

This package is the concurrency-safe face of the reproduction:

* :class:`~repro.api.service.KathDBService` owns the shared read-only core
  (catalog, model suite, function registry, prepared-query cache) and a
  worker pool for batches;
* :class:`~repro.api.session.Session` owns one caller's mutable state
  (intermediates namespace, transcript, lineage scope, cost ledger);
* :class:`~repro.api.request.QueryRequest` / ``QueryResponse`` are the
  structured envelopes that replace ad-hoc keyword arguments.

The legacy :class:`~repro.core.kathdb.KathDB` facade remains as a thin
wrapper over a single default session.
"""

from repro.api.prepared import (
    PreparedQuery,
    PreparedQueryCache,
    normalize_query,
    prepared_key,
)
from repro.api.request import QueryOptions, QueryRequest, QueryResponse
from repro.api.service import KathDBService
from repro.api.session import Session

__all__ = [
    "KathDBService",
    "Session",
    "QueryOptions",
    "QueryRequest",
    "QueryResponse",
    "PreparedQuery",
    "PreparedQueryCache",
    "normalize_query",
    "prepared_key",
]

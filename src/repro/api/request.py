"""Structured request/response types for the service layer.

These replace the ad-hoc keyword arguments of the original ``KathDB.query``
facade: a :class:`QueryRequest` carries everything one query needs (the NL
text, the user agent, per-query options), and a :class:`QueryResponse` wraps
the :class:`~repro.executor.result.QueryResult` with service-level metadata
(session id, prepared-cache outcome, token split, wall-clock, optional
explanations) so batch callers never have to touch shared facade state like
``last_result``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.executor.result import QueryResult
from repro.interaction.channel import Transcript
from repro.interaction.user import UserAgent


@dataclass
class QueryOptions:
    """Per-query knobs carried by a :class:`QueryRequest`.

    ``function_versions`` pins generated-function versions (name -> version
    id), the request/response equivalent of ``KathDB.rerun_with_versions``.
    """

    use_prepared: bool = True        # reuse / populate the prepared-query cache
    explain: bool = False            # attach the coarse pipeline explanation
    explain_top: bool = False        # attach the top result tuple's explanation
    max_plan_rounds: int = 3         # plan writer/verifier revision budget
    function_versions: Dict[str, int] = field(default_factory=dict)
    tag: Optional[str] = None        # free-form caller tag, echoed back
    # Scheduling knobs (option-level defaults; the request-level fields of
    # the same names win when both are set).  Absent tenant => the session
    # id; absent priority => the service's default class ("interactive").
    tenant_id: Optional[str] = None
    priority: Optional[str] = None   # "interactive" | "batch" | "background"
    deadline_ms: Optional[float] = None  # relative deadline from submission


@dataclass
class QueryRequest:
    """One natural-language query, addressed to a session or a service."""

    nl_query: str
    user: Optional[UserAgent] = None
    options: QueryOptions = field(default_factory=QueryOptions)
    # A caller-supplied transcript to append this query's interactions to;
    # None means the session's own transcript is used.
    transcript: Optional[Transcript] = None
    # Multi-tenant scheduling: which tenant this request bills/queues under
    # (None = the per-request session id, i.e. pre-scheduler behavior),
    # its priority class, and an optional relative deadline after which the
    # scheduler sheds it pre-dispatch or cancels it mid-flight.
    tenant_id: Optional[str] = None
    priority: Optional[str] = None
    deadline_ms: Optional[float] = None

    def sched_params(self, default_priority: str = "interactive",
                     ) -> "tuple[Optional[str], str, Optional[float]]":
        """Resolve (tenant, priority class, deadline_ms) for the scheduler.

        Request-level fields win over option-level ones; a None tenant means
        "use the session id" (resolved by the service, which mints the id).
        """
        tenant = self.tenant_id or self.options.tenant_id
        priority = self.priority or self.options.priority or default_priority
        deadline = (self.deadline_ms if self.deadline_ms is not None
                    else self.options.deadline_ms)
        return tenant, priority, deadline


@dataclass
class QueryResponse:
    """The service's answer to one :class:`QueryRequest`."""

    request: QueryRequest
    result: Optional[QueryResult]
    session_id: str = ""
    ok: bool = True
    error: Optional[str] = None
    prepared_hit: bool = False       # the plan came from the prepared cache
    prepare_tokens: int = 0          # tokens spent parsing + optimizing (0 on a hit)
    optimize_tokens: int = 0         # the optimizer's share of prepare_tokens
    execute_tokens: int = 0          # tokens spent executing the plan
    wall_clock_s: float = 0.0
    explanation: Optional[str] = None
    top_explanation: Optional[str] = None
    # What the model gateway did for this request (hits/misses/coalesced/
    # semantic_hits/tokens_saved/tokens_charged/batch_tokens_saved); None
    # when no gateway routed the session.
    gateway_stats: Optional[Dict[str, int]] = None
    # The answering session's quota position after this request, so callers
    # can back off *before* the gateway raises SessionQuotaExceededError.
    # ``tokens_used`` counts gateway-charged tokens; ``tokens_remaining`` is
    # None when no per-session quota applies.
    tokens_used: int = 0
    tokens_remaining: Optional[int] = None
    quota_exhausted: bool = False
    # Skill-store counters (exact/near hits, misses, revalidations, demotions)
    # at the end of this request; None when the service has no skill store.
    skill_store_stats: Optional[Dict[str, int]] = None
    # End-to-end wall time the service spent answering this request, measured
    # with perf_counter around the whole query (trace root span included).
    latency_ms: float = 0.0
    # The trace this request produced (fetch the full tree via
    # ``service.trace(trace_id)``); None when tracing is disabled.
    trace_id: Optional[str] = None
    # Scheduling metadata: time spent queued before dispatch, the priority
    # class the request ran under, why it was shed ("backpressure" /
    # "deadline" / "shutdown"; None when it ran), and a small per-tenant
    # scheduler snapshot (queue depth, sheds, expiries) for backoff logic.
    queue_ms: float = 0.0
    sched_class: Optional[str] = None
    shed_reason: Optional[str] = None
    scheduler_stats: Optional[Dict[str, Any]] = None
    # The finished Trace backing ``trace_spans``, set by ``Session.query``
    # after the trace scope closes (so durations are final).
    _trace: Optional[Any] = None

    @property
    def trace_spans(self) -> Optional[List[Dict[str, Any]]]:
        """Flat span summary of this query's trace; None when untraced.

        Summarized lazily on first access — building ~60 span dicts per
        query would otherwise tax every caller that never reads them.
        """
        if self._trace is None:
            return None
        return self._trace.summary()

    @property
    def total_tokens(self) -> int:
        """Tokens this request actually cost (prepare + execute)."""
        return self.prepare_tokens + self.execute_tokens

    def raise_for_error(self) -> "QueryResponse":
        """Re-raise the captured failure, if any; returns self otherwise."""
        if not self.ok:
            raise RuntimeError(f"query {self.request.nl_query!r} failed: {self.error}")
        return self

    def describe(self) -> str:
        """One-line summary used by the CLI batch mode."""
        if not self.ok:
            suffix = f" [{self.trace_id}]" if self.trace_id else ""
            return f"[{self.session_id}] ERROR: {self.error}{suffix}"
        rows = len(self.result.final_table) if self.result is not None else 0
        hit = " (prepared)" if self.prepared_hit else ""
        saved = ""
        if self.gateway_stats and self.gateway_stats.get("tokens_saved"):
            saved = f", {self.gateway_stats['tokens_saved']} tokens saved by gateway"
        latency = self.latency_ms or self.wall_clock_s * 1000
        trace = f" [{self.trace_id}]" if self.trace_id else ""
        return (f"[{self.session_id}] {rows} rows, {self.total_tokens} tokens, "
                f"{latency:.1f} ms{hit}{saved}{trace}")

"""Command-line interface for the KathDB reproduction.

Examples
--------
Run the paper's flagship query with the scripted user from Section 6::

    python -m repro.cli --flagship

Run an arbitrary NL query with scripted clarifications::

    python -m repro.cli --query "Which films have a boring poster?"
    python -m repro.cli --query "Rank every film by how exciting its plot is." \
        --clarify "exciting=the plot contains scenes that are uncommon in real life"

Run interactively (KathDB asks *you* the clarification questions)::

    python -m repro.cli --query "..." --interactive

Serve a batch concurrently (the service layer: one isolated session per
request, prepared-plan reuse across them)::

    python -m repro.cli --query "Which films have a boring poster?" \
        --repeat 8 --jobs 4
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro import KathDB, KathDBConfig, build_movie_corpus
from repro.data.workloads import (
    FLAGSHIP_CLARIFICATION,
    FLAGSHIP_CORRECTION,
    FLAGSHIP_QUERY,
)
from repro.interaction.user import ConsoleUser, ScriptedUser, SilentUser, UserAgent


def build_arg_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="kathdb-repro",
        description="Run NL queries over the synthetic multimodal movie corpus with KathDB.")
    parser.add_argument("--query", help="the natural-language query to run")
    parser.add_argument("--flagship", action="store_true",
                        help="run the paper's flagship query with the Section 6 scripted user")
    parser.add_argument("--size", type=int, default=20, help="corpus size (default: 20)")
    parser.add_argument("--seed", type=int, default=7, help="random seed (default: 7)")
    parser.add_argument("--clarify", action="append", default=[], metavar="TERM=ANSWER",
                        help="scripted answer to a clarification question (repeatable)")
    parser.add_argument("--correction", action="append", default=[], metavar="TEXT",
                        help="scripted reactive correction to the query sketch (repeatable)")
    parser.add_argument("--interactive", action="store_true",
                        help="answer clarification questions at the terminal instead of scripting them")
    parser.add_argument("--explain", action="store_true",
                        help="print the coarse pipeline explanation after the result")
    parser.add_argument("--explain-top", action="store_true",
                        help="print the fine-grained explanation of the top result tuple")
    parser.add_argument("--lineage-level", choices=["row", "table", "off"], default="row",
                        help="provenance tracking granularity (default: row)")
    parser.add_argument("--no-monitor", action="store_true",
                        help="disable the semantic-anomaly monitor")
    parser.add_argument("--limit", type=int, default=10, help="result rows to print (default: 10)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker threads for batch mode (default: 1 = serial)")
    parser.add_argument("--repeat", type=int, default=1, metavar="N",
                        help="run the query N times through the service layer (default: 1)")
    parser.add_argument("--no-prepared", action="store_true",
                        help="disable the prepared-query cache in batch mode")
    parser.add_argument("--no-model-cache", action="store_true",
                        help="disable the model gateway's shared result cache "
                             "(coalescing/batching stay on; forces service mode)")
    parser.add_argument("--gateway-stats", nargs="?", const=True, default=False,
                        metavar="SESSION",
                        help="print the model gateway's counters after the run "
                             "(forces service mode); with a session id (batch "
                             "sessions are named s1..sN), print that session's "
                             "counters and last-60s window instead of the "
                             "service-wide view")
    parser.add_argument("--semantic-cache", choices=["off", "linear", "ann"],
                        default=None,
                        help="semantic near-match tier for embeddings "
                             "predicates: 'ann' (default; multi-probe LSH "
                             "index), 'linear' (exhaustive scan), or 'off' "
                             "(bit-identical to uncached execution); forces "
                             "service mode")
    parser.add_argument("--skill-store", default=None, metavar="BACKEND[:PATH]",
                        help="enable the durable FAO skill store: 'memory', "
                             "'file:DIR', or 'sqlite:FILE'; generated functions "
                             "are persisted and reused (after revalidation) "
                             "across restarts pointed at the same path (forces "
                             "service mode)")
    parser.add_argument("--gateway-cache", default=None, metavar="BACKEND[:PATH]",
                        help="persistent backing store for the gateway's "
                             "exact/semantic result caches: 'memory' (default; "
                             "process-local), 'file:DIR', or 'sqlite:FILE'; "
                             "non-volatile cached results survive restarts "
                             "pointed at the same path (forces service mode)")
    parser.add_argument("--shards", type=int, default=1, metavar="N",
                        help="shard the engine N ways (shared-nothing workers; "
                             "population and queries scatter-gather with "
                             "row-identical merged results; forces service "
                             "mode; default: 1 = unsharded)")
    parser.add_argument("--skill-stats", action="store_true",
                        help="print the skill store's hit/miss/revalidation "
                             "counters after the run (forces service mode)")
    parser.add_argument("--no-vectorized", action="store_true",
                        help="disable vectorized (batched) operator execution and "
                             "view population; every model call is issued "
                             "row-at-a-time at full serial token cost")
    parser.add_argument("--batch-window", type=float, default=None, metavar="SECONDS",
                        help="micro-batch collection window for the batchable model "
                             "kinds (forces service mode; default: auto — a few ms "
                             "only when model latency is simulated)")
    parser.add_argument("--simulate-latency", type=float, default=0.0, metavar="SCALE",
                        help="sleep each model call's synthetic latency times SCALE "
                             "(makes batch throughput numbers honest; default: 0)")
    parser.add_argument("--trace", action="store_true",
                        help="print each query's span tree after the run "
                             "(forces service mode)")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="export the run's traces as a Chrome trace_event "
                             "file loadable in chrome://tracing or Perfetto "
                             "(forces service mode)")
    parser.add_argument("--metrics", action="store_true",
                        help="print the service metrics registry (counters, "
                             "gauges, latency histograms) after the run "
                             "(forces service mode)")
    parser.add_argument("--slow-query-ms", type=float, default=None, metavar="MS",
                        help="record queries slower than MS in the slow-query "
                             "log and print it after the run (forces service "
                             "mode)")
    parser.add_argument("--tenant", default=None, metavar="ID",
                        help="tenant id for fair-share scheduling; requests "
                             "from the same tenant share one weighted queue "
                             "(forces service mode; default: one implicit "
                             "tenant per request/session)")
    parser.add_argument("--priority", choices=["interactive", "batch", "background"],
                        default=None,
                        help="scheduling class for the batch's requests "
                             "(forces service mode; default: interactive)")
    parser.add_argument("--deadline-ms", type=float, default=None, metavar="MS",
                        help="per-request deadline; requests still queued (or "
                             "running) past it are cancelled with a structured "
                             "ok=False response instead of blocking (forces "
                             "service mode)")
    parser.add_argument("--sched-stats", action="store_true",
                        help="print the fair-share scheduler's per-class and "
                             "per-tenant counters after the run (forces "
                             "service mode)")
    parser.add_argument("--no-scheduler", action="store_true",
                        help="bypass the fair-share scheduler and use the flat "
                             "thread pool (the pre-scheduler dispatch path; "
                             "forces service mode)")
    return parser


def parse_clarifications(pairs: Sequence[str]) -> Dict[str, str]:
    """Parse repeated ``term=answer`` options into a dict."""
    clarifications: Dict[str, str] = {}
    for pair in pairs:
        term, separator, answer = pair.partition("=")
        if not separator:
            raise ValueError(f"--clarify expects TERM=ANSWER, got {pair!r}")
        clarifications[term.strip()] = answer.strip()
    return clarifications


def parse_skill_store(spec: str) -> Dict[str, object]:
    """Parse a ``--skill-store BACKEND[:PATH]`` spec into config overrides."""
    kind, separator, path = spec.partition(":")
    kind = kind.strip()
    if kind not in ("memory", "file", "sqlite"):
        raise ValueError(
            f"--skill-store expects memory, file:DIR or sqlite:FILE, got {spec!r}")
    overrides: Dict[str, object] = {"enable_skill_store": True,
                                    "skill_store_backend": kind}
    if separator and path.strip():
        overrides["skill_store_path"] = path.strip()
    elif kind != "memory":
        raise ValueError(f"--skill-store {kind} requires a path "
                         f"({kind}:/some/where)")
    return overrides


def parse_gateway_cache(spec: str) -> Dict[str, object]:
    """Parse a ``--gateway-cache BACKEND[:PATH]`` spec into config overrides."""
    kind, separator, path = spec.partition(":")
    kind = kind.strip()
    if kind not in ("memory", "file", "sqlite"):
        raise ValueError(
            f"--gateway-cache expects memory, file:DIR or sqlite:FILE, got {spec!r}")
    overrides: Dict[str, object] = {"gateway_cache_backend": kind}
    if separator and path.strip():
        overrides["gateway_cache_path"] = path.strip()
    elif kind != "memory":
        raise ValueError(f"--gateway-cache {kind} requires a path "
                         f"({kind}:/some/where)")
    return overrides


def build_user(args: argparse.Namespace) -> UserAgent:
    """Choose the user agent implied by the CLI options."""
    if args.interactive:
        return ConsoleUser()
    if args.flagship:
        return ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION}, [FLAGSHIP_CORRECTION])
    clarifications = parse_clarifications(args.clarify)
    corrections = list(args.correction)
    if clarifications or corrections:
        return ScriptedUser(clarifications, corrections)
    return SilentUser()


def print_span_tree(spans: Sequence[Dict[str, object]], output) -> None:
    """Render one query's span summaries as an indented tree."""
    children: Dict[Optional[str], List[Dict[str, object]]] = {}
    for span in spans:
        children.setdefault(span.get("parent_id"), []).append(span)

    def emit(span: Dict[str, object], depth: int) -> None:
        tags = span.get("tags") or {}
        extras = ", ".join(f"{k}={v}" for k, v in sorted(tags.items())
                           if k not in ("session", "query"))
        suffix = f" [{extras}]" if extras else ""
        duration = span.get("duration_ms") or 0.0
        print(f"  {'  ' * depth}{span['name']} ({span['kind']}): "
              f"{duration:.2f} ms{suffix}", file=output)
        for child in children.get(span.get("span_id"), []):
            emit(child, depth + 1)

    for root in children.get(None, []):
        emit(root, 0)


def print_sched_stats(stats: Optional[Dict[str, object]], output) -> None:
    """Render a scheduler stats snapshot (or note that it is disabled)."""
    if stats is None:
        print("scheduler: disabled (--no-scheduler)", file=output)
        return
    print(f"scheduler: {stats['workers']} worker(s), "
          f"admitted={stats['admitted']}, completed={stats['completed']}, "
          f"shed={stats['shed']}, expired={stats['expired']}, "
          f"cancelled={stats['cancelled']}", file=output)
    for name, board in sorted(stats.get("classes", {}).items()):  # type: ignore[union-attr]
        print(f"  class {name}: reserved={board['reserved']}, "
              f"running={board['running']}, depth={board['depth']}", file=output)
    for tenant, counters in sorted(stats.get("tenants", {}).items()):  # type: ignore[union-attr]
        print(f"  tenant {tenant}: queued={counters['queued']}, "
              f"shed={counters['shed']}, expired={counters['expired']}",
              file=output)


def run_sharded_batch(args: argparse.Namespace, query: str, sharded,
                      corpus, output) -> int:
    """Serve the batch through a :class:`~repro.sharding.ShardedService`.

    The sharded facade reports its own per-shard summary instead of the
    single-service cache/trace surfaces (each shard keeps those privately).
    """
    from repro import QueryOptions, QueryRequest
    from repro.utils.timer import Timer

    with sharded:
        sharded.load_corpus(corpus)
        requests = [QueryRequest(nl_query=query, user=build_user(args),
                                 options=QueryOptions(
                                     use_prepared=not args.no_prepared,
                                     tenant_id=args.tenant,
                                     priority=args.priority,
                                     deadline_ms=args.deadline_ms))
                    for _ in range(max(1, args.repeat))]
        timer = Timer()
        with timer:
            responses = sharded.query_batch(requests)
        failed = [r for r in responses if not r.ok]
        print(f"\nquery: {query}", file=output)
        print(f"batch: {len(responses)} request(s), "
              f"{sharded.num_shards} shard(s), "
              f"{timer.elapsed:.3f} s wall clock "
              f"({len(responses) / max(timer.elapsed, 1e-9):.1f} queries/s)",
              file=output)
        for response in responses:
            print("  " + response.describe(), file=output)
        print(sharded.describe(), file=output)
        if args.gateway_stats:
            stats = sharded.gateway_stats()
            print("gateway (all shards): "
                  + ", ".join(f"{k}={v}" for k, v in sorted(stats.items())),
                  file=output)
        if args.sched_stats:
            print_sched_stats(sharded.scheduler_stats(), output)
        first_ok = next((r for r in responses if r.ok), None)
        if first_ok is not None:
            print(first_ok.result.final_table.pretty(limit=args.limit),
                  file=output)
    return 1 if failed else 0


def run_batch(args: argparse.Namespace, query: str, output) -> int:
    """Serve ``--repeat`` copies of the query through the service layer."""
    from repro import KathDBService, QueryOptions, QueryRequest

    corpus = build_movie_corpus(size=args.size, seed=args.seed)
    semantic_overrides = {}
    if args.semantic_cache == "off":
        semantic_overrides["enable_semantic_cache"] = False
    elif args.semantic_cache is not None:
        semantic_overrides["enable_semantic_cache"] = True
        semantic_overrides["semantic_cache_mode"] = args.semantic_cache
    skill_overrides: Dict[str, object] = {}
    if args.skill_store is not None:
        skill_overrides = parse_skill_store(args.skill_store)
    gateway_cache_overrides: Dict[str, object] = {}
    if args.gateway_cache is not None:
        gateway_cache_overrides = parse_gateway_cache(args.gateway_cache)
    config = KathDBConfig(seed=args.seed, lineage_level=args.lineage_level,
                          monitor_enabled=not args.no_monitor,
                          enable_prepared_cache=not args.no_prepared,
                          enable_model_cache=not args.no_model_cache,
                          enable_vectorized_execution=not args.no_vectorized,
                          enable_scheduler=not args.no_scheduler,
                          service_max_workers=max(1, args.jobs),
                          simulate_model_latency=max(0.0, args.simulate_latency),
                          gateway_batch_window_s=args.batch_window,
                          slow_query_ms=args.slow_query_ms,
                          **semantic_overrides, **skill_overrides,
                          **gateway_cache_overrides)
    shards = max(1, args.shards)
    if shards > 1:
        from repro.sharding import ShardedService
        sharded = ShardedService(config, shards=shards)
        print(f"loading corpus ({len(corpus)} movies) across {shards} shards "
              f"and populating multimodal views ...", file=output)
        return run_sharded_batch(args, query, sharded, corpus, output)
    service = KathDBService(config)
    print(f"loading corpus ({len(corpus)} movies) and populating multimodal views ...",
          file=output)
    service.load_corpus(corpus)

    # Each request gets its own (stateful) user agent and its own session.
    # Explanations are only attached to the first request: they describe the
    # pipeline, which is identical across the batch.
    def request_options(first: bool) -> QueryOptions:
        return QueryOptions(use_prepared=not args.no_prepared,
                            explain=args.explain and first,
                            explain_top=args.explain_top and first,
                            tenant_id=args.tenant,
                            priority=args.priority,
                            deadline_ms=args.deadline_ms)

    requests = [QueryRequest(nl_query=query, user=build_user(args),
                             options=request_options(index == 0))
                for index in range(max(1, args.repeat))]
    jobs = max(1, args.jobs)
    from repro.utils.timer import Timer
    timer = Timer()
    with timer:
        responses = service.query_batch(requests, jobs=jobs)
    service.shutdown()

    failed = [r for r in responses if not r.ok]
    print(f"\nquery: {query}", file=output)
    print(f"batch: {len(responses)} request(s), {jobs} worker(s), "
          f"{timer.elapsed:.3f} s wall clock "
          f"({len(responses) / max(timer.elapsed, 1e-9):.1f} queries/s)", file=output)
    for response in responses:
        print("  " + response.describe(), file=output)
    if args.no_prepared:
        print("prepared-query cache: disabled", file=output)
    else:
        stats = service.prepared_stats()
        print("prepared-query cache: " + ", ".join(f"{k}={v}" for k, v in stats.items()),
              file=output)
    if args.sched_stats:
        print_sched_stats(service.scheduler_stats(), output)
    if args.skill_stats or args.skill_store is not None:
        if service.skill_store is None:
            print("skill store: disabled", file=output)
        else:
            stats = service.skill_stats() or {}
            print("skill store: " + ", ".join(f"{k}={v}" for k, v in stats.items()),
                  file=output)
    if args.gateway_stats:
        if service.gateway is None:
            print("model gateway: disabled", file=output)
        elif isinstance(args.gateway_stats, str):
            # Per-session view: that session's cumulative counters plus the
            # last-60s window scoped to its own events.
            session_id = args.gateway_stats
            scoped = service.gateway_stats(window_s=60.0, session_id=session_id)
            counters = {k: v for k, v in scoped.items()
                        if k not in ("windowed", "session_id")}
            if not counters:
                print(f"gateway session {session_id}: no tracked traffic",
                      file=output)
            else:
                print(f"gateway session {session_id}: "
                      + ", ".join(f"{k}={v}" for k, v in counters.items()),
                      file=output)
                windowed = scoped["windowed"]
                print(f"  last {windowed['window_s']:.0f}s: "
                      f"{windowed['requests']} requests "
                      f"({windowed['requests_per_s']:.2f}/s), "
                      f"{windowed['tokens_charged']} tokens charged, "
                      f"{windowed['tokens_saved']} saved", file=output)
        else:
            print(service.gateway.describe(), file=output)
            batching = service.gateway.stats()["batching"]
            for kind, sizes in batching.get("by_kind", {}).items():
                print(f"  batched {kind}: {sizes['batches']} batches, "
                      f"largest={sizes['largest_batch']}", file=output)
            windowed = service.gateway.windowed_stats(60.0)
            print(f"  last {windowed['window_s']:.0f}s: "
                  f"{windowed['requests']} requests "
                  f"({windowed['requests_per_s']:.2f}/s), "
                  f"{windowed['tokens_charged']} tokens charged, "
                  f"{windowed['tokens_saved']} saved, "
                  f"{windowed['batch_tokens_saved']} batch-discounted",
                  file=output)
        if args.semantic_cache:
            print(f"semantic near-match tier: {args.semantic_cache}",
                  file=output)
        if args.no_vectorized:
            print("vectorized execution: disabled (--no-vectorized)",
                  file=output)
        if args.no_model_cache:
            print("model gateway: result cache disabled (--no-model-cache)",
                  file=output)
    if args.trace:
        for response in responses:
            if response.trace_spans:
                print(f"\ntrace {response.trace_id} "
                      f"[{response.session_id}]:", file=output)
                print_span_tree(response.trace_spans, output)
    if args.trace_out:
        events = service.export_chrome_trace(args.trace_out)
        print(f"chrome trace: {events} event(s) written to {args.trace_out} "
              f"(open in chrome://tracing or https://ui.perfetto.dev)",
              file=output)
    if args.slow_query_ms is not None:
        entries = service.slow_queries.entries()
        print(f"slow queries (>{args.slow_query_ms:.0f} ms): {len(entries)}",
              file=output)
        for entry in entries:
            op = entry.get("slowest_operator") or {}
            op_note = (f"; slowest operator {op['name']} "
                       f"({op['duration_ms']:.1f} ms, span {op['span_id']})"
                       if op else "")
            print(f"  {entry['trace_id']} [{entry['session_id']}]: "
                  f"{entry['latency_ms']:.1f} ms{op_note}", file=output)
    if args.metrics:
        print("\nmetrics:", file=output)
        snapshot = service.metrics_snapshot()
        for name, value in sorted(snapshot.get("counters", {}).items()):
            print(f"  counter {name}: {value}", file=output)
        for name, value in sorted(snapshot.get("gauges", {}).items()):
            print(f"  gauge {name}: {value}", file=output)
        for name, summary in sorted(snapshot.get("histograms", {}).items()):
            print(f"  histogram {name}: count={summary['count']}, "
                  f"p50={summary['p50']:.1f}, p95={summary['p95']:.1f}, "
                  f"p99={summary['p99']:.1f}", file=output)
    first_ok = next((r for r in responses if r.ok), None)
    if first_ok is not None:
        print(first_ok.result.final_table.pretty(limit=args.limit), file=output)
        if first_ok.explanation:
            print("\n" + first_ok.explanation, file=output)
        if first_ok.top_explanation:
            print("\n" + first_ok.top_explanation, file=output)
        if (args.explain or args.explain_top) and not (first_ok.explanation
                                                       or first_ok.top_explanation):
            # Explanations ride on request 0 only; say so instead of silently
            # dropping the flag when that request failed.
            print("\n(explanation unavailable: the explaining request failed)",
                  file=output)
    return 1 if failed else 0


def run(args: argparse.Namespace, output=None) -> int:
    """Execute the CLI request; returns a process exit code."""
    output = output if output is not None else sys.stdout
    query = FLAGSHIP_QUERY if args.flagship else args.query
    if not query:
        print("error: provide --query or --flagship", file=output)
        return 2
    # Gateway flags only make sense on the service path (the legacy facade
    # keeps its direct, un-routed accounting), so they force batch mode.
    service_mode = (args.jobs > 1 or args.repeat > 1
                    or bool(args.gateway_stats) or args.no_model_cache
                    or args.batch_window is not None
                    or args.semantic_cache is not None
                    or args.skill_store is not None or args.skill_stats
                    or args.gateway_cache is not None or args.shards > 1
                    or args.trace or args.trace_out is not None
                    or args.metrics or args.slow_query_ms is not None
                    or args.tenant is not None or args.priority is not None
                    or args.deadline_ms is not None or args.sched_stats
                    or args.no_scheduler)
    if service_mode:
        if args.interactive:
            print("error: --interactive cannot be combined with service mode "
                  "(--jobs/--repeat/--gateway-stats/--no-model-cache/"
                  "--batch-window/--semantic-cache/--skill-store/--skill-stats/"
                  "--trace/--trace-out/--metrics/--slow-query-ms)",
                  file=output)
            return 2
        return run_batch(args, query, output)

    corpus = build_movie_corpus(size=args.size, seed=args.seed)
    config = KathDBConfig(seed=args.seed, lineage_level=args.lineage_level,
                          monitor_enabled=not args.no_monitor,
                          enable_vectorized_execution=not args.no_vectorized)
    db = KathDB(config)
    print(f"loading corpus ({len(corpus)} movies) and populating multimodal views ...",
          file=output)
    db.load_corpus(corpus)

    user = build_user(args)
    result = db.query(query, user=user)

    print(f"\nquery: {query}", file=output)
    print(f"result rows: {len(result.final_table)}  "
          f"(query tokens: {result.total_tokens}, "
          f"interactions: {result.transcript.user_turns()})", file=output)
    display_columns = [c for c in ("lid", "title", "year", "final_score",
                                   "excitement_score", "boring_poster")
                       if result.final_table.schema.has_column(c)]
    table = result.final_table.select_columns(display_columns, name="result") \
        if display_columns else result.final_table
    print(table.pretty(limit=args.limit), file=output)

    if args.explain:
        print("\n" + db.explain_pipeline(result), file=output)
    if args.explain_top and len(result.final_table) and \
            result.final_table.schema.has_column("lid"):
        top_lid = result.rows()[0]["lid"]
        if top_lid is not None:
            print("\n" + db.explain_tuple(result, top_lid).describe(), file=output)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    try:
        return run(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())

"""Command-line interface for the KathDB reproduction.

Examples
--------
Run the paper's flagship query with the scripted user from Section 6::

    python -m repro.cli --flagship

Run an arbitrary NL query with scripted clarifications::

    python -m repro.cli --query "Which films have a boring poster?"
    python -m repro.cli --query "Rank every film by how exciting its plot is." \
        --clarify "exciting=the plot contains scenes that are uncommon in real life"

Run interactively (KathDB asks *you* the clarification questions)::

    python -m repro.cli --query "..." --interactive
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro import KathDB, KathDBConfig, build_movie_corpus
from repro.data.workloads import (
    FLAGSHIP_CLARIFICATION,
    FLAGSHIP_CORRECTION,
    FLAGSHIP_QUERY,
)
from repro.interaction.user import ConsoleUser, ScriptedUser, SilentUser, UserAgent


def build_arg_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="kathdb-repro",
        description="Run NL queries over the synthetic multimodal movie corpus with KathDB.")
    parser.add_argument("--query", help="the natural-language query to run")
    parser.add_argument("--flagship", action="store_true",
                        help="run the paper's flagship query with the Section 6 scripted user")
    parser.add_argument("--size", type=int, default=20, help="corpus size (default: 20)")
    parser.add_argument("--seed", type=int, default=7, help="random seed (default: 7)")
    parser.add_argument("--clarify", action="append", default=[], metavar="TERM=ANSWER",
                        help="scripted answer to a clarification question (repeatable)")
    parser.add_argument("--correction", action="append", default=[], metavar="TEXT",
                        help="scripted reactive correction to the query sketch (repeatable)")
    parser.add_argument("--interactive", action="store_true",
                        help="answer clarification questions at the terminal instead of scripting them")
    parser.add_argument("--explain", action="store_true",
                        help="print the coarse pipeline explanation after the result")
    parser.add_argument("--explain-top", action="store_true",
                        help="print the fine-grained explanation of the top result tuple")
    parser.add_argument("--lineage-level", choices=["row", "table", "off"], default="row",
                        help="provenance tracking granularity (default: row)")
    parser.add_argument("--no-monitor", action="store_true",
                        help="disable the semantic-anomaly monitor")
    parser.add_argument("--limit", type=int, default=10, help="result rows to print (default: 10)")
    return parser


def parse_clarifications(pairs: Sequence[str]) -> Dict[str, str]:
    """Parse repeated ``term=answer`` options into a dict."""
    clarifications: Dict[str, str] = {}
    for pair in pairs:
        term, separator, answer = pair.partition("=")
        if not separator:
            raise ValueError(f"--clarify expects TERM=ANSWER, got {pair!r}")
        clarifications[term.strip()] = answer.strip()
    return clarifications


def build_user(args: argparse.Namespace) -> UserAgent:
    """Choose the user agent implied by the CLI options."""
    if args.interactive:
        return ConsoleUser()
    if args.flagship:
        return ScriptedUser({"exciting": FLAGSHIP_CLARIFICATION}, [FLAGSHIP_CORRECTION])
    clarifications = parse_clarifications(args.clarify)
    corrections = list(args.correction)
    if clarifications or corrections:
        return ScriptedUser(clarifications, corrections)
    return SilentUser()


def run(args: argparse.Namespace, output=None) -> int:
    """Execute the CLI request; returns a process exit code."""
    output = output if output is not None else sys.stdout
    query = FLAGSHIP_QUERY if args.flagship else args.query
    if not query:
        print("error: provide --query or --flagship", file=output)
        return 2

    corpus = build_movie_corpus(size=args.size, seed=args.seed)
    config = KathDBConfig(seed=args.seed, lineage_level=args.lineage_level,
                          monitor_enabled=not args.no_monitor)
    db = KathDB(config)
    print(f"loading corpus ({len(corpus)} movies) and populating multimodal views ...",
          file=output)
    db.load_corpus(corpus)

    user = build_user(args)
    result = db.query(query, user=user)

    print(f"\nquery: {query}", file=output)
    print(f"result rows: {len(result.final_table)}  "
          f"(query tokens: {result.total_tokens}, "
          f"interactions: {result.transcript.user_turns()})", file=output)
    display_columns = [c for c in ("lid", "title", "year", "final_score",
                                   "excitement_score", "boring_poster")
                       if result.final_table.schema.has_column(c)]
    table = result.final_table.select_columns(display_columns, name="result") \
        if display_columns else result.final_table
    print(table.pretty(limit=args.limit), file=output)

    if args.explain:
        print("\n" + db.explain_pipeline(result), file=output)
    if args.explain_top and len(result.final_table) and \
            result.final_table.schema.has_column("lid"):
        top_lid = result.rows()[0]["lid"]
        if top_lid is not None:
            print("\n" + db.explain_tuple(result, top_lid).describe(), file=output)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    try:
        return run(args)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())

"""Shared-nothing sharding: N independent KathDB engines behind one facade.

:class:`ShardedService` presents the :class:`~repro.api.service.KathDBService`
API while fanning work across ``shards`` thread-backed workers.  Each shard
is a *complete* private engine — its own model suite, catalog, lineage
store, gateway (with its own exact/semantic caches and, when configured,
its own persistent cache store), skill store, and trace sinks.  Nothing is
shared between shards, so there is no cross-shard locking anywhere on the
data path; the only coordination is the scatter/gather done here.

Two placement modes cover the two workload shapes:

* ``"partition"`` (default) — the corpus is split into contiguous slices,
  one per shard.  Population and table scans scatter to every shard and
  gather *row-identical* merged results: contiguous slicing preserves
  document order, so concatenating shard tables in shard order reproduces
  the single-process row order, and the corpus-position-dependent id
  columns (text-graph ``eid``/``mid``, which each engine assigns from a
  running offset) are rebased at merge time by the cumulative row counts
  of the preceding shards — exactly the offsets a single engine would
  have used.  Lineage ``lid`` values are the one per-process artifact
  that cannot be reproduced across independent lineage stores; the
  row-identity guarantee is therefore defined over every column *except*
  ``lid`` (and image payloads compare by URI).

* ``"replicate"`` — every shard loads the full corpus and queries route
  to exactly one shard by consistent hash of the request fingerprint
  (:func:`repro.gateway.fingerprint.request_key` over the NL text), so
  repeated and near-repeated requests keep hitting the shard whose
  gateway caches are already warm for them.  This is the model-call-heavy
  mode: throughput scales with shards because distinct requests spread
  across the ring while each shard's cache working set stays small.

Failure contract: a shard raising mid-query never hangs the gather and
never leaks partial rows — every sibling future is drained, the merged
:class:`~repro.api.request.QueryResponse` carries ``ok=False`` with a
structured ``"shard {i}: ..."`` error and ``result=None``, and the
surviving shards remain fully usable for the next request.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import itertools
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.api.request import QueryOptions, QueryRequest, QueryResponse
from repro.api.service import KathDBService
from repro.core.config import KathDBConfig
from repro.data.mmqa import MovieCorpus
from repro.datamodel.views import PopulationReport
from repro.errors import KathDBError, SchedulerRejection
from repro.executor.result import QueryResult
from repro.gateway.fingerprint import request_key
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, attach, span
from repro.relational.table import Table
from repro.sched.cancel import CancelToken
from repro.sched.scheduler import FairShareScheduler, ScheduledTask
from repro.sharding.ring import HashRing

PLACEMENTS = ("partition", "replicate")

#: Merge-time id rebase rules for partition mode: per table, which columns
#: shift by the cumulative prior-shard row count of which *counter* table.
#: Text-graph entity/mention ids are assigned from running offsets over the
#: corpus (one per entity/mention row), so shard-local ids rebase to the
#: single-process ids by adding the entity/mention rows of earlier shards.
#: Scene-graph ids (``oid``/``fid``) are document-local and need no rebase.
_ID_REBASE: Dict[str, Dict[str, str]] = {
    "text_entities": {"eid": "text_entities"},
    "text_mentions": {"mid": "text_mentions", "eid": "text_entities"},
    "text_relationships": {"eid_i": "text_entities", "eid_j": "text_entities"},
    "text_attributes": {"eid": "text_entities"},
}


def split_corpus(corpus: MovieCorpus, shards: int) -> List[MovieCorpus]:
    """Split a corpus into ``shards`` contiguous, order-preserving slices.

    Contiguity is load-bearing: concatenating the slices in shard order
    must reproduce the original document order, because that is what makes
    merged scans row-identical to a single-process load.  Sizes differ by
    at most one (the first ``len % shards`` slices take the extra).
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    total = len(corpus.movies)
    base, extra = divmod(total, shards)
    slices: List[MovieCorpus] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        slices.append(MovieCorpus(movies=list(corpus.movies[start:start + size]),
                                  seed=corpus.seed))
        start += size
    return slices


class ShardedService:
    """N shared-nothing KathDB engines behind the KathDBService API."""

    def __init__(self, config: Optional[KathDBConfig] = None, shards: int = 2,
                 placement: str = "partition"):
        if shards < 1:
            raise KathDBError("shards must be >= 1")
        if placement not in PLACEMENTS:
            raise KathDBError(f"placement must be one of {PLACEMENTS}, "
                              f"got {placement!r}")
        self.config = config or KathDBConfig()
        self.placement = placement
        self.num_shards = shards
        # Coordinator-level observability: the shards each keep their own
        # registry/tracer (shared-nothing); this registry carries the
        # scatter/gather spans plus per-shard gauges and routing counters.
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(enabled=self.config.enable_tracing,
                             metrics=self.metrics)
        self.shards: List[KathDBService] = [
            KathDBService(self._shard_config(index)) for index in range(shards)]
        self.ring = HashRing(range(shards))
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=shards, thread_name_prefix="kathdb-shard")
        self._closed = False
        self._lock = threading.Lock()
        self._request_ids = itertools.count(1)
        # The coordinator schedules once; shards run with their schedulers
        # disabled (see _shard_config) and stay dumb executors.  One worker
        # per shard: replicate-mode routing is one-shard work, and partition
        # scatters fan out through the separate shard pool anyway.
        self.scheduler: Optional[FairShareScheduler] = (
            FairShareScheduler(
                workers=shards,
                queue_limit=self.config.sched_queue_limit,
                reservations=self.config.sched_class_reservations or None,
                tenant_weights=self.config.sched_tenant_weights or None,
                metrics=self.metrics)
            if self.config.enable_scheduler else None)
        if self.scheduler is not None:
            self.metrics.register_view("sched", self.scheduler.stats)
        for index, shard in enumerate(self.shards):
            self.metrics.gauge(f"shard.{index}.catalog_tables",
                               fn=lambda s=shard: float(len(s.catalog)))
            self.metrics.gauge(
                f"shard.{index}.gateway_cache_entries",
                fn=lambda s=shard: float(len(s.gateway.cache))
                if s.gateway is not None else 0.0)

    # -- construction -------------------------------------------------------------
    def _shard_config(self, index: int) -> KathDBConfig:
        """Shard ``index``'s private config: same knobs, disjoint paths.

        Shared-nothing includes the filesystem — two shards appending to
        one JSONL trace file or one SQLite cache would serialize on it (or
        corrupt it), so every configured path gets a per-shard suffix.
        """
        config = self.config
        # Shards stay dumb: admission scheduling happens exactly once, at
        # the coordinator — a second per-shard scheduler would double-queue
        # every request.
        replacements: Dict[str, Any] = {"enable_scheduler": False}
        directory_backends = {"gateway_cache_path": config.gateway_cache_backend,
                              "skill_store_path": config.skill_store_backend}
        for field in ("gateway_cache_path", "skill_store_path",
                      "profile_cache_path", "trace_jsonl_path", "workspace"):
            value = getattr(config, field)
            if value is None:
                continue
            as_directory = (field == "workspace"
                            or directory_backends.get(field) == "file")
            replacements[field] = self._shard_path(value, index, as_directory)
        return dataclasses.replace(config, **replacements)

    @staticmethod
    def _shard_path(path: Union[str, Path], index: int,
                    directory: bool) -> Path:
        path = Path(path)
        if directory:
            return path / f"shard-{index:02d}"
        return path.with_name(f"{path.stem}-shard{index:02d}{path.suffix}")

    # -- data loading -------------------------------------------------------------
    def load_corpus(self, corpus: MovieCorpus,
                    populate_views: bool = True) -> PopulationReport:
        """Scatter corpus population across every shard; gather one report.

        Partition mode gives each shard its contiguous slice; replicate
        mode gives each shard the whole corpus.  The merged report sums
        per-table row counts across shards (partition) or reports one
        replica's (replicate); the table lids are shard 0's — lineage ids
        are per-shard artifacts (see the module docstring).
        """
        if self.placement == "partition":
            slices = split_corpus(corpus, self.num_shards)
        else:
            slices = [corpus] * self.num_shards

        with self.tracer.trace("load_corpus", scatter=self.placement,
                               shards=self.num_shards) as trace:
            def populate(index: int) -> PopulationReport:
                with attach(trace):
                    with span(f"shard-{index}.load_corpus", kind="scatter",
                              shard=index, docs=len(slices[index].movies)):
                        return self.shards[index].load_corpus(
                            slices[index], populate_views=populate_views)

            futures = [self._pool.submit(populate, index)
                       for index in range(self.num_shards)]
            with span("gather.population", kind="gather"):
                reports = [future.result() for future in futures]

        merged = PopulationReport(base_tables=dict(reports[0].base_tables),
                                  view_tables=dict(reports[0].view_tables),
                                  row_counts=dict(reports[0].row_counts))
        if self.placement == "partition":
            for report in reports[1:]:
                for name, count in report.row_counts.items():
                    merged.row_counts[name] = merged.row_counts.get(name, 0) + count
        self.population_report = merged
        return merged

    # -- scans --------------------------------------------------------------------
    def scan(self, name: str) -> Table:
        """The merged view of table ``name`` across every shard.

        Replicate mode returns shard 0's copy (all replicas are identical).
        Partition mode concatenates shard tables in shard order, rebasing
        the corpus-position-dependent id columns (:data:`_ID_REBASE`) so
        the merged table is row-identical — every column except ``lid`` —
        to the table a single-process service would have built.
        """
        if self.placement == "replicate":
            return self.shards[0].catalog.table(name)
        tables = [shard.catalog.table(name) for shard in self.shards
                  if name in shard.catalog]
        if not tables:
            raise KathDBError(f"no shard has a table named {name!r}")
        rebase = _ID_REBASE.get(name, {})
        offsets = self._rebase_offsets(rebase)
        merged_rows: List[Dict[str, Any]] = []
        for index, table in enumerate(tables):
            for row in table:
                row = dict(row)
                for column, counter in rebase.items():
                    if row.get(column) is not None:
                        row[column] += offsets[counter][index]
                merged_rows.append(row)
        return Table.from_rows(name, merged_rows, schema=tables[0].schema)

    def _rebase_offsets(self, rebase: Dict[str, str]) -> Dict[str, List[int]]:
        """Per counter table: shard i's id offset = prior shards' row sum."""
        offsets: Dict[str, List[int]] = {}
        for counter in set(rebase.values()):
            running, per_shard = 0, []
            for shard in self.shards:
                per_shard.append(running)
                if counter in shard.catalog:
                    running += len(shard.catalog.table(counter))
            offsets[counter] = per_shard
        return offsets

    # -- querying -----------------------------------------------------------------
    def query(self, request: Union[str, QueryRequest],
              user: Optional[Any] = None,
              options: Optional[QueryOptions] = None) -> QueryResponse:
        """Answer one request: routed (replicate) or scatter-gathered."""
        return self._schedule(self._coerce(request, user, options)).result()

    def submit(self, request: Union[str, QueryRequest],
               user: Optional[Any] = None,
               options: Optional[QueryOptions] = None
               ) -> "concurrent.futures.Future[QueryResponse]":
        """Admit one request to the coordinator scheduler; returns a future.

        Mirrors :meth:`KathDBService.submit`: the future always resolves to
        a response — shed requests yield ``ok=False`` with ``shed_reason``.
        """
        return self._schedule(self._coerce(request, user, options))

    def query_batch(self, requests: Sequence[Union[str, QueryRequest]],
                    user: Optional[Any] = None,
                    options: Optional[QueryOptions] = None) -> List[QueryResponse]:
        """Answer many requests.

        Replicate mode fans independent requests across their home shards
        concurrently through the coordinator scheduler (this is where
        routed sharding earns its throughput); partition mode runs them
        serially — each query already saturates every shard, and nesting
        scatters inside the shard pool would deadlock it.
        """
        coerced = [self._coerce(r, user, options) for r in requests]
        if self.placement != "replicate" or len(coerced) <= 1:
            return [self.query(c) for c in coerced]
        if self.scheduler is None:
            with concurrent.futures.ThreadPoolExecutor(
                    max_workers=min(self.num_shards, len(coerced)),
                    thread_name_prefix="kathdb-route") as pool:
                return list(pool.map(self._route, coerced))
        # A counting gate caps this batch's in-flight share at the shard
        # count (what the private route pool used to provide) so a long
        # single-tenant batch never overflows its own bounded queue.
        gate = threading.Semaphore(min(self.num_shards, len(coerced)))
        futures: List["concurrent.futures.Future[QueryResponse]"] = []
        for request in coerced:
            gate.acquire()
            future = self._schedule(request)
            future.add_done_callback(lambda _f: gate.release())
            futures.append(future)
        return [future.result() for future in futures]

    def _schedule(self, request: QueryRequest
                  ) -> "concurrent.futures.Future[QueryResponse]":
        """Admit one request to the coordinator's fair-share scheduler.

        The deadline is enforced coordinator-side (shed before dispatch);
        shards execute without their own schedulers.  Partition-mode
        scatters run on the separate shard pool, so scheduling them here
        cannot deadlock the scheduler's own workers.
        """
        execute = (self._route if self.placement == "replicate"
                   else self._scatter_query)
        tenant, sched_class, deadline_ms = request.sched_params(
            self.config.sched_default_priority)
        tenant = tenant or f"req{next(self._request_ids)}"
        if self.scheduler is None:
            future: "concurrent.futures.Future[QueryResponse]" = \
                concurrent.futures.Future()
            future.set_result(execute(request))
            return future
        token = CancelToken.with_deadline_ms(deadline_ms)

        def runner(task: ScheduledTask) -> QueryResponse:
            response = execute(request)
            response.queue_ms = task.queue_ms
            response.sched_class = task.sched_class
            return response

        def shed(task: ScheduledTask, reason: str) -> QueryResponse:
            return self._shed_response(request, tenant, task.sched_class,
                                       reason, queue_ms=task.queue_ms)

        if self.scheduler.in_worker():
            future = concurrent.futures.Future()
            future.set_result(self.scheduler.run_inline(
                runner, tenant, sched_class, token=token))
            return future
        try:
            return self.scheduler.submit(runner, tenant, sched_class,
                                         token=token, shed_result=shed)
        except SchedulerRejection as rejection:
            future = concurrent.futures.Future()
            future.set_result(self._shed_response(
                request, tenant, sched_class, rejection.reason))
            return future

    def _shed_response(self, request: QueryRequest, tenant: str,
                       sched_class: str, reason: str,
                       queue_ms: float = 0.0) -> QueryResponse:
        stats = (self.scheduler.tenant_snapshot(tenant)
                 if self.scheduler is not None else None)
        return QueryResponse(
            request=request, result=None, session_id="coordinator", ok=False,
            error=f"request shed by scheduler ({reason}) for tenant {tenant!r}",
            shed_reason=reason, sched_class=sched_class, queue_ms=queue_ms,
            scheduler_stats=stats)

    def _coerce(self, request: Union[str, QueryRequest], user: Optional[Any],
                options: Optional[QueryOptions]) -> QueryRequest:
        if isinstance(request, str):
            return QueryRequest(nl_query=request, user=user,
                                options=options or QueryOptions())
        return request

    def _fingerprint(self, request: QueryRequest) -> Tuple[int, int]:
        """The routing fingerprint: stable across processes and restarts."""
        return request_key("kathdb.service", "query", (request.nl_query,),
                           {"tag": request.options.tag})

    def _route(self, request: QueryRequest) -> QueryResponse:
        """Send one request to its consistent-hash home shard."""
        shard_index = self.ring.node_for(self._fingerprint(request))
        self.metrics.counter(f"shard.{shard_index}.routed").inc()
        with self.tracer.trace("query.routed", shard=shard_index):
            with span("route", kind="route", shard=shard_index):
                return self.shards[shard_index].query(request)

    def _scatter_query(self, request: QueryRequest) -> QueryResponse:
        """Fan one request to every shard; merge or fail structurally.

        Every shard future is drained before the merge decision — a shard
        failure must neither hang the gather nor strand sibling executions
        mid-flight (they own locks and pool threads the next query needs).
        """
        start_pc = time.perf_counter()
        with self.tracer.trace("query.scatter", shards=self.num_shards) as trace:
            def run(index: int) -> QueryResponse:
                with attach(trace):
                    with span(f"shard-{index}.query", kind="scatter",
                              shard=index):
                        shard_request = self._isolated(request)
                        return self.shards[index].query(shard_request)

            futures = [self._pool.submit(run, index)
                       for index in range(self.num_shards)]
            responses: List[Union[QueryResponse, BaseException]] = []
            with span("gather.query", kind="gather"):
                for future in futures:
                    try:
                        responses.append(future.result())
                    except BaseException as error:  # noqa: BLE001 - gather boundary
                        responses.append(error)
        return self._merge_responses(request, responses, start_pc)

    def _isolated(self, request: QueryRequest) -> QueryRequest:
        """A per-shard copy: stateful user agents must not be shared."""
        if request.user is None:
            return request
        cloned = request.user.clone()
        if cloned is request.user:
            return request
        return dataclasses.replace(request, user=cloned)

    def _merge_responses(self, request: QueryRequest,
                         responses: Sequence[Union[QueryResponse, BaseException]],
                         start_pc: float) -> QueryResponse:
        prepare = sum(r.prepare_tokens for r in responses
                      if isinstance(r, QueryResponse))
        execute = sum(r.execute_tokens for r in responses
                      if isinstance(r, QueryResponse))
        latency_ms = (time.perf_counter() - start_pc) * 1000.0
        for index, response in enumerate(responses):
            if isinstance(response, BaseException):
                error = f"shard {index}: {type(response).__name__}: {response}"
            elif not response.ok:
                error = f"shard {index}: {response.error}"
            else:
                continue
            return QueryResponse(request=request, result=None,
                                 session_id="scatter", ok=False, error=error,
                                 prepare_tokens=prepare, execute_tokens=execute,
                                 latency_ms=latency_ms)
        tables = [r.result.final_table for r in responses  # type: ignore[union-attr]
                  if isinstance(r, QueryResponse) and r.result is not None]
        merged_table = self._merge_tables(request.nl_query, tables)
        result = QueryResult(nl_query=request.nl_query, final_table=merged_table,
                             total_tokens=prepare + execute)
        first = next(r for r in responses if isinstance(r, QueryResponse))
        return QueryResponse(request=request, result=result,
                             session_id="scatter", ok=True,
                             prepared_hit=all(
                                 r.prepared_hit for r in responses
                                 if isinstance(r, QueryResponse)),
                             prepare_tokens=prepare, execute_tokens=execute,
                             tokens_used=sum(r.tokens_used for r in responses
                                             if isinstance(r, QueryResponse)),
                             wall_clock_s=max(
                                 r.wall_clock_s for r in responses
                                 if isinstance(r, QueryResponse)),
                             latency_ms=latency_ms,
                             trace_id=first.trace_id)

    def _merge_tables(self, name: str, tables: Sequence[Table]) -> Table:
        """Gather shard result tables into one global result.

        When every shard's table is sorted non-increasing on some shared
        numeric column (with at least one strict decrease somewhere — i.e.
        the query ranked by it), the merge is a stable k-way merge on that
        column descending, shard order breaking ties: the order a single
        process would have produced for a global ranking.  Otherwise the
        result is positional and shard-order concatenation preserves it.
        """
        rows_per_shard = [[dict(row) for row in table] for table in tables]
        merged = [row for rows in rows_per_shard for row in rows]
        sort_column = self._ranking_column(rows_per_shard)
        if sort_column is not None:
            # Stable sort over the shard-order concatenation == a k-way
            # merge with shard index breaking ties.
            merged.sort(key=lambda row: row[sort_column], reverse=True)
        schema = next((t.schema for t in tables if len(t.schema.columns)), None)
        return Table.from_rows("scatter_result", merged, schema=schema)

    @staticmethod
    def _ranking_column(rows_per_shard: Sequence[Sequence[Dict[str, Any]]]
                        ) -> Optional[str]:
        populated = [rows for rows in rows_per_shard if rows]
        if not populated:
            return None
        candidates = [column for column in populated[0][0]
                      if all(isinstance(rows[0].get(column), (int, float))
                             and not isinstance(rows[0].get(column), bool)
                             for rows in populated)]
        for column in candidates:
            non_increasing, strict = True, False
            for rows in populated:
                values = [row.get(column) for row in rows]
                if any(not isinstance(v, (int, float)) or isinstance(v, bool)
                       for v in values):
                    non_increasing = False
                    break
                for left, right in zip(values, values[1:]):
                    if left < right:
                        non_increasing = False
                        break
                    if left > right:
                        strict = True
                if not non_increasing:
                    break
            if non_increasing and strict:
                return column
        return None

    # -- stats / lifecycle --------------------------------------------------------
    def total_tokens(self) -> int:
        """Tokens spent across every shard's model suite."""
        return sum(shard.total_tokens() for shard in self.shards)

    def gateway_stats(self) -> Dict[str, Any]:
        """Element-wise sum of every shard's headline gateway counters."""
        merged: Dict[str, Any] = {}
        for shard in self.shards:
            for key, value in shard.gateway_stats().items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    merged[key] = merged.get(key, 0) + value
        return merged

    def scheduler_stats(self) -> Optional[Dict[str, Any]]:
        """Coordinator fair-share scheduler state (None when disabled)."""
        if self.scheduler is None:
            return None
        return self.metrics.view("sched")

    def shard_stats(self) -> List[Dict[str, Any]]:
        """Per-shard snapshot: routing counters, catalog size, cache size."""
        snapshot = []
        for index, shard in enumerate(self.shards):
            snapshot.append({
                "shard": index,
                "routed": self.metrics.counter(f"shard.{index}.routed").value,
                "catalog_tables": len(shard.catalog),
                "gateway_cache_entries": (len(shard.gateway.cache)
                                          if shard.gateway is not None else 0),
                "tokens": shard.total_tokens(),
            })
        return snapshot

    def describe(self) -> str:
        lines = [f"ShardedService: {self.num_shards} shards "
                 f"({self.placement}), {self.total_tokens()} tokens total"]
        if self.scheduler is not None:
            lines.append(self.scheduler.describe())
        for stats in self.shard_stats():
            lines.append(f"  shard {stats['shard']}: "
                         f"{stats['catalog_tables']} tables, "
                         f"{stats['gateway_cache_entries']} cached results, "
                         f"{stats['routed']} routed, {stats['tokens']} tokens")
        return "\n".join(lines)

    def shutdown(self) -> None:
        """Stop the scatter pool and shut every shard down (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self.scheduler is not None:
            self.scheduler.shutdown(wait=True)
        self._pool.shutdown(wait=True)
        for shard in self.shards:
            shard.shutdown()

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

"""A consistent-hash ring for routing requests to shards.

Model-call-heavy requests want *cache affinity*: the same request
fingerprint must keep landing on the same shard so that shard's exact
and semantic/ANN gateway caches stay warm for its slice of the key
space.  A plain ``hash(key) % n`` gives affinity but reshuffles almost
every key when ``n`` changes; a consistent-hash ring with virtual nodes
(the classic memcached/Dynamo construction — SHIP and Othello in
PAPERS.md make the same stability argument for lookup tiers) moves only
``~1/n`` of the keys when a shard joins or leaves, so a resize does not
flush every warm cache at once.

Everything hashes through :func:`repro.utils.seed.stable_hash`, so
placement is stable across processes and Python releases — a router in
one process and a worker in another agree on every key's home.
"""

from __future__ import annotations

import bisect
from typing import Dict, Hashable, List, Sequence, Tuple

from repro.utils.seed import stable_hash


class HashRing:
    """Consistent hashing over a set of nodes with virtual replicas.

    ``replicas`` virtual points per node smooth the load split: with one
    point per node the arc lengths (and so the key shares) are wildly
    uneven; with 64 the max/min shard share on uniform keys stays within
    a few tens of percent, which is plenty for cache routing.
    """

    def __init__(self, nodes: Sequence[Hashable] = (), replicas: int = 64):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._points: List[Tuple[int, Hashable]] = []  # sorted (hash, node)
        self._hashes: List[int] = []                   # parallel, for bisect
        self._nodes: Dict[Hashable, List[int]] = {}
        for node in nodes:
            self.add(node)

    # -- membership ---------------------------------------------------------------
    def add(self, node: Hashable) -> None:
        """Place ``node``'s virtual points on the ring (idempotent)."""
        if node in self._nodes:
            return
        hashes = [stable_hash("ring", node, i) for i in range(self.replicas)]
        self._nodes[node] = hashes
        for point in hashes:
            index = bisect.bisect_left(self._hashes, point)
            self._hashes.insert(index, point)
            self._points.insert(index, (point, node))

    def remove(self, node: Hashable) -> None:
        """Take ``node`` off the ring; its keys fall to ring successors."""
        hashes = self._nodes.pop(node, None)
        if hashes is None:
            return
        for point in hashes:
            index = bisect.bisect_left(self._hashes, point)
            while self._points[index][1] != node or self._hashes[index] != point:
                index += 1
            del self._hashes[index]
            del self._points[index]

    def nodes(self) -> List[Hashable]:
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    # -- lookup -------------------------------------------------------------------
    def node_for(self, key: object) -> Hashable:
        """The node owning ``key``: first virtual point clockwise of its hash.

        ``key`` may be anything with a stable ``repr`` — request-fingerprint
        tuples (:data:`~repro.gateway.fingerprint.RequestKey`), strings, ints.
        """
        if not self._points:
            raise ValueError("hash ring has no nodes")
        point = stable_hash("key", key)
        index = bisect.bisect_right(self._hashes, point)
        if index == len(self._points):   # wrap past 2^64 back to the start
            index = 0
        return self._points[index][1]

    def distribution(self, keys: Sequence[object]) -> Dict[Hashable, int]:
        """How many of ``keys`` each node owns (balance diagnostics)."""
        counts: Dict[Hashable, int] = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts

"""Shared-nothing sharding: scatter-gather engines + consistent-hash routing."""

from repro.sharding.ring import HashRing
from repro.sharding.sharded import PLACEMENTS, ShardedService, split_corpus

__all__ = ["HashRing", "PLACEMENTS", "ShardedService", "split_corpus"]

"""Gateway-routing proxies for every model kind.

Each proxy exposes the same public surface as the model it wraps (unknown
attributes delegate straight through, so ``lexicon``, ``cost_meter``,
``name`` etc. keep working) but routes the *charged* entry points through the
session's :class:`~repro.gateway.gateway.SessionGatewayClient`.  Sequence
arguments are normalized to tuples before routing so that semantically equal
calls (list vs tuple of the same terms) fingerprint identically — the
underlying models only require ``Sequence``.

The batchable kinds are the ones a real serving stack batches: embeddings,
entity extraction (NER), pixel detection, and OCR — the models that expose a
true ``*_batch()`` entry point with sub-linear token cost.  LLM/VLM calls
are routed for caching and coalescing but execute singly.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.gateway.gateway import SessionGatewayClient


class GatewayModelProxy:
    """Base proxy: holds the wrapped model and the session's gateway client."""

    #: Marker so routing code can detect an already-routed model.
    __gateway_proxy__ = True

    def __init__(self, model: Any, client: SessionGatewayClient):
        self._model = model
        self._client = client

    @property
    def wrapped(self) -> Any:
        """The underlying (un-routed) model."""
        return self._model

    def __getattr__(self, name: str) -> Any:
        return getattr(self._model, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self._model!r})"

    def _invoke(self, method: str, args: Tuple[Any, ...],
                kwargs: Optional[Dict[str, Any]] = None, *,
                batchable: bool = False,
                semantic_terms: Optional[Tuple[Any, Any]] = None) -> Any:
        return self._client.invoke(self._model, method, args, kwargs,
                                   batchable=batchable,
                                   semantic_terms=semantic_terms)

    def _invoke_batch(self, method: str, calls, **opts) -> list:
        """Answer a homogeneous column vector of calls through the gateway.

        Each member is cached/keyed exactly as its serial counterpart (the
        arg shapes must match the serial proxy method), so hits from earlier
        serial traffic answer batch members and vice versa.
        """
        from repro.gateway.vectorized import GatewayBatchClient
        return GatewayBatchClient(self._client).invoke(self._model, method,
                                                       calls, **opts)


def _terms(value: Optional[Sequence[Any]]) -> Tuple[Any, ...]:
    """Normalize a sequence argument into a fingerprint-stable tuple."""
    return tuple(value) if value is not None else ()


class GatewayLLM(GatewayModelProxy):
    """Routes the simulated LLM's charged entry points."""

    def detect_ambiguity(self, nl_query, resolved_terms=None,
                         purpose="ambiguity_detection"):
        return self._invoke("detect_ambiguity", (nl_query,),
                            {"resolved_terms": _terms(resolved_terms) or None,
                             "purpose": purpose})

    def generate_keywords(self, concept_description, context="", count=None,
                          purpose="keyword_generation"):
        return self._invoke("generate_keywords", (concept_description,),
                            {"context": context, "count": count, "purpose": purpose})

    def alternative_interpretations(self, term, purpose="interpretation_enumeration"):
        return self._invoke("alternative_interpretations", (term,),
                            {"purpose": purpose})

    def interpret_query(self, nl_query, clarifications=None, corrections=None,
                        purpose="query_interpretation"):
        return self._invoke("interpret_query", (nl_query,),
                            {"clarifications": dict(clarifications or {}),
                             "corrections": _terms(corrections),
                             "purpose": purpose})

    def classify_dependency_pattern(self, function_description,
                                    purpose="dependency_classification"):
        return self._invoke("classify_dependency_pattern", (function_description,),
                            {"purpose": purpose})

    def judge_output(self, description, input_sample, output_sample,
                     purpose="semantic_judgement"):
        return self._invoke("judge_output",
                            (description, _terms(input_sample), _terms(output_sample)),
                            {"purpose": purpose})

    def render_text(self, template, purpose="text_generation", **fields):
        return self._invoke("render_text", (template,),
                            {"purpose": purpose, **fields})

    def complete(self, prompt, purpose="freeform_completion"):
        return self._invoke("complete", (prompt,), {"purpose": purpose})


class GatewayVLM(GatewayModelProxy):
    """Routes the simulated VLM's charged entry points."""

    def extract_scene_graph(self, image, purpose="scene_graph_extraction"):
        return self._invoke("extract_scene_graph", (image,), {"purpose": purpose})

    def caption(self, image, purpose="caption"):
        return self._invoke("caption", (image,), {"purpose": purpose})

    def answer_visual_question(self, image, question, purpose="visual_qa"):
        return self._invoke("answer_visual_question", (image, question),
                            {"purpose": purpose})

    def extract_scene_graph_batch(self, images, purpose="scene_graph_extraction"):
        return self._invoke_batch(
            "extract_scene_graph",
            [((image,), {"purpose": purpose}) for image in images])

    def answer_visual_question_batch(self, images, question,
                                     purpose="visual_qa"):
        return self._invoke_batch(
            "answer_visual_question",
            [((image, question), {"purpose": purpose}) for image in images])


class GatewayEmbeddings(GatewayModelProxy):
    """Routes the embedding model (batchable; predicates are semantic-eligible)."""

    def embed_word(self, word, purpose="embed_word"):
        return self._invoke("embed_word", (word,), {"purpose": purpose},
                            batchable=True)

    def embed_text(self, text, purpose="embed_text"):
        return self._invoke("embed_text", (text,), {"purpose": purpose},
                            batchable=True)

    def embed_many(self, texts, purpose="embed_batch"):
        return self._invoke("embed_many", (_terms(texts),), {"purpose": purpose},
                            batchable=True)

    def similarity(self, text_a, text_b, purpose="similarity"):
        return self._invoke("similarity", (text_a, text_b), {"purpose": purpose},
                            batchable=True)

    def max_similarity(self, query_terms, candidate_terms, purpose="max_similarity"):
        query, candidates = _terms(query_terms), _terms(candidate_terms)
        return self._invoke("max_similarity", (query, candidates),
                            {"purpose": purpose}, batchable=True,
                            semantic_terms=(query, candidates))

    def aggregate_similarity(self, query_terms, candidate_terms,
                             purpose="aggregate_similarity"):
        query, candidates = _terms(query_terms), _terms(candidate_terms)
        return self._invoke("aggregate_similarity", (query, candidates),
                            {"purpose": purpose}, batchable=True,
                            semantic_terms=(query, candidates))

    def match_fraction(self, query_terms, candidate_terms, threshold=0.5,
                       purpose="match_fraction"):
        query, candidates = _terms(query_terms), _terms(candidate_terms)
        return self._invoke("match_fraction", (query, candidates),
                            {"threshold": threshold, "purpose": purpose},
                            batchable=True, semantic_terms=(query, candidates))

    def match_fraction_batch(self, query_terms, candidate_lists, threshold=0.5,
                             purpose="match_fraction"):
        query = _terms(query_terms)
        return self._invoke_batch(
            "match_fraction",
            [((query, _terms(candidates)),
              {"threshold": threshold, "purpose": purpose})
             for candidates in candidate_lists],
            # Members are near-match eligible: when the semantic tier is on,
            # the batch client routes them through the serial funnel so the
            # tier keeps seeing (query, candidates) signatures.
            semantic_terms_of=lambda args, kwargs: (args[0], args[1]))

    def embed_text_batch(self, texts, purpose="embed_text"):
        return self._invoke_batch(
            "embed_text", [((text,), {"purpose": purpose}) for text in texts])

    def nearest(self, query, candidates, top_k=5, purpose="nearest"):
        return self._invoke("nearest", (query, _terms(candidates)),
                            {"top_k": top_k, "purpose": purpose}, batchable=True)


class GatewayNER(GatewayModelProxy):
    """Routes the entity extractor (batchable)."""

    def extract(self, text, purpose="text_graph_extraction"):
        return self._invoke("extract", (text,), {"purpose": purpose},
                            batchable=True)

    def extract_batch(self, texts, purpose="text_graph_extraction"):
        return self._invoke_batch(
            "extract", [((text,), {"purpose": purpose}) for text in texts])


class GatewayDetector(GatewayModelProxy):
    """Routes the pixel detector (batchable)."""

    def detect(self, image, purpose="pixel_detection"):
        return self._invoke("detect", (image,), {"purpose": purpose},
                            batchable=True)

    def detect_batch(self, images, purpose="pixel_detection"):
        return self._invoke_batch(
            "detect", [((image,), {"purpose": purpose}) for image in images])


class GatewayOCR(GatewayModelProxy):
    """Routes the OCR extractor (batchable)."""

    def extract_text(self, image, purpose="ocr"):
        return self._invoke("extract_text", (image,), {"purpose": purpose},
                            batchable=True)

    def extract_text_batch(self, images, purpose="ocr"):
        return self._invoke_batch(
            "extract_text",
            [((image,), {"purpose": purpose}) for image in images])


def is_routed(suite) -> bool:
    """Whether a model suite already routes through a gateway."""
    return getattr(suite, "gateway_client", None) is not None or \
        getattr(suite.llm, "__gateway_proxy__", False)


def route_suite(suite, client: SessionGatewayClient):
    """A copy of ``suite`` whose models call through the gateway.

    The copy shares the original's cost meter and lexicon (so per-session
    accounting and clarifications behave exactly as before); only the model
    objects are wrapped.  Routing an already-routed suite returns it as is.
    """
    if is_routed(suite):
        return suite
    return dataclasses.replace(
        suite,
        llm=GatewayLLM(suite.llm, client),
        vlm=GatewayVLM(suite.vlm, client),
        embeddings=GatewayEmbeddings(suite.embeddings, client),
        ner=GatewayNER(suite.ner, client),
        detector=GatewayDetector(suite.detector, client),
        ocr=GatewayOCR(suite.ocr, client),
        gateway_client=client,
    )

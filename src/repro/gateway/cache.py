"""The exact-match result cache shared by every session of one service.

Entries are keyed on the compact :data:`~repro.gateway.fingerprint.RequestKey`
and store a deep copy of the model's result plus the token cost the filling
session paid for it.  Lookups return a fresh deep copy, so callers may mutate
what they get back without poisoning the cache.

Two bounds keep the cache honest under heavy traffic: an entry-count capacity
(plain LRU) and an optional *token budget* — the summed token cost of all
cached entries — so a handful of enormous results cannot pin the whole
cache.  Both evict least-recently-used first.
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.gateway.fingerprint import RequestKey


@dataclass
class CacheEntry:
    """One cached model result.

    ``volatile`` marks entries whose request was keyed on a URI-addressed
    argument (poster images): they are only valid for the currently loaded
    corpus and are dropped by :meth:`ExactResultCache.clear` with
    ``volatile_only=True`` on corpus reload, while content-keyed (pure text)
    entries survive.
    """

    key: RequestKey
    result: Any
    token_cost: int = 0      # tokens the filling session paid to produce it
    hits: int = 0
    volatile: bool = False


@dataclass
class ExactCacheStats:
    """Counters for the exact-match tier."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    tokens_saved: int = 0    # sum of token_cost over every hit
    cached_tokens: int = 0   # current token mass held by the cache

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "tokens_saved": self.tokens_saved,
                "cached_tokens": self.cached_tokens}


class ExactResultCache:
    """A thread-safe LRU of model results with per-entry token accounting.

    An optional ``store`` (:class:`~repro.gateway.persist.GatewayCacheStore`)
    makes the tier durable: non-volatile entries are written through on
    :meth:`put` and previously persisted entries are loaded back (up to
    ``capacity``) at construction, so a restarted service starts warm.
    Volatile (URI-keyed) entries never reach the store — they are only
    valid for the currently loaded corpus.
    """

    def __init__(self, capacity: int = 4096, token_budget: Optional[int] = None,
                 store: Optional[Any] = None):
        self.capacity = max(1, capacity)
        self.token_budget = token_budget
        self.store = store
        self._entries: "OrderedDict[RequestKey, CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = ExactCacheStats()
        if store is not None:
            self._restore_from_store()

    def _restore_from_store(self) -> None:
        """Seed the cache from persisted entries (no write-back, no stats)."""
        for key, result, token_cost in self.store.load_exact(limit=self.capacity):
            entry = CacheEntry(key=key, result=result,
                               token_cost=max(0, int(token_cost)))
            with self._lock:
                self._entries[key] = entry
                self.stats.cached_tokens += entry.token_cost

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: RequestKey) -> Optional[CacheEntry]:
        """Look one result up; returns an entry whose ``result`` is a private
        deep copy, or None on a miss.

        Misses are *not* counted here — a missed lookup may still be
        answered by coalescing onto an in-flight execution; the gateway
        counts a miss (:meth:`note_miss`) only when a model actually runs.
        The deep copy happens outside the lock (stored results are immutable
        — the cache only holds and hands out private copies), so concurrent
        hits do not serialize on the copy of a large result.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            self.stats.hits += 1
            self.stats.tokens_saved += entry.token_cost
            result, token_cost, hits = entry.result, entry.token_cost, entry.hits
        return CacheEntry(key=key, result=copy.deepcopy(result),
                          token_cost=token_cost, hits=hits)

    def note_miss(self) -> None:
        """Count one request that led to a real model execution."""
        with self._lock:
            self.stats.misses += 1

    def put(self, key: RequestKey, result: Any, token_cost: int = 0,
            volatile: bool = False) -> None:
        """Insert one result (stored as a private deep copy).

        Non-volatile entries additionally write through to the attached
        persistent store, outside the lock (backend IO must not serialize
        concurrent cache traffic).
        """
        stored = CacheEntry(key=key, result=copy.deepcopy(result),
                            token_cost=max(0, int(token_cost)),
                            volatile=volatile)
        if self.store is not None and not volatile:
            self.store.put_exact(key, result, token_cost)
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self.stats.cached_tokens -= previous.token_cost
            self._entries[key] = stored
            self.stats.cached_tokens += stored.token_cost
            while len(self._entries) > self.capacity or (
                    self.token_budget is not None
                    and self.stats.cached_tokens > self.token_budget
                    and len(self._entries) > 1):
                _, evicted = self._entries.popitem(last=False)
                self.stats.cached_tokens -= evicted.token_cost
                self.stats.evictions += 1

    def clear(self, volatile_only: bool = False) -> int:
        """Drop cached results; returns how many entries were dropped.

        ``volatile_only=True`` drops only URI-keyed entries (see
        :class:`CacheEntry`) and retains content-keyed ones — the corpus
        reload path, where text-keyed results stay valid but URI-keyed ones
        collide across corpora.
        """
        with self._lock:
            if not volatile_only:
                dropped = len(self._entries)
                self._entries.clear()
                self.stats.cached_tokens = 0
                return dropped
            survivors = OrderedDict(
                (key, entry) for key, entry in self._entries.items()
                if not entry.volatile)
            dropped = len(self._entries) - len(survivors)
            self._entries = survivors
            self.stats.cached_tokens = sum(e.token_cost
                                           for e in survivors.values())
            return dropped

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            payload = self.stats.as_dict()
            payload["entries"] = len(self._entries)
            return payload

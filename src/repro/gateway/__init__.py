"""The model gateway: shared cache, coalescing, batching, admission.

See :mod:`repro.gateway.gateway` for the tier stack,
:mod:`repro.gateway.proxy` for how model suites are routed through it, and
:mod:`repro.gateway.vectorized` for the single-session batch client behind
vectorized operator execution.
"""

from repro.gateway.admission import AdmissionController
from repro.gateway.ann import AnnStats, LSHIndex
from repro.gateway.batching import BatchStats, KindBatchStats, MicroBatcher
from repro.gateway.cache import ExactResultCache
from repro.gateway.coalesce import RequestCoalescer
from repro.gateway.fingerprint import RequestKey, canonicalize, request_key
from repro.gateway.gateway import (
    GatewayConfig,
    ModelGateway,
    SessionCounters,
    SessionGatewayClient,
)
from repro.gateway.proxy import is_routed, route_suite
from repro.gateway.semantic import SEMANTIC_METHODS, SEMANTIC_MODES, SemanticNearCache
from repro.gateway.vectorized import GatewayBatchClient, batch_route

__all__ = [
    "AdmissionController",
    "AnnStats",
    "BatchStats",
    "ExactResultCache",
    "GatewayBatchClient",
    "KindBatchStats",
    "GatewayConfig",
    "LSHIndex",
    "MicroBatcher",
    "ModelGateway",
    "RequestCoalescer",
    "RequestKey",
    "SEMANTIC_METHODS",
    "SEMANTIC_MODES",
    "SemanticNearCache",
    "SessionCounters",
    "SessionGatewayClient",
    "batch_route",
    "canonicalize",
    "is_routed",
    "request_key",
    "route_suite",
]

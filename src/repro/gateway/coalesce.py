"""In-flight request coalescing.

When two sessions issue the *same* model call concurrently, only the first
(the leader) executes it; every other caller (a follower) blocks on the
leader's in-flight slot and receives the shared result.  The leader's session
pays the tokens; followers pay nothing — exactly the behaviour of a shared
inference endpoint de-duplicating identical requests.

The in-flight table is keyed on the same compact
:data:`~repro.gateway.fingerprint.RequestKey` as the exact cache and holds
only live slots, so its memory footprint is bounded by the number of calls
actually executing at any instant.
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.gateway.fingerprint import RequestKey


class InFlightCall:
    """One executing model call that followers may wait on."""

    __slots__ = ("key", "event", "result", "token_cost", "error", "followers")

    def __init__(self, key: RequestKey):
        self.key = key
        self.event = threading.Event()
        self.result: Any = None
        self.token_cost = 0
        self.error: Optional[BaseException] = None
        self.followers = 0


@dataclass
class CoalesceStats:
    """Counters for the coalescing tier."""

    led: int = 0           # calls that executed as the leader
    coalesced: int = 0     # calls that piggy-backed on a leader
    tokens_saved: int = 0  # token cost followers did not pay

    def as_dict(self) -> Dict[str, int]:
        return {"led": self.led, "coalesced": self.coalesced,
                "tokens_saved": self.tokens_saved}


class RequestCoalescer:
    """Tracks in-flight calls and parks identical concurrent requests."""

    def __init__(self):
        self._inflight: Dict[RequestKey, InFlightCall] = {}
        self._lock = threading.Lock()
        self.stats = CoalesceStats()

    def begin(self, key: RequestKey) -> Tuple[bool, InFlightCall]:
        """Join the in-flight table.

        Returns ``(True, slot)`` when the caller is the leader and must
        execute (then :meth:`complete` or :meth:`fail` the slot), or
        ``(False, slot)`` when an identical call is already executing and the
        caller should :meth:`wait` on it.
        """
        with self._lock:
            existing = self._inflight.get(key)
            if existing is not None:
                existing.followers += 1
                self.stats.coalesced += 1
                return False, existing
            slot = InFlightCall(key)
            self._inflight[key] = slot
            self.stats.led += 1
            return True, slot

    def complete(self, slot: InFlightCall, result: Any, token_cost: int) -> None:
        """Publish the leader's result and release every follower.

        When followers are waiting, a private deep copy is published: the
        leader's caller owns (and may mutate) the original object, and
        followers deep-copy the slot's result concurrently — they must never
        read a live object.  Popping the slot first fixes the follower
        count: later identical calls become leaders of their own slot.
        """
        slot.token_cost = max(0, int(token_cost))
        with self._lock:
            self._inflight.pop(slot.key, None)
            followers = slot.followers
            self.stats.tokens_saved += slot.token_cost * followers
        slot.result = copy.deepcopy(result) if followers else result
        slot.event.set()

    def fail(self, slot: InFlightCall, error: BaseException) -> None:
        """Propagate the leader's failure to every follower."""
        slot.error = error
        with self._lock:
            self._inflight.pop(slot.key, None)
        slot.event.set()

    def wait(self, slot: InFlightCall, timeout: Optional[float] = None) -> Tuple[Any, int]:
        """Block until the leader finishes; returns (result, token_cost).

        The returned result is the leader's object — the gateway deep-copies
        it before handing it to the follower.  Re-raises the leader's error.
        """
        if not slot.event.wait(timeout):
            raise TimeoutError(f"in-flight model call {slot.key} did not finish "
                               f"within {timeout} s")
        if slot.error is not None:
            raise slot.error
        return slot.result, slot.token_cost

    def inflight_count(self) -> int:
        with self._lock:
            return len(self._inflight)

"""The opt-in semantic near-match tier for embeddings-backed predicates.

Exact caching only helps when two requests are byte-identical.  The
embeddings-backed predicate methods (``match_fraction``,
``aggregate_similarity``, ``max_similarity``) are *smooth* in their term
sets, so a request whose terms are nearly the same as an already-answered
one ("gun, murder, chase" vs "guns, murder, chase") produces a nearly
identical score.  This tier keys answered predicate requests by an
embedding of their term signature and serves a stored answer when a new
request's signature is within ``threshold`` cosine similarity.

Correctness guard: the tier is **off by default** — disabled, results are
bit-identical to an uncached run — and only ever consulted for the
predicate methods.  When enabled it is *approximate by contract*: a lookup
below the threshold always falls back to exact execution, an entry whose
canonical signature is string-identical to the request's is authoritative
(same sorted term multisets compute the same answer), and anything between
is a deliberate near-match.  Entries are grouped per (model, method,
lexicon fingerprint, non-purpose kwargs) — diverged lexicons, or the same
terms under a different ``threshold=`` argument, never share.
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.models.embeddings import EmbeddingModel, cosine_similarity

#: Embedding-model methods eligible for near-match reuse.
SEMANTIC_METHODS = ("match_fraction", "aggregate_similarity", "max_similarity")


@dataclass
class SemanticEntry:
    """One answered predicate request: signature (text + vector) + answer."""

    vector: np.ndarray
    signature: str
    result: Any
    token_cost: int = 0
    hits: int = 0


@dataclass
class SemanticStats:
    """Counters for the semantic tier."""

    near_hits: int = 0
    fallbacks: int = 0       # lookups below threshold (exact execution ran)
    tokens_saved: int = 0
    entries: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"near_hits": self.near_hits, "fallbacks": self.fallbacks,
                "tokens_saved": self.tokens_saved, "entries": self.entries}


def term_signature(query_terms: Sequence[Any], candidate_terms: Sequence[Any]) -> str:
    """The order-insensitive canonical signature of one predicate request.

    Structural (``repr`` of the sorted term tuples) rather than
    space-joined, so distinct term sets — ``["a b"]`` vs ``["a", "b"]``, or
    terms containing a separator — never canonicalize to the same string;
    string equality of signatures therefore implies an identical request.
    """
    left = tuple(sorted(str(t) for t in query_terms))
    right = tuple(sorted(str(t) for t in candidate_terms))
    return repr((left, right))


class SemanticNearCache:
    """Cosine-keyed reuse of embeddings-backed predicate answers."""

    def __init__(self, threshold: float = 0.97, capacity: int = 512,
                 embedder: Optional[EmbeddingModel] = None):
        if not 0.0 < threshold <= 1.0:
            raise ValueError("semantic threshold must be in (0, 1]")
        self.threshold = threshold
        #: Global bound on stored entries across *all* groups (the number of
        #: groups is open-ended — every diverged lexicon fingerprint mints
        #: new ones — so a per-group cap alone would not bound memory).
        self.capacity = max(1, capacity)
        # A private, meter-less embedder: signature lookups are index
        # maintenance, not model traffic, and must not charge anyone.
        self._embedder = embedder or EmbeddingModel(cost_meter=None)
        # Groups in LRU order (most recently stored-into last); entries
        # within a group in insertion order.
        self._groups: "OrderedDict[Tuple, List[SemanticEntry]]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = SemanticStats()

    def embed_signature(self, signature: str) -> np.ndarray:
        return self._embedder.embed_text(signature, purpose="gateway_signature")

    def lookup(self, group: Tuple, vector: np.ndarray,
               signature: str) -> Optional[SemanticEntry]:
        """The stored answer matching ``signature``/``vector``, if any.

        A signature-identical entry wins outright (it is the same request,
        canonically); otherwise the cosine-nearest entry is served when it
        clears the threshold.  Returns None (counted as a fallback) when no
        stored request qualifies — the caller must then execute exactly.
        """
        with self._lock:
            best: Optional[SemanticEntry] = None
            best_score = 0.0
            for entry in self._groups.get(group, ()):
                if entry.signature == signature:
                    best, best_score = entry, 1.0
                    break
                score = cosine_similarity(vector, entry.vector)
                if score > best_score:
                    best, best_score = entry, score
            if best is None or best_score < self.threshold:
                self.stats.fallbacks += 1
                return None
            best.hits += 1
            self.stats.near_hits += 1
            self.stats.tokens_saved += best.token_cost
            return SemanticEntry(vector=best.vector, signature=best.signature,
                                 result=copy.deepcopy(best.result),
                                 token_cost=best.token_cost, hits=best.hits)

    def put(self, group: Tuple, vector: np.ndarray, signature: str, result: Any,
            token_cost: int = 0) -> None:
        """Store one exactly-computed answer for future near-matches."""
        entry = SemanticEntry(vector=vector, signature=signature,
                              result=copy.deepcopy(result),
                              token_cost=max(0, int(token_cost)))
        with self._lock:
            entries = self._groups.setdefault(group, [])
            self._groups.move_to_end(group)
            entries.append(entry)
            self.stats.entries += 1
            # Evict globally, oldest-group-first, so the configured capacity
            # bounds the whole tier rather than each group.
            while self.stats.entries > self.capacity:
                oldest_group, oldest_entries = next(iter(self._groups.items()))
                oldest_entries.pop(0)
                self.stats.entries -= 1
                if not oldest_entries:
                    del self._groups[oldest_group]

    def clear(self) -> None:
        """Drop every stored answer (counters are kept)."""
        with self._lock:
            self._groups.clear()
            self.stats.entries = 0

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return self.stats.as_dict()

"""The semantic near-match tier for embeddings-backed predicates.

Exact caching only helps when two requests are byte-identical.  The
embeddings-backed predicate methods (``match_fraction``,
``aggregate_similarity``, ``max_similarity``) are *smooth* in their term
sets, so a request whose terms are nearly the same as an already-answered
one ("gun, murder, chase" vs "guns, murder, chase") produces a nearly
identical score.  This tier keys answered predicate requests by an
embedding of their term signature and serves a stored answer when a new
request's signature is within ``threshold`` cosine similarity.

Two lookup modes share the same entry points:

* ``"linear"`` — the original exhaustive cosine scan over every stored
  signature vector in the request's group.  Exact nearest-neighbour, cost
  linear in the group size.
* ``"ann"`` (the default) — a multi-probe random-hyperplane LSH index
  (:mod:`repro.gateway.ann`) narrows the scan to the entries sharing (or
  neighbouring) the query's hash bucket.  Lookup cost is independent of
  the total entry count; the candidates still go through the *same* exact
  cosine check, so ANN can only shrink the candidate set a linear scan
  would have considered — it can serve a fallback where linear would have
  found a borderline match (recall), but never accept anything linear
  would have rejected (no new false accepts by construction).

Correctness guard: the tier is *approximate by contract* when enabled — a
lookup below the threshold always falls back to exact execution, an entry
whose canonical signature is string-identical to the request's is
authoritative (same sorted term multisets compute the same answer), and
anything between is a deliberate near-match whose measured accuracy is
what ``benchmarks/bench_semantic.py`` gates: the shipped default threshold
is the one the benchmark proves produces zero false accepts against exact
execution on the scoring workload.  Entries are grouped per (model,
method, lexicon fingerprint, non-purpose kwargs) — diverged lexicons, or
the same terms under a different ``threshold=`` argument, never share.

Invalidation keeps the LSH index and the entry store in lockstep: every
eviction, ``clear()`` (the corpus-reload path included), and capacity
sweep drops the index entry alongside the cached answer, under one lock.
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.gateway.ann import LSHIndex
from repro.models.embeddings import EmbeddingModel, cosine_similarity

#: Embedding-model methods eligible for near-match reuse.
SEMANTIC_METHODS = ("match_fraction", "aggregate_similarity", "max_similarity")

#: Recognised lookup modes (the config layer adds "off" on top).
SEMANTIC_MODES = ("linear", "ann")


@dataclass
class SemanticEntry:
    """One answered predicate request: signature (text + vector) + answer."""

    vector: np.ndarray
    signature: str
    result: Any
    token_cost: int = 0
    hits: int = 0


@dataclass
class SemanticStats:
    """Counters for the semantic tier."""

    near_hits: int = 0
    fallbacks: int = 0       # lookups below threshold (exact execution ran)
    tokens_saved: int = 0
    entries: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"near_hits": self.near_hits, "fallbacks": self.fallbacks,
                "tokens_saved": self.tokens_saved, "entries": self.entries}


def term_signature(query_terms: Sequence[Any], candidate_terms: Sequence[Any]) -> str:
    """The order-insensitive canonical signature of one predicate request.

    Structural (``repr`` of the sorted term tuples) rather than
    space-joined, so distinct term sets — ``["a b"]`` vs ``["a", "b"]``, or
    terms containing a separator — never canonicalize to the same string;
    string equality of signatures therefore implies an identical request.
    """
    left = tuple(sorted(str(t) for t in query_terms))
    right = tuple(sorted(str(t) for t in candidate_terms))
    return repr((left, right))


class SemanticNearCache:
    """Cosine-keyed reuse of embeddings-backed predicate answers."""

    def __init__(self, threshold: float = 0.97, capacity: int = 512,
                 embedder: Optional[EmbeddingModel] = None,
                 mode: str = "ann", planes: int = 16, probes: int = 8,
                 store: Optional[Any] = None):
        if not 0.0 < threshold <= 1.0:
            raise ValueError("semantic threshold must be in (0, 1]")
        if mode not in SEMANTIC_MODES:
            raise ValueError(f"semantic mode must be one of {SEMANTIC_MODES}, "
                             f"got {mode!r}")
        self.threshold = threshold
        self.mode = mode
        #: Global bound on stored entries across *all* groups (the number of
        #: groups is open-ended — every diverged lexicon fingerprint mints
        #: new ones — so a per-group cap alone would not bound memory).
        self.capacity = max(1, capacity)
        # A private, meter-less embedder: signature lookups are index
        # maintenance, not model traffic, and must not charge anyone.
        self._embedder = embedder or EmbeddingModel(cost_meter=None)
        # Groups in LRU order (most recently stored-into last); entries
        # within a group in insertion order.  Kept in *both* modes: it is
        # the eviction order and the linear-scan store.
        self._groups: "OrderedDict[Tuple, List[SemanticEntry]]" = OrderedDict()
        # The ANN index is maintained even in linear mode (so flipping the
        # mode knob on a live gateway needs no rebuild) — its upkeep is one
        # O(planes·dims) hash per insert/evict.
        self.index = LSHIndex(planes=planes, probes=probes,
                              dimensions=self._embedder.vector_width)
        self._lock = threading.Lock()
        self.stats = SemanticStats()
        # Optional persistence (repro.gateway.persist.GatewayCacheStore):
        # stored answers write through as (group, signature, result, cost);
        # vectors are re-embedded on restore() — embed_signature is
        # deterministic, so the rebuilt LSH index is exact.
        self.store = store

    def embed_signature(self, signature: str) -> np.ndarray:
        return self._embedder.embed_text(signature, purpose="gateway_signature")

    # -- lookup -------------------------------------------------------------------
    def search(self, group: Tuple, vector: np.ndarray,
               signature: str) -> Tuple[Optional[SemanticEntry], int]:
        """``(served entry or None, buckets probed)`` for one request.

        A signature-identical entry wins outright (it is the same request,
        canonically); otherwise the cosine-nearest candidate is served when
        it clears the threshold.  A None entry (counted as a fallback)
        means no stored request qualified — the caller must then execute
        exactly.  The probe count is the ANN bucket scans issued (a linear
        scan reports one "probe" covering the whole group).
        """
        with self._lock:
            probes_before = self.index.stats.probes
            if self.mode == "ann":
                candidates = self.index.candidates(group, vector)
                probes = self.index.stats.probes - probes_before
            else:
                candidates = self._groups.get(group, ())
                probes = 1
            best: Optional[SemanticEntry] = None
            best_score = 0.0
            for entry in candidates:
                if entry.signature == signature:
                    best, best_score = entry, 1.0
                    break
                score = cosine_similarity(vector, entry.vector)
                if score > best_score:
                    best, best_score = entry, score
            if best is None or best_score < self.threshold:
                self.stats.fallbacks += 1
                return None, probes
            best.hits += 1
            self.stats.near_hits += 1
            self.stats.tokens_saved += best.token_cost
            served = SemanticEntry(vector=best.vector, signature=best.signature,
                                   result=copy.deepcopy(best.result),
                                   token_cost=best.token_cost, hits=best.hits)
            return served, probes

    def lookup(self, group: Tuple, vector: np.ndarray,
               signature: str) -> Optional[SemanticEntry]:
        """The stored answer matching ``signature``/``vector``, if any."""
        entry, _ = self.search(group, vector, signature)
        return entry

    # -- maintenance --------------------------------------------------------------
    def put(self, group: Tuple, vector: np.ndarray, signature: str, result: Any,
            token_cost: int = 0, persist: bool = True) -> None:
        """Store one exactly-computed answer for future near-matches.

        ``persist=False`` is the restore path: entries loaded back from the
        store must not echo into it.  The write-through happens outside the
        lock — backend IO must not serialize lookups.
        """
        if persist and self.store is not None:
            self.store.put_semantic(group, signature, result, token_cost)
        entry = SemanticEntry(vector=vector, signature=signature,
                              result=copy.deepcopy(result),
                              token_cost=max(0, int(token_cost)))
        with self._lock:
            entries = self._groups.setdefault(group, [])
            self._groups.move_to_end(group)
            entries.append(entry)
            self.index.add(group, vector, entry)
            self.stats.entries += 1
            # Evict globally, oldest-group-first, so the configured capacity
            # bounds the whole tier rather than each group.  The index entry
            # goes with the cache entry — an evicted answer must never be
            # findable through a stale bucket.
            while self.stats.entries > self.capacity:
                oldest_group, oldest_entries = next(iter(self._groups.items()))
                evicted = oldest_entries.pop(0)
                self.index.remove(oldest_group, evicted.vector, evicted)
                self.stats.entries -= 1
                if not oldest_entries:
                    del self._groups[oldest_group]

    def restore_persisted(self) -> int:
        """Rebuild the tier (entries + LSH index) from the attached store.

        Safe to call at startup *and* after a corpus-reload ``clear()``:
        a persisted answer is fully determined by its signature — the exact
        term sets travel inside it — so unlike live candidate term lists it
        cannot go stale when the corpus changes.  Returns entries restored
        (0 without a store); restores stop at ``capacity``.
        """
        if self.store is None:
            return 0
        restored = 0
        for group, signature, result, token_cost in self.store.load_semantic():
            if restored >= self.capacity:
                break
            vector = self.embed_signature(signature)
            self.put(group, vector, signature, result, token_cost,
                     persist=False)
            restored += 1
        return restored

    def clear(self) -> None:
        """Drop every stored answer *and* its index entry (counters kept).

        This is the corpus-reload / volatile-invalidation path: the entry
        store and the LSH index are cleared under one lock so no probe can
        observe an index entry whose answer is gone.
        """
        with self._lock:
            self._groups.clear()
            self.index.clear()
            self.stats.entries = 0

    # -- observability ------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            payload: Dict[str, Any] = self.stats.as_dict()
            payload["mode"] = self.mode
            payload["ann"] = self.index.as_dict()
            return payload

"""The model gateway: one front door for all foundation-model traffic.

Every model call a :class:`~repro.api.service.KathDBService` makes — from
any session, the view populator, or the CLI batch path — funnels through one
:class:`ModelGateway`.  The gateway stacks four tiers in front of the
simulated model suite, cheapest first:

1. **exact cache** — identical requests answered from a shared LRU
   (:mod:`repro.gateway.cache`); hits cost the hitting session nothing;
2. **semantic near-match** — opt-in cosine-keyed reuse for the
   embeddings-backed predicates (:mod:`repro.gateway.semantic`);
3. **coalescing** — identical requests *currently executing* share one
   execution (:mod:`repro.gateway.coalesce`);
4. **admission + micro-batching** — misses take a global concurrency slot,
   batchable kinds in admission-slot-sized groups
   (:mod:`repro.gateway.admission`, :mod:`repro.gateway.batching`).

Sessions talk to the gateway through a :class:`SessionGatewayClient`, which
carries the session identity (for quota enforcement and per-session
counters) and is what the model proxies in :mod:`repro.gateway.proxy` hold.

Token accounting is strictly *pay-for-your-misses*: an executing call
charges the executing session's own cost meter (the models already do this);
hits, near-hits, and coalesced followers charge nobody and are tallied as
``tokens_saved``.  Micro-batched misses pay a *discounted* price — each
member's fair share of one batched invocation (shared setup overhead + its
marginal content) instead of the full serial cost — and the discount is
tallied as ``batch_tokens_saved``.
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.gateway.admission import AdmissionController
from repro.gateway.batching import MicroBatcher
from repro.models.batching import BatchMember, metered_call
from repro.gateway.cache import ExactResultCache
from repro.gateway.coalesce import RequestCoalescer
from repro.gateway.fingerprint import (
    canonicalize,
    contains_uri,
    lexicon_fingerprint_of,
    request_key_from_canonical,
    semantic_group,
)
from repro.gateway.semantic import SemanticNearCache, term_signature
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import span as obs_span
from repro.sched.cancel import check_current_cancel


@dataclass
class GatewayConfig:
    """Tuning knobs for one gateway instance (service-owned)."""

    enable_cache: bool = True
    cache_entries: int = 4096
    cache_token_budget: Optional[int] = None
    enable_coalescing: bool = True
    enable_batching: bool = True
    batch_window_s: float = 0.0
    max_batch: int = 32
    enable_semantic: bool = False
    semantic_threshold: float = 0.97
    semantic_entries: int = 512
    # Lookup structure for the semantic tier: "ann" (multi-probe LSH over
    # the signature vectors, sublinear) or "linear" (exhaustive scan).
    semantic_mode: str = "ann"
    semantic_planes: int = 16
    semantic_probes: int = 8
    max_concurrency: int = 16
    session_token_quota: Optional[int] = None
    # LRU bound on tracked per-session client entries (stats/ledger);
    # throwaway per-request sessions must not grow the registry forever.
    # Eviction only drops the stats/ledger entry — live sessions hold
    # their client through their model proxies regardless.
    max_tracked_sessions: int = 4096


@dataclass
class SessionCounters:
    """Per-session view of what the gateway did for one caller."""

    hits: int = 0
    misses: int = 0
    coalesced: int = 0
    semantic_hits: int = 0
    tokens_saved: int = 0
    tokens_charged: int = 0
    # Tokens micro-batching discounted off this session's own misses (the
    # serial price minus the batched share it actually paid).
    batch_tokens_saved: int = 0
    # Batched invocations this session issued itself through the vectorized
    # batch client (one per executed chunk); micro-batch memberships formed
    # by cross-session collisions are not counted here.
    batch_calls: int = 0
    # Sizes of those batched invocations, in issue order.  Not part of
    # _KEYS (lists don't delta); the engine snapshots the length instead.
    batch_sizes: List[int] = field(default_factory=list)

    _KEYS = ("hits", "misses", "coalesced", "semantic_hits",
             "tokens_saved", "tokens_charged", "batch_tokens_saved",
             "batch_calls")

    def as_dict(self) -> Dict[str, int]:
        return {key: getattr(self, key) for key in self._KEYS}

    def snapshot(self) -> Tuple[int, ...]:
        return tuple(getattr(self, key) for key in self._KEYS)

    def delta(self, marker: Tuple[int, ...]) -> Dict[str, int]:
        now = self.snapshot()
        return {k: now[i] - marker[i] for i, k in enumerate(self._KEYS)}


class SessionGatewayClient:
    """One session's handle on the shared gateway.

    ``quota_exempt`` marks administrative callers (corpus population) that
    the per-session token quota must not throttle.  ``tenant_id`` is the
    quota-ledger key this client's spend charges against; it defaults to the
    session id, so callers that never name a tenant keep one ledger entry
    per session, while named tenants share one ledger across all their
    sessions (a tenant cannot dodge its quota with throwaway sessions).
    """

    def __init__(self, gateway: "ModelGateway", session_id: str,
                 quota_exempt: bool = False, tenant_id: Optional[str] = None):
        self.gateway = gateway
        self.session_id = session_id
        self.tenant_id = tenant_id or session_id
        self.quota_exempt = quota_exempt
        self.counters = SessionCounters()

    def invoke(self, model: Any, method: str, args: Tuple[Any, ...],
               kwargs: Optional[Dict[str, Any]] = None, *,
               batchable: bool = False,
               semantic_terms: Optional[Tuple[Any, Any]] = None) -> Any:
        return self.gateway.invoke(self, model, method, args, kwargs or {},
                                   batchable=batchable,
                                   semantic_terms=semantic_terms)

    def spent(self) -> int:
        """Tokens this client's tenant has been charged through the gateway."""
        return self.gateway.admission.spent(self.tenant_id)

    def quota_state(self) -> Dict[str, Any]:
        """This session's live quota position, for pre-emptive backoff.

        ``tokens_remaining`` is None when no quota applies (unconfigured, or
        a quota-exempt internal client); ``quota_exhausted`` True means the
        next miss will be refused with ``SessionQuotaExceededError``.
        """
        # Read the admission controller's copy — the authority precheck()
        # enforces against — not the config snapshot it was built from.
        quota = (None if self.quota_exempt
                 else self.gateway.admission.session_token_quota)
        used = self.spent()
        return {
            "tokens_used": used,
            "tokens_remaining": max(0, quota - used) if quota is not None else None,
            "quota_exhausted": quota is not None and used >= quota,
        }


class ModelGateway:
    """Shared semantic cache + coalescing + micro-batching + admission."""

    def __init__(self, config: Optional[GatewayConfig] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 store: Optional[Any] = None):
        self.config = config or GatewayConfig()
        # Optional durable cache store (repro.gateway.persist): the exact
        # tier seeds from it and writes non-volatile entries through; the
        # semantic tier persists (group, signature, result, cost) and
        # rebuilds its LSH index from the signatures on startup.
        self.store = store
        # The service passes its shared registry so gateway telemetry and
        # query traces land in one store; standalone gateways own a private
        # one.  ``self.events`` — the rolling stream behind
        # :meth:`windowed_stats` — is the registry's EventLog (one lock,
        # one retention policy, perf_counter stamps).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = self.metrics.events
        self.cache = ExactResultCache(capacity=self.config.cache_entries,
                                      token_budget=self.config.cache_token_budget,
                                      store=store)
        self.coalescer = RequestCoalescer()
        self.admission = AdmissionController(
            max_concurrency=self.config.max_concurrency,
            session_token_quota=self.config.session_token_quota)
        self.batcher = MicroBatcher(self.admission,
                                    window_s=self.config.batch_window_s,
                                    max_batch=self.config.max_batch)
        self.semantic = SemanticNearCache(threshold=self.config.semantic_threshold,
                                          capacity=self.config.semantic_entries,
                                          mode=self.config.semantic_mode,
                                          planes=self.config.semantic_planes,
                                          probes=self.config.semantic_probes,
                                          store=store)
        if store is not None and self.config.enable_semantic:
            self.semantic.restore_persisted()
        self._clients_lock = threading.Lock()
        self._clients: "OrderedDict[str, SessionGatewayClient]" = OrderedDict()

    #: Internal (quota-exempt) client ids live under this prefix; caller
    #: session ids may not use it, so a session named "loader" can never
    #: alias the populator's exemption.
    RESERVED_PREFIX = "#"
    # -- clients and routing --------------------------------------------------------
    def client(self, session_id: str,
               tenant_id: Optional[str] = None) -> SessionGatewayClient:
        """The (one) client for a caller session id, created on first use.

        ``tenant_id`` sets the quota-ledger key on first creation (default:
        the session id).
        """
        if session_id.startswith(self.RESERVED_PREFIX):
            raise ValueError(f"session ids must not start with "
                             f"{self.RESERVED_PREFIX!r} (reserved for internal "
                             f"gateway clients): {session_id!r}")
        return self._client(session_id, quota_exempt=False, tenant_id=tenant_id)

    def internal_client(self, name: str) -> SessionGatewayClient:
        """A quota-exempt client for service-internal traffic (population)."""
        return self._client(self.RESERVED_PREFIX + name, quota_exempt=True)

    def _client(self, session_id: str, quota_exempt: bool,
                tenant_id: Optional[str] = None) -> SessionGatewayClient:
        with self._clients_lock:
            existing = self._clients.get(session_id)
            if existing is None:
                existing = SessionGatewayClient(self, session_id,
                                                quota_exempt=quota_exempt,
                                                tenant_id=tenant_id)
                self._clients[session_id] = existing
                while len(self._clients) > self.config.max_tracked_sessions:
                    self._clients.popitem(last=False)
            else:
                if tenant_id is not None and existing.tenant_id != tenant_id:
                    # A cached client keeps the binding it was created with;
                    # an explicit tenant re-binds it so the quota ledger
                    # follows the caller's declaration, not creation order.
                    existing.tenant_id = tenant_id
                self._clients.move_to_end(session_id)
            return existing

    def route(self, suite, session_id: str, quota_exempt: bool = False,
              tenant_id: Optional[str] = None):
        """A view of ``suite`` whose models call through this gateway.

        Convenience wrapper over :func:`repro.gateway.proxy.route_suite`.
        ``quota_exempt`` is for service-internal traffic and registers the
        client under the reserved internal namespace.  ``tenant_id`` keys
        the client's quota ledger (default: the session id).
        """
        from repro.gateway.proxy import route_suite
        client = (self.internal_client(session_id) if quota_exempt
                  else self.client(session_id, tenant_id=tenant_id))
        return route_suite(suite, client)

    # -- the funnel -----------------------------------------------------------------
    def invoke(self, client: SessionGatewayClient, model: Any, method: str,
               args: Tuple[Any, ...], kwargs: Dict[str, Any], *,
               batchable: bool = False,
               semantic_terms: Optional[Tuple[Any, Any]] = None) -> Any:
        """Answer one model call through the tier stack.

        ``semantic_terms`` is the (query_terms, candidate_terms) pair for
        predicate methods eligible for the near-match tier; None otherwise.

        Each call records one ``model``-kind span on the *calling*
        session's active trace (a no-op outside a trace), tagged with the
        tier that answered it — exact-hit / semantic-hit /
        coalesced-follower / batched-chunk / executed.  Because the span
        is opened caller-side, shared work (a coalesced execution, a
        micro-batch) shows up in every participating session's trace.
        """
        model_name = getattr(model, "name", type(model).__name__)
        with obs_span(f"{model_name}.{method}", kind="model",
                      model=model_name, method=method) as sp:
            return self._serve(client, model, method, args, kwargs, sp,
                               batchable=batchable,
                               semantic_terms=semantic_terms)

    def _serve(self, client: SessionGatewayClient, model: Any, method: str,
               args: Tuple[Any, ...], kwargs: Dict[str, Any], sp: Any, *,
               batchable: bool = False,
               semantic_terms: Optional[Tuple[Any, Any]] = None) -> Any:
        cfg = self.config
        # A cancelled request (lapsed deadline) must stop before paying for
        # another model call; cache lookups below are cheap enough to skip.
        check_current_cancel()
        lexicon_fp = lexicon_fingerprint_of(model)
        model_name = getattr(model, "name", type(model).__name__)
        # The purpose tag never reaches the model — it only labels the cost
        # record — so it must not partition results: two operators issuing
        # the byte-identical call under different node names share one
        # execution.  (The executing leader's purpose is what lands in the
        # ledger; hits and followers record nothing anyway.)
        keyed_kwargs = {k: v for k, v in kwargs.items() if k != "purpose"}
        canonical_args = canonicalize(args)
        canonical_kwargs = canonicalize(keyed_kwargs)
        key = request_key_from_canonical(model_name, method, canonical_args,
                                         canonical_kwargs, lexicon_fp)

        # Tier 1: exact cache.
        if cfg.enable_cache:
            entry = self.cache.get(key)
            if entry is not None:
                client.counters.hits += 1
                client.counters.tokens_saved += entry.token_cost
                self.note_event("hits", 1, entry.token_cost, client.session_id)
                sp.tag(outcome="exact-hit", tokens_saved=entry.token_cost)
                return entry.result

        # Tier 2: semantic near-match (predicates only).
        signature = None
        signature_vector = None
        signature_group = None
        if cfg.enable_semantic and cfg.enable_cache and semantic_terms is not None:
            # Non-purpose kwargs (e.g. match_fraction's threshold=) change
            # the answer, so they partition the signature space; the purpose
            # tag is pure accounting and must not — canonical_kwargs already
            # excludes it.  The group's model name is the cache key's name
            # (same fallback as the batch client), so the serial and
            # vectorized funnels always agree on the request family.
            signature_group = semantic_group(model_name, method,
                                             canonical_kwargs, lexicon_fp)
            signature = term_signature(*semantic_terms)
            signature_vector = self.semantic.embed_signature(signature)
            near, probes = self.semantic.search(signature_group,
                                                signature_vector, signature)
            self.note_event("semantic_probes", probes, 0, client.session_id)
            if near is not None:
                client.counters.semantic_hits += 1
                client.counters.tokens_saved += near.token_cost
                self.note_event("semantic_hits", 1, near.token_cost,
                                client.session_id)
                sp.tag(outcome="semantic-hit", tokens_saved=near.token_cost)
                return near.result
            # Below threshold: guaranteed fall-through to exact execution.

        # Quota check before joining the in-flight table: an over-quota
        # tenant must be refused here, not become a leader whose rejection
        # would propagate to under-quota followers of the same request.
        if not client.quota_exempt:
            self.admission.precheck(client.tenant_id)

        # Tier 3: coalesce onto an identical in-flight execution.
        slot = None
        if cfg.enable_coalescing:
            leader, slot = self.coalescer.begin(key)
            if not leader:
                result, token_cost = self.coalescer.wait(slot)
                client.counters.coalesced += 1
                client.counters.tokens_saved += token_cost
                self.note_event("coalesced", 1, token_cost, client.session_id)
                sp.tag(outcome="coalesced-follower", tokens_saved=token_cost)
                return copy.deepcopy(result)

        # Tier 4: execute (admission-gated, possibly micro-batched).  The
        # model charges its own cost meter — i.e. the calling session's;
        # batched members are charged their fair share of the batch price.
        try:
            if cfg.enable_batching and batchable:
                member = BatchMember(model=model, method=method, args=args,
                                     kwargs=kwargs, key=key)
                batch_kind = f"{getattr(model, 'name', type(model).__name__)}.{method}"
                result, token_cost, serial_cost = \
                    self.batcher.submit(batch_kind, member).result()
                sp.tag(outcome="batched-chunk", tokens=token_cost)
                if serial_cost > token_cost:
                    client.counters.batch_tokens_saved += serial_cost - token_cost
                    self.note_event("batch_saved", 0, serial_cost - token_cost,
                                    client.session_id)
                    sp.tag(batch_tokens_saved=serial_cost - token_cost)
            else:
                with self.admission.slot():
                    result, token_cost = metered_call(model, method, args, kwargs)
                sp.tag(outcome="executed", tokens=token_cost)
        except BaseException as error:
            if slot is not None:
                self.coalescer.fail(slot, error)
            raise

        # Post-execution bookkeeping must never strand the in-flight slot:
        # if e.g. cache.put's deep copy raises, followers (current and
        # future — the key stays in the table until resolved) would block
        # forever.  Publish the result no matter what.
        try:
            client.counters.misses += 1
            client.counters.tokens_charged += token_cost
            self.note_event("misses", 1, token_cost, client.session_id)
            self.admission.charge(client.tenant_id, token_cost)
            if cfg.enable_cache:
                self.cache.note_miss()
                self.cache.put(key, result, token_cost,
                               volatile=contains_uri(canonical_args)
                               or contains_uri(canonical_kwargs))
            if signature_group is not None and signature_vector is not None:
                self.semantic.put(signature_group, signature_vector, signature,
                                  result, token_cost)
        finally:
            if slot is not None:
                self.coalescer.complete(slot, result, token_cost)
        return result

    # -- observability --------------------------------------------------------------
    def note_event(self, kind: str, requests: int, tokens: int,
                   session_id: Optional[str] = None) -> None:
        """Append one event to the rolling log behind :meth:`windowed_stats`.

        ``kind`` is a :class:`SessionCounters` counter name (``hits``,
        ``misses``, ``coalesced``, ``semantic_hits``), ``batch_saved``, or
        ``semantic_probes``; ``tokens`` is the saved amount for hit-like
        kinds and the charged amount for misses.  ``session_id`` tags the
        event with the caller so :meth:`windowed_stats` can answer for one
        session as well as service-wide.

        Events land in the shared :class:`~repro.obs.metrics.EventLog`
        (one lock, one retention policy, ``perf_counter`` stamps) and are
        mirrored into cumulative registry counters under ``gateway.*``.
        """
        self.events.append(kind, count=requests, value=tokens,
                           session_id=session_id)
        self.metrics.counter(f"gateway.{kind}").inc(requests)
        if tokens:
            self.metrics.counter(f"gateway.{kind}_tokens").inc(tokens)

    def windowed_stats(self, seconds: float = 60.0,
                       session_id: Optional[str] = None) -> Dict[str, Any]:
        """Rolling-window counters and rates over the last ``seconds``.

        The cumulative :meth:`stats`/:meth:`flat_stats` counters answer
        "what has this service done since it started"; this answers "what is
        it doing *right now*" — the view a long-running service's operators
        watch.  Events older than the window (or beyond the bounded event
        log) are excluded.  With ``session_id`` the window is scoped to the
        events that session's calls produced (the multi-tenant quota-tuning
        view); the default is service-wide.
        """
        seconds = max(0.0, float(seconds))
        totals = {"hits": 0, "misses": 0, "coalesced": 0, "semantic_hits": 0}
        tokens_saved = tokens_charged = batch_tokens_saved = 0
        semantic_probes = 0
        for _stamp, kind, requests, tokens, _session in \
                self.events.window(seconds, session_id=session_id):
            if kind == "misses":
                totals["misses"] += requests
                tokens_charged += tokens
            elif kind == "batch_saved":
                batch_tokens_saved += tokens
            elif kind == "semantic_probes":
                semantic_probes += requests
            elif kind in totals:
                totals[kind] += requests
                tokens_saved += tokens
        request_count = sum(totals.values())
        rate = 1.0 / seconds if seconds > 0 else 0.0
        payload: Dict[str, Any] = {
            "window_s": seconds,
            "requests": request_count,
            **totals,
            "tokens_saved": tokens_saved,
            "tokens_charged": tokens_charged,
            "batch_tokens_saved": batch_tokens_saved,
            "semantic_probes": semantic_probes,
            "requests_per_s": round(request_count * rate, 3),
            "tokens_charged_per_s": round(tokens_charged * rate, 3),
        }
        if session_id is not None:
            payload["session_id"] = session_id
        return payload

    def session_counters(self, session_id: str) -> Optional[Dict[str, int]]:
        """One tracked session's cumulative counters, or None if unknown.

        Read-only: unlike :meth:`client` this never mints (or LRU-bumps) a
        client entry, so observers can poll arbitrary ids without growing
        the registry.
        """
        with self._clients_lock:
            client = self._clients.get(session_id)
            return None if client is None else client.counters.as_dict()

    def stats(self) -> Dict[str, Dict[str, Any]]:
        """Nested counters from every tier plus the per-session rollup."""
        with self._clients_lock:
            sessions = {sid: c.counters.as_dict() for sid, c in self._clients.items()}
        payload: Dict[str, Dict[str, Any]] = {
            "cache": self.cache.as_dict(),
            "coalescing": self.coalescer.stats.as_dict(),
            "batching": self.batcher.stats.as_dict(),
            "semantic": self.semantic.as_dict(),
            "admission": self.admission.as_dict(),
            "sessions": sessions,
        }
        if self.store is not None:
            payload["persistence"] = self.store.stats.as_dict()
        return payload

    def flat_stats(self) -> Dict[str, Any]:
        """The headline counters as one flat dict (CLI / response surface)."""
        stats = self.stats()
        return {
            "cache_hits": stats["cache"]["hits"],
            "cache_misses": stats["cache"]["misses"],
            "cache_entries": stats["cache"]["entries"],
            "evictions": stats["cache"]["evictions"],
            "coalesced": stats["coalescing"]["coalesced"],
            "batches": stats["batching"]["batches"],
            "batched_calls": stats["batching"]["batched_calls"],
            "batch_token_savings": stats["batching"]["token_savings"],
            "semantic_hits": stats["semantic"]["near_hits"],
            "semantic_entries": stats["semantic"]["entries"],
            "semantic_mode": stats["semantic"]["mode"],
            # ANN health: how spread the signature index is and how much
            # probing lookups are doing (occupancy skew => raise planes,
            # recall misses => raise probes).
            "ann_buckets": stats["semantic"]["ann"]["buckets"],
            "ann_max_bucket": stats["semantic"]["ann"]["max_bucket"],
            "ann_probes": stats["semantic"]["ann"]["probes"],
            # Avoided-call savings only, so this reconciles with the sum of
            # per-session tokens_saved; the batching *discount* on executed
            # calls is its own key (batch_token_savings), mirroring the
            # per-session batch_tokens_saved counter.
            "tokens_saved": (stats["cache"]["tokens_saved"]
                             + stats["coalescing"]["tokens_saved"]
                             + stats["semantic"]["tokens_saved"]),
            "peak_concurrency": stats["admission"]["peak_concurrency"],
            "quota_rejections": stats["admission"]["rejections"],
        }

    def describe(self) -> str:
        """A short human-readable summary for operators."""
        flat = self.flat_stats()
        return ("model gateway: "
                + ", ".join(f"{k}={v}" for k, v in flat.items()))

    def clear(self, volatile_only: bool = False) -> int:
        """Drop cached results; counters are kept.  Returns entries dropped.

        ``volatile_only=True`` is the corpus-reload mode: only exact-cache
        entries keyed on a URI-addressed argument (poster images — URIs
        collide across corpora) are dropped, while purely content-keyed
        entries (text payloads hash their own content) survive.  The
        semantic tier is dropped — entries *and* their LSH index slots, in
        lockstep — on every clear: now that the tier is on by default, its
        candidate term lists (extracted from corpus rows) must not outlive
        the corpus they were measured against, and a stale index entry
        pointing at a dropped answer would be a correctness hole.

        With a persistent store attached, a full clear wipes the store too
        (clear-through), while the corpus-reload clear rebuilds the
        semantic tier from its persisted entries afterwards — a persisted
        answer carries its exact term sets in its signature, so unlike the
        in-memory candidate lists it cannot go stale across corpora.
        """
        dropped = self.cache.clear(volatile_only=volatile_only)
        self.semantic.clear()
        if self.store is not None:
            if volatile_only:
                if self.config.enable_semantic:
                    self.semantic.restore_persisted()
            else:
                self.store.clear()
        return dropped

    def close(self) -> None:
        """Flush and release the persistent cache store, if any (idempotent).

        Backends write synchronously (atomic file replace / per-put SQLite
        commit), so close only has to release resources — but a SQLite
        connection left open on shutdown is exactly the kind of leak a
        long-running sharded deployment cannot afford.
        """
        if self.store is not None:
            self.store.close()

"""Vectorized gateway access: one homogeneous batch of model requests.

The micro-batcher (:mod:`repro.gateway.batching`) only forms batches when
*concurrent* sessions' calls collide inside the batch window.  The hot
single-session loops — a per-row FAO body scoring every film, the view
populator extracting a scene graph per poster — used to issue those same
batchable calls serially and pay full serial price.  The
:class:`GatewayBatchClient` is their front door: it takes a *column vector*
of same-method requests from one session and answers it with at most one
model invocation per chunk:

1. every member is looked up in the shared exact cache individually, so a
   batch that partially overlaps earlier traffic only executes its misses;
2. the misses execute as **one** :class:`~repro.models.cost.BatchedModelCall`
   per ``max_batch`` chunk through :func:`repro.models.batching.plan_batch`
   (one admission slot per chunk, in-batch dedup of identical members,
   sub-linear token price: ``max(setup) + sum(marginal)``);
3. every computed member is inserted back into the shared cache, so
   single-session batches and cross-session micro-batches feed the same
   cache — and the same :class:`~repro.gateway.batching.BatchStats`.

Accounting matches the serial funnel exactly: hits are free and tallied as
``tokens_saved``, executed members charge the session's own meter (one
batched ledger record per chunk) and the admission spend ledger, and the
sub-linear discount lands in ``batch_tokens_saved``.

:func:`batch_route` is the entry point the model proxies and raw models
share: routed models dispatch through the session's gateway client, direct
(un-routed) suites fall back to :func:`repro.models.batching.run_model_batch`
so the vectorized FAO bodies behave identically either way.
"""

from __future__ import annotations

import copy
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.gateway.fingerprint import (
    canonicalize,
    contains_uri,
    lexicon_fingerprint_of,
    request_key_from_canonical,
    semantic_group,
)
from repro.gateway.semantic import term_signature
from repro.models.batching import BatchMember, plan_batch, run_model_batch
from repro.obs.trace import record_span, span as obs_span
from repro.sched.cancel import check_current_cancel

#: One logical call: ``(positional args, keyword args)``.
BatchCall = Tuple[Tuple[Any, ...], Dict[str, Any]]


class GatewayBatchClient:
    """One session's vectorized handle on the shared gateway."""

    #: Bound on the per-session ``batch_sizes`` audit list; consumers (the
    #: engine's per-operator records) only ever read recent suffixes.
    MAX_RECORDED_SIZES = 4096

    def __init__(self, client):
        self._client = client

    def invoke(self, model: Any, method: str, calls: Sequence[BatchCall], *,
               semantic_terms_of: Optional[Callable[..., Any]] = None
               ) -> List[Any]:
        """Answer a homogeneous batch of calls on one (un-routed) model.

        Exact-cache hits are answered per member; the misses execute as one
        batched invocation per chunk and populate the cache.  Results are
        element-wise identical to serial execution, in call order.  A member
        failure propagates after the members that did execute are billed —
        exactly as a serial loop would have paid for the calls before the
        faulty one.

        ``semantic_terms_of(args, kwargs)`` marks members eligible for the
        semantic near-match tier (:mod:`repro.gateway.semantic`): when the
        tier is enabled, every exact-cache miss is first offered to the
        tier's ANN/linear signature lookup — near-hits are served without
        executing, exactly as the serial funnel would, and only the
        remaining true misses execute as batched chunks (whose results are
        then stored back under their signatures).  The tier and the batch
        discount compose instead of excluding each other.
        """
        client = self._client
        gateway = client.gateway
        cfg = gateway.config
        if not calls:
            return []
        semantic_active = (cfg.enable_semantic and cfg.enable_cache
                           and semantic_terms_of is not None)
        if not cfg.enable_batching or len(calls) == 1:
            # Serial funnel: exact per-call semantics, full tier stack.
            return [client.invoke(
                model, method, tuple(args), dict(kwargs), batchable=True,
                semantic_terms=(semantic_terms_of(tuple(args), dict(kwargs))
                                if semantic_active else None))
                for args, kwargs in calls]

        model_name = getattr(model, "name", type(model).__name__)
        lexicon_fp = lexicon_fingerprint_of(model)
        results: List[Any] = [None] * len(calls)
        # Misses grouped by key, in first-occurrence order: duplicates must
        # land in the same chunk as their representative so in-batch dedup
        # (not a re-execution in a later chunk) answers them.  Each entry is
        # (call index, key, volatile, member, semantic info) — the last is
        # the (group, vector, signature) triple to store the representative's
        # computed answer under, or None for duplicates/ineligible members.
        pending: "OrderedDict[Any, List[Tuple[int, Any, bool, BatchMember, Any]]]" \
            = OrderedDict()
        # Cache-served members of this vectorized call aggregate into one
        # ``model`` span per outcome (mirroring the batched-chunk span,
        # which also covers many members) — a span per hit member would
        # dominate tracing cost on hot all-hit batches.
        hit_members = hit_tokens = near_members = near_tokens = 0
        for index, (args, kwargs) in enumerate(calls):
            args, kwargs = tuple(args), dict(kwargs)
            # The purpose tag labels cost records, never partitions results.
            keyed = {k: v for k, v in kwargs.items() if k != "purpose"}
            canonical_args = canonicalize(args)
            canonical_kwargs = canonicalize(keyed)
            key = request_key_from_canonical(model_name, method, canonical_args,
                                             canonical_kwargs, lexicon_fp)
            semantic_info = None
            if key not in pending:
                if cfg.enable_cache:
                    entry = gateway.cache.get(key)
                    if entry is not None:
                        client.counters.hits += 1
                        client.counters.tokens_saved += entry.token_cost
                        gateway.note_event("hits", 1, entry.token_cost,
                                           client.session_id)
                        hit_members += 1
                        hit_tokens += entry.token_cost
                        results[index] = entry.result
                        continue
                if semantic_active:
                    # Tier 2, per member: a near-identical already-answered
                    # signature serves this member without executing it.
                    group = semantic_group(model_name, method,
                                           canonical_kwargs, lexicon_fp)
                    signature = term_signature(*semantic_terms_of(args, kwargs))
                    vector = gateway.semantic.embed_signature(signature)
                    near, probes = gateway.semantic.search(group, vector,
                                                           signature)
                    gateway.note_event("semantic_probes", probes, 0,
                                       client.session_id)
                    if near is not None:
                        client.counters.semantic_hits += 1
                        client.counters.tokens_saved += near.token_cost
                        gateway.note_event("semantic_hits", 1, near.token_cost,
                                           client.session_id)
                        near_members += 1
                        near_tokens += near.token_cost
                        results[index] = near.result
                        continue
                    semantic_info = (group, vector, signature)
            pending.setdefault(key, []).append(
                (index, key,
                 contains_uri(canonical_args) or contains_uri(canonical_kwargs),
                 BatchMember(model=model, method=method,
                             args=args, kwargs=kwargs, key=key),
                 semantic_info))

        if hit_members:
            record_span(f"{model_name}.{method}", kind="model",
                        model=model_name, method=method, outcome="exact-hit",
                        members=hit_members, tokens_saved=hit_tokens)
        if near_members:
            record_span(f"{model_name}.{method}", kind="model",
                        model=model_name, method=method, outcome="semantic-hit",
                        members=near_members, tokens_saved=near_tokens)

        kind = f"{model_name}.{method}"
        meter = getattr(model, "cost_meter", None)
        chunk_size = gateway.batcher.max_batch
        # Pack whole key-groups into chunks (a group never straddles a
        # boundary; an oversized group still dedups to one execution).
        chunks: List[List[Tuple[int, Any, bool, BatchMember, Any]]] = []
        current: List[Tuple[int, Any, bool, BatchMember, Any]] = []
        for group in pending.values():
            if current and len(current) + len(group) > chunk_size:
                chunks.append(current)
                current = []
            current.extend(group)
        if current:
            chunks.append(current)
        # Members an *other* session is already executing: (index, slot).
        # Waited on only after every own chunk has executed and published —
        # two sessions batch-following each other therefore always make
        # progress (each completes its own leaderships before waiting).
        follower_waits: List[Tuple[int, Any]] = []
        for chunk in chunks:
            # Cancellation and quota are enforced per chunk, mirroring the
            # serial funnel's per-call checks: a cancelled (deadline-lapsed)
            # request stops before the next chunk, and an over-quota tenant
            # is refused, overshooting by at most one batch.
            check_current_cancel()
            if not client.quota_exempt:
                gateway.admission.precheck(client.tenant_id)

            # Tier 3 per member: lead each distinct miss in the in-flight
            # table (so concurrent serial callers — and other batches —
            # coalesce onto this execution); members already in flight
            # elsewhere leave the chunk and are waited on at the end.
            executing = []            # (index, key, volatile, member, sem info)
            led_slots: Dict[Any, Any] = {}
            for entry in chunk:
                key = entry[1]
                if cfg.enable_coalescing and key not in led_slots:
                    leader, slot = gateway.coalescer.begin(key)
                    if not leader:
                        follower_waits.append((entry[0], slot))
                        continue
                    led_slots[key] = slot
                executing.append(entry)
            if not executing:
                continue

            # One ``model`` span per executed chunk, on this session's own
            # trace — micro-batch membership is caller-side, so every
            # participating session records the chunk it waited on.
            with obs_span(f"{model_name}.{method}", kind="model",
                          model=model_name, method=method) as chunk_sp:
                try:
                    with gateway.admission.slot():
                        plan = plan_batch(
                            [member for _, _, _, member, _ in executing])
                except BaseException as error:
                    for slot in led_slots.values():
                        gateway.coalescer.fail(slot, error)
                    raise

                # Bill the whole chunk as one BatchedModelCall on the
                # session's own meter (the raw model shares it), sub-linearly
                # priced.  A chunk whose members all failed executed nothing:
                # no batch is recorded anywhere (the errors still propagate
                # below).
                if plan.size:
                    if meter is not None:
                        meter.record_batched(
                            model_name, executing[0][3].purpose,
                            plan.prompt_tokens, plan.completion_tokens,
                            batch_size=plan.size, members=plan.size,
                            serial_tokens=plan.serial_tokens,
                            latency_s=plan.latency_s)
                    client.counters.misses += plan.size
                    client.counters.tokens_charged += plan.total_tokens
                    client.counters.batch_calls += 1
                    client.counters.batch_sizes.append(plan.size)
                    if len(client.counters.batch_sizes) > self.MAX_RECORDED_SIZES:
                        # Long-lived clients (the service's corpus loader)
                        # must not grow this forever; callers read recent
                        # suffixes.
                        del client.counters.batch_sizes[:-self.MAX_RECORDED_SIZES // 2]
                    if plan.tokens_saved:
                        client.counters.batch_tokens_saved += plan.tokens_saved
                    gateway.admission.charge(client.tenant_id, plan.total_tokens)
                    gateway.batcher.note_external_batch(kind, plan.size,
                                                        plan.tokens_saved)
                    gateway.note_event("misses", plan.size, plan.total_tokens,
                                       client.session_id)
                    if plan.tokens_saved:
                        gateway.note_event("batch_saved", 0, plan.tokens_saved,
                                           client.session_id)
                    chunk_sp.tag(outcome="batched-chunk",
                                 batch_size=plan.size,
                                 tokens=plan.total_tokens,
                                 batch_tokens_saved=plan.tokens_saved)

                # Publish every outcome — results to the caller,
                # representatives to the cache and the in-flight followers.
                # The slot completion lives in a finally so a failed cache
                # insert can never strand a follower mid-wait.
                first_error = None
                published = set()
                try:
                    for (index, key, volatile, _member, semantic_info), outcome \
                            in zip(executing, plan.outcomes):
                        if outcome.error is not None:
                            first_error = first_error or outcome.error
                            slot = led_slots.pop(key, None)
                            if slot is not None:
                                gateway.coalescer.fail(slot, outcome.error)
                            continue
                        results[index] = outcome.result
                        if key in published:
                            continue
                        published.add(key)
                        if cfg.enable_cache:
                            gateway.cache.note_miss()
                            gateway.cache.put(key, outcome.result,
                                              outcome.charged_tokens,
                                              volatile=volatile)
                        if semantic_info is not None:
                            # Store the computed answer under its signature so
                            # later near-identical vectors (or serial calls)
                            # reuse it — mirroring the serial funnel's put.
                            group, vector, signature = semantic_info
                            gateway.semantic.put(group, vector, signature,
                                                 outcome.result,
                                                 outcome.charged_tokens)
                        slot = led_slots.pop(key, None)
                        if slot is not None:
                            gateway.coalescer.complete(slot, outcome.result,
                                                       outcome.charged_tokens)
                finally:
                    # Anything still led here hit an infrastructure failure
                    # (e.g. the cache insert raised): release its followers.
                    for key, slot in led_slots.items():
                        outcome = next(
                            (o for (i, k, v, m, s), o in zip(executing,
                                                             plan.outcomes)
                             if k == key and o.error is None), None)
                        if outcome is not None:
                            gateway.coalescer.complete(slot, outcome.result,
                                                       outcome.charged_tokens)
                        else:
                            gateway.coalescer.fail(
                                slot, first_error
                                or RuntimeError("batched member never executed"))
                if first_error is not None:
                    raise first_error

        # Collect members another session computed while this batch ran.
        # Each wait is its own ``model`` span on *this* session's trace, so
        # cross-session coalescing attributes to every follower's query.
        for index, slot in follower_waits:
            with obs_span(f"{model_name}.{method}", kind="model",
                          model=model_name, method=method) as fsp:
                result, token_cost = gateway.coalescer.wait(slot)
                client.counters.coalesced += 1
                client.counters.tokens_saved += token_cost
                gateway.note_event("coalesced", 1, token_cost,
                                   client.session_id)
                fsp.tag(outcome="coalesced-follower", tokens_saved=token_cost)
            results[index] = copy.deepcopy(result)
        return results


def batch_route(model: Any, method: str, calls: Sequence[BatchCall],
                purpose: Optional[str] = None) -> List[Any]:
    """Run a homogeneous batch on a possibly-routed model.

    Gateway-proxied models (session suites) go through the shared cache and
    batch accounting via :class:`GatewayBatchClient`; direct models execute
    the same sub-linear batch plan on their own meter.  Either way the
    results are element-wise identical to a serial loop.
    """
    if getattr(model, "__gateway_proxy__", False):
        return GatewayBatchClient(model._client).invoke(model.wrapped, method,
                                                        calls)
    return run_model_batch(model, method, calls, purpose=purpose)

"""Compact request fingerprints for the model gateway.

Every model call routed through the gateway is identified by a fixed-width
key — (model kind digest, payload digest), two 64-bit integers — rather than
by the raw request payload.  Keeping the lookup keys this compact is what
makes the shared cache and the in-flight table cheap at high request rates:
a lookup is one dict probe over 16 bytes of key material, in the spirit of
memory-efficient high-rate lookup structures such as Othello hashing and
SHIP (see PAPERS.md), instead of hashing kilobytes of prompt text on every
probe.

The payload digest covers:

* the model's configured identity (its ``name``, which encodes family and
  variant, e.g. ``vlm:sim-scene-graph``),
* the method being invoked,
* every positional and keyword argument, canonicalized (images collapse to
  their URI — the corpus is content-addressed by URI within one service —
  numpy arrays to a digest of their bytes, dicts to sorted item tuples), and
* the calling suite's lexicon fingerprint for lexicon-grounded models, so
  sessions whose lexicons diverged (clarifications!) never share results.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.utils.seed import stable_hash

#: The gateway cache key: (kind digest, payload digest), 64 bits each.
RequestKey = Tuple[int, int]


def canonicalize(value: Any) -> Any:
    """Reduce an argument to a compact, stable, hashable structure.

    The output only needs a stable ``repr`` (``stable_hash`` consumes it);
    equality of canonical forms must imply equality of the original inputs
    for every argument type the simulated models accept.
    """
    if value is None or isinstance(value, (bool, int, float)):
        return value
    if isinstance(value, str):
        # Long prompts are digested so keys stay small; short strings are
        # kept verbatim (cheaper than hashing, and most args are terms).
        return value if len(value) <= 64 else ("#s", len(value), stable_hash(value))
    if isinstance(value, bytes):
        return ("#b", len(value), stable_hash(value))
    uri = getattr(value, "uri", None)
    if isinstance(uri, str):
        # Synthetic images (and anything else content-addressed by URI).
        return ("#uri", type(value).__name__, uri)
    if isinstance(value, dict):
        return tuple((canonicalize(k), canonicalize(v))
                     for k, v in sorted(value.items(), key=lambda kv: repr(kv[0])))
    if isinstance(value, (list, tuple)):
        return tuple(canonicalize(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted((canonicalize(v) for v in value), key=repr))
    if hasattr(value, "tobytes"):  # numpy arrays / scalars
        try:
            return ("#a", getattr(value, "shape", ()), stable_hash(value.tobytes()))
        except Exception:  # noqa: BLE001 - fall through to repr
            pass
    return repr(value)


def request_key(model_name: str, method: str, args: Tuple[Any, ...],
                kwargs: Optional[Dict[str, Any]] = None,
                lexicon_fingerprint: str = "") -> RequestKey:
    """The compact cache/coalescing key for one model invocation."""
    return request_key_from_canonical(model_name, method, canonicalize(args),
                                      canonicalize(kwargs or {}),
                                      lexicon_fingerprint)


def request_key_from_canonical(model_name: str, method: str, canonical_args: Any,
                               canonical_kwargs: Any,
                               lexicon_fingerprint: str = "") -> RequestKey:
    """The request key over already-canonicalized args/kwargs.

    Callers that need the canonical forms for more than hashing (the gateway
    inspects them for URI markers, the batch client keys many members at
    once) canonicalize once and build the key from the result.
    """
    kind_digest = stable_hash(model_name, method)
    payload_digest = stable_hash(canonical_args, canonical_kwargs,
                                 lexicon_fingerprint)
    return (kind_digest, payload_digest)


def contains_uri(canonical: Any) -> bool:
    """Whether a canonical form embeds a URI-addressed argument.

    URI-keyed requests (images, anything content-addressed by location) are
    only valid within one loaded corpus: two corpora may both contain
    ``file://posters/foo.png`` with different pixels, so cached results keyed
    on a URI must be dropped on corpus reload, while purely text-keyed
    entries (the text itself is the content) survive.
    """
    if isinstance(canonical, tuple):
        if len(canonical) == 3 and canonical[0] == "#uri":
            return True
        return any(contains_uri(item) for item in canonical)
    return False


def semantic_group(model_name: str, method: str, canonical_kwargs: Any,
                   lexicon_fingerprint: str = "") -> Tuple[Any, ...]:
    """The semantic tier's grouping key for one predicate request.

    Near-match candidates must share model identity, method, lexicon
    fingerprint, and every non-purpose keyword argument (``match_fraction``'s
    ``threshold=`` changes the answer, so it partitions the signature
    space).  Both the serial funnel and the vectorized batch client build
    their group keys here so the two paths can never diverge on what
    "same request family" means.
    """
    return (model_name, method, lexicon_fingerprint, canonical_kwargs)


def lexicon_fingerprint_of(model: Any) -> str:
    """The (version-cached) lexicon fingerprint of a lexicon-grounded model.

    Models without a lexicon (detector, OCR) contribute an empty string.
    ``Lexicon.fingerprint`` caches per mutation version, so this is a couple
    of attribute reads per call rather than a digest walk.
    """
    lexicon = getattr(model, "lexicon", None)
    if lexicon is None:
        return ""
    return lexicon.fingerprint()

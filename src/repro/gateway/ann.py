"""Locality-sensitive hashing (LSH) index for the semantic near-match tier.

The semantic tier (:mod:`repro.gateway.semantic`) keys answered predicate
requests by an embedding of their term signature and serves a stored answer
when a new request's signature clears a cosine threshold.  The original
implementation scanned every stored vector in the request's group linearly —
fine for a toy corpus, quadratic pain at service scale.  This module gives
the tier the sublinear shape the related work applies to large key spaces
(SHIP's prefix-characteristic hashing, Othello's memory-efficient lookup
structures — see PAPERS.md): hash each signature vector into a small bucket
key and only scan the handful of vectors sharing (or neighbouring) that
bucket.

**Random-hyperplane signatures.**  ``planes`` fixed random hyperplanes (a
seeded Gaussian matrix, identical across runs) cut the embedding space into
``2**planes`` cells; a vector's bucket key is the bitmask of which side of
each hyperplane it falls on.  Two vectors with cosine similarity ``s``
disagree on one plane with probability ``acos(s)/pi`` — at the tier's 0.97+
thresholds that is a few percent per plane, so near-identical signatures
almost always share a bucket.

**Multi-probe.**  The residual risk is a near-match sitting just across one
hyperplane.  Rather than doubling the table count (classic L-table LSH),
the index probes *near* buckets: the query's ``probes`` lowest-margin bits
(the hyperplanes the vector is closest to) are flipped — singly, then in
pairs — and those neighbouring buckets are scanned too.  Lookup cost is
``O(planes · dims)`` for the hash plus the occupancy of ``1 + probes``
buckets, independent of the total entry count.

The index stores whatever entry objects the caller hands it (the semantic
cache stores its :class:`~repro.gateway.semantic.SemanticEntry` values) and
never copies vectors.  It is **not** internally locked: the owning cache
serializes access under its own mutex, exactly as it does for its entry
store, so index and store can never diverge mid-operation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

#: Seed for the hyperplane matrix: fixed so bucket keys are stable across
#: runs and across index instances of the same geometry (an index rebuilt
#: after a restart re-derives identical buckets for identical vectors).
PLANE_SEED = 0x5EED


@dataclass
class AnnStats:
    """Counters the index keeps about its own behaviour."""

    lookups: int = 0           # candidate scans issued
    probes: int = 0            # buckets probed across all lookups
    candidates: int = 0        # entries handed back for exact re-scoring
    inserts: int = 0
    removals: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"lookups": self.lookups, "probes": self.probes,
                "candidates": self.candidates, "inserts": self.inserts,
                "removals": self.removals}


class LSHIndex:
    """A multi-probe random-hyperplane LSH index over grouped vectors.

    Entries are partitioned by an opaque ``group`` key first (the semantic
    tier groups by model/method/lexicon/kwargs — vectors from different
    groups must never meet), then bucketed by their hyperplane bitmask.
    """

    def __init__(self, planes: int = 16, probes: int = 8,
                 dimensions: Optional[int] = None):
        if not 1 <= planes <= 64:
            raise ValueError("planes must be in [1, 64]")
        if probes < 0:
            raise ValueError("probes must be non-negative")
        self.planes = planes
        self.probes = probes
        self._matrix: Optional[np.ndarray] = None
        # group -> bucket bitmask -> entries, insertion-ordered.
        self._tables: Dict[Any, Dict[int, List[Any]]] = {}
        self._size = 0
        self.stats = AnnStats()
        if dimensions is not None:
            self._ensure_matrix(dimensions)

    def __len__(self) -> int:
        return self._size

    # -- hashing ------------------------------------------------------------------
    def _ensure_matrix(self, dimensions: int) -> np.ndarray:
        if self._matrix is not None and self._matrix.shape[1] != dimensions:
            if self._size:
                raise ValueError(
                    f"vector dimensionality changed: index holds entries "
                    f"hashed for {self._matrix.shape[1]} dims, got {dimensions}")
            # Empty index: re-derive the planes for the new geometry (the
            # eager pre-sizing from the embedder width is just a warm-up).
            self._matrix = None
        if self._matrix is None:
            rng = np.random.default_rng(PLANE_SEED)
            self._matrix = rng.standard_normal((self.planes, dimensions))
        return self._matrix

    def _margins(self, vector: np.ndarray) -> np.ndarray:
        matrix = self._ensure_matrix(int(np.asarray(vector).shape[-1]))
        return matrix @ np.asarray(vector, dtype=float)

    def key_of(self, vector: np.ndarray) -> int:
        """The bucket bitmask of one vector (which side of each plane)."""
        return self._pack(self._margins(vector))

    @staticmethod
    def _pack(margins: np.ndarray) -> int:
        bits = 0
        for index, margin in enumerate(margins):
            if margin >= 0.0:
                bits |= 1 << index
        return bits

    def probe_sequence(self, vector: np.ndarray) -> Iterator[int]:
        """Bucket keys to scan for ``vector``, nearest-first.

        The exact bucket comes first, then the ``probes`` most-likely
        neighbours: buckets reached by flipping the lowest-|margin| bits
        (the hyperplanes the vector sits closest to), singly in ascending
        margin order, then in pairs ordered by combined margin rank.
        """
        margins = self._margins(vector)
        home = self._pack(margins)
        yield home
        if not self.probes:
            return
        order = [int(i) for i in np.argsort(np.abs(margins))]
        emitted = 0
        for index in order:
            if emitted >= self.probes:
                return
            yield home ^ (1 << index)
            emitted += 1
        for first, second in itertools.combinations(order, 2):
            if emitted >= self.probes:
                return
            yield home ^ (1 << first) ^ (1 << second)
            emitted += 1

    # -- maintenance --------------------------------------------------------------
    def add(self, group: Any, vector: np.ndarray, entry: Any) -> None:
        """Index one entry under its group and bucket."""
        bucket = self.key_of(vector)
        self._tables.setdefault(group, {}).setdefault(bucket, []).append(entry)
        self._size += 1
        self.stats.inserts += 1

    def remove(self, group: Any, vector: np.ndarray, entry: Any) -> bool:
        """Drop one indexed entry (identity match); True when found."""
        buckets = self._tables.get(group)
        if not buckets:
            return False
        bucket = self.key_of(vector)
        entries = buckets.get(bucket)
        if not entries:
            return False
        for position, candidate in enumerate(entries):
            if candidate is entry:
                del entries[position]
                self._size -= 1
                self.stats.removals += 1
                if not entries:
                    del buckets[bucket]
                if not buckets:
                    del self._tables[group]
                return True
        return False

    def clear(self) -> None:
        """Drop every indexed entry (the plane matrix is kept)."""
        self._tables.clear()
        self._size = 0

    # -- lookup -------------------------------------------------------------------
    def candidates(self, group: Any, vector: np.ndarray) -> List[Any]:
        """Entries worth exact re-scoring for ``vector``, probe order.

        Scans the home bucket plus up to ``probes`` near buckets within the
        group; everything returned still goes through the caller's exact
        cosine check, so the index can only *restrict* the candidate set a
        linear scan would have considered — never invent a match.
        """
        self.stats.lookups += 1
        buckets = self._tables.get(group)
        if not buckets:
            # The probe budget was spent on nothing: an empty group is one
            # dictionary miss, not `probes` of them.
            self.stats.probes += 1
            return []
        found: List[Any] = []
        for bucket in self.probe_sequence(vector):
            self.stats.probes += 1
            entries = buckets.get(bucket)
            if entries:
                found.extend(entries)
        self.stats.candidates += len(found)
        return found

    # -- observability ------------------------------------------------------------
    def occupancy(self) -> Dict[str, int]:
        """Bucket occupancy counters for the gateway's stats surface."""
        sizes = [len(entries) for buckets in self._tables.values()
                 for entries in buckets.values()]
        return {
            "entries": self._size,
            "groups": len(self._tables),
            "buckets": len(sizes),
            "max_bucket": max(sizes, default=0),
        }

    def as_dict(self) -> Dict[str, int]:
        payload = self.occupancy()
        payload.update(self.stats.as_dict())
        return payload


def bucket_spread(index: LSHIndex) -> Tuple[int, float]:
    """(bucket count, mean occupancy) — a quick skew probe for benchmarks."""
    occupancy = index.occupancy()
    buckets = occupancy["buckets"]
    mean = occupancy["entries"] / buckets if buckets else 0.0
    return buckets, mean

"""Micro-batching for the batchable model kinds.

Embeddings, entity extraction, and pixel detection are the model kinds a
real serving stack batches: they are cheap per item, high-volume, and their
backends accept many inputs per invocation.  The :class:`MicroBatcher`
groups gateway misses of one kind that arrive within a small window and
executes them as **one batched invocation**: a single admission slot is
taken for the whole batch, the batch leader drains the queue and runs every
member's thunk back-to-back, and each member's result (and token charge —
each thunk charges its own session's meter) is delivered through its future.

With ``window_s == 0`` the batcher is a pure pass-through that still
opportunistically drains whatever queued *while the leader held the slot* —
zero added latency, which is the right default when model latency is not
being simulated.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.gateway.admission import AdmissionController


@dataclass
class _Pending:
    """One queued call: the execution thunk and the future its caller awaits."""

    thunk: Callable[[], Tuple[Any, int]]
    future: "Future[Tuple[Any, int]]"


@dataclass
class BatchStats:
    """Counters for the micro-batching tier."""

    batches: int = 0
    batched_calls: int = 0    # calls that shared a batch with at least one other
    largest_batch: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"batches": self.batches, "batched_calls": self.batched_calls,
                "largest_batch": self.largest_batch}


class MicroBatcher:
    """Groups same-kind calls arriving within ``window_s`` into one invocation."""

    def __init__(self, admission: AdmissionController,
                 window_s: float = 0.0, max_batch: int = 32):
        self._admission = admission
        self.window_s = max(0.0, float(window_s))
        self.max_batch = max(1, int(max_batch))
        self._queues: Dict[str, List[_Pending]] = {}
        self._leaders: Dict[str, bool] = {}
        self._lock = threading.Lock()
        self.stats = BatchStats()

    def submit(self, kind: str,
               thunk: Callable[[], Tuple[Any, int]]) -> "Future[Tuple[Any, int]]":
        """Enqueue one call of ``kind``; leads the batch if nobody else is.

        The returned future resolves to the thunk's ``(result, token_cost)``.
        The leader runs batches *inline* on the calling thread until the
        queue drains, so no background threads are involved and a crash in
        one member only fails that member's future.
        """
        pending = _Pending(thunk=thunk, future=Future())
        with self._lock:
            self._queues.setdefault(kind, []).append(pending)
            lead = not self._leaders.get(kind, False)
            if lead:
                self._leaders[kind] = True
        if lead:
            try:
                while True:
                    self._drain(kind)
                    # Release leadership and re-check the queue under one
                    # lock: a follower that enqueued during the drain is
                    # seen here (loop again); one that enqueues afterwards
                    # finds no leader and leads its own batch.
                    with self._lock:
                        if not self._queues.get(kind):
                            self._leaders[kind] = False
                            break
            except BaseException as error:
                # _drain only raises on infrastructure failure (member
                # exceptions are delivered through their futures); don't
                # strand queued followers without a leader.
                with self._lock:
                    stranded = self._queues.pop(kind, [])
                    self._leaders[kind] = False
                for member in stranded:
                    if not member.future.done():
                        member.future.set_exception(error)
                raise
        return pending.future

    def _drain(self, kind: str) -> None:
        """Run queued calls of one kind in admission-slot-sized batches."""
        if self.window_s > 0:
            time.sleep(self.window_s)
        while True:
            with self._lock:
                queue = self._queues.get(kind, [])
                chunk, self._queues[kind] = queue[:self.max_batch], queue[self.max_batch:]
            if not chunk:
                return
            with self._lock:
                self.stats.batches += 1
                self.stats.largest_batch = max(self.stats.largest_batch, len(chunk))
                if len(chunk) > 1:
                    self.stats.batched_calls += len(chunk)
            try:
                with self._admission.slot():
                    for member in chunk:
                        if member.future.done():  # pragma: no cover - defensive
                            continue
                        try:
                            member.future.set_result(member.thunk())
                        except BaseException as error:  # noqa: BLE001 - delivered to caller
                            member.future.set_exception(error)
            except BaseException as error:
                # The chunk is already dequeued, so submit()'s stranded-
                # follower sweep cannot see it: an infra failure here (e.g.
                # KeyboardInterrupt while blocking on the admission
                # semaphore) must fail the extracted members itself, or
                # their callers hang forever on future.result().
                for member in chunk:
                    if not member.future.done():
                        member.future.set_exception(error)
                raise

"""Micro-batching for the batchable model kinds.

Embeddings, entity extraction, pixel detection, and OCR are the model kinds
a real serving stack batches: they are cheap per item, high-volume, and
their backends accept many inputs per invocation.  The :class:`MicroBatcher`
groups gateway misses of one kind that arrive within a small window and
executes them as **one batched invocation** through
:func:`repro.models.batching.plan_batch`: a single admission slot is taken
for the whole batch, duplicate members share one computation, the batch pays
one shared prompt/setup overhead plus per-member marginal cost (sub-linear
token growth), and each member's session meter is charged its fair share as
a :class:`~repro.models.cost.BatchedModelCall`.

The batch window only sleeps when the leader is *alone* — when followers are
already queued there is a batch to run, and waiting a further window would
add pure latency.  Each call therefore waits at most one window beyond its
execution time.  With ``window_s == 0`` the batcher is a pure pass-through
that still opportunistically batches whatever queued *while the leader held
the slot* — zero added latency, which is the right default when model
latency is not being simulated.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.gateway.admission import AdmissionController
from repro.models.batching import BatchMember, metered_call, plan_batch


#: What a member's future resolves to: (result, tokens charged to the
#: member's session, tokens the call would have cost serially).
BatchResult = Tuple[Any, int, int]


@dataclass
class _Pending:
    """One queued call: the member description and the future its caller awaits."""

    member: BatchMember
    future: "Future[BatchResult]"


@dataclass
class KindBatchStats:
    """Batch-size accounting for one batchable kind."""

    batches: int = 0
    batched_calls: int = 0
    largest_batch: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"batches": self.batches, "batched_calls": self.batched_calls,
                "largest_batch": self.largest_batch}


@dataclass
class BatchStats:
    """Counters for the micro-batching tier."""

    batches: int = 0
    batched_calls: int = 0    # calls that shared a batch with at least one other
    largest_batch: int = 0
    token_savings: int = 0    # serial-minus-batched tokens across all batches
    by_kind: Dict[str, KindBatchStats] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {"batches": self.batches, "batched_calls": self.batched_calls,
                "largest_batch": self.largest_batch,
                "token_savings": self.token_savings,
                "by_kind": {kind: stats.as_dict()
                            for kind, stats in sorted(self.by_kind.items())}}


class MicroBatcher:
    """Groups same-kind calls arriving within ``window_s`` into one invocation."""

    def __init__(self, admission: AdmissionController,
                 window_s: float = 0.0, max_batch: int = 32):
        self._admission = admission
        self.window_s = max(0.0, float(window_s))
        self.max_batch = max(1, int(max_batch))
        self._queues: Dict[str, List[_Pending]] = {}
        self._leaders: Dict[str, bool] = {}
        self._lock = threading.Lock()
        self.stats = BatchStats()
        # Collection windows actually slept (one per leadership when
        # window_s > 0); regression tests pin the bounded-latency contract
        # on this instead of wall clocks.
        self.window_sleeps = 0

    def submit(self, kind: str, member: BatchMember) -> "Future[BatchResult]":
        """Enqueue one call of ``kind``; leads the batch if nobody else is.

        The returned future resolves to ``(result, charged, serial)`` token
        accounting included.  The leader runs batches *inline* on the calling
        thread until the queue drains, so no background threads are involved
        and a crash in one member only fails that member's future.
        """
        pending = _Pending(member=member, future=Future())
        with self._lock:
            self._queues.setdefault(kind, []).append(pending)
            lead = not self._leaders.get(kind, False)
            if lead:
                self._leaders[kind] = True
        if lead:
            try:
                # Sleep the collection window **once per leadership**, before
                # the first drain (the satellite bugfix: the old per-drain
                # sleep added a full extra window whenever followers were
                # already queued).  A new leader always starts alone —
                # leadership is only released on an empty queue — so this is
                # exactly the accumulation window, and every call waits at
                # most one window beyond its execution.  Inside the try: an
                # async exception during the sleep must release leadership
                # like any other failure.
                if self.window_s > 0:
                    with self._lock:
                        self.window_sleeps += 1
                    time.sleep(self.window_s)
                while True:
                    self._drain(kind)
                    # Release leadership and re-check the queue under one
                    # lock: a follower that enqueued during the drain is
                    # seen here (loop again); one that enqueues afterwards
                    # finds no leader and leads its own batch.
                    with self._lock:
                        if not self._queues.get(kind):
                            self._leaders[kind] = False
                            break
            except BaseException as error:
                # _drain only raises on infrastructure failure (member
                # exceptions are delivered through their futures); don't
                # strand queued followers without a leader.
                with self._lock:
                    stranded = self._queues.pop(kind, [])
                    self._leaders[kind] = False
                for waiting in stranded:
                    if not waiting.future.done():
                        waiting.future.set_exception(error)
                raise
        return pending.future

    def note_external_batch(self, kind: str, size: int,
                            token_savings: int) -> None:
        """Fold a batch executed outside the window path into the stats.

        The vectorized single-session batch client
        (:class:`~repro.gateway.vectorized.GatewayBatchClient`) executes its
        own chunks but reports them here, so ``BatchStats`` is the one ledger
        covering every batched invocation a gateway made — micro-batched or
        vectorized.
        """
        with self._lock:
            self.stats.batches += 1
            self.stats.largest_batch = max(self.stats.largest_batch, size)
            per_kind = self.stats.by_kind.setdefault(kind, KindBatchStats())
            per_kind.batches += 1
            per_kind.largest_batch = max(per_kind.largest_batch, size)
            if size > 1:
                self.stats.batched_calls += size
                per_kind.batched_calls += size
            self.stats.token_savings += max(0, int(token_savings))

    def _drain(self, kind: str) -> None:
        """Run queued calls of one kind in admission-slot-sized batches."""
        while True:
            with self._lock:
                queue = self._queues.get(kind, [])
                chunk, self._queues[kind] = queue[:self.max_batch], queue[self.max_batch:]
            if not chunk:
                return
            with self._lock:
                self.stats.batches += 1
                self.stats.largest_batch = max(self.stats.largest_batch, len(chunk))
                per_kind = self.stats.by_kind.setdefault(kind, KindBatchStats())
                per_kind.batches += 1
                per_kind.largest_batch = max(per_kind.largest_batch, len(chunk))
                if len(chunk) > 1:
                    self.stats.batched_calls += len(chunk)
                    per_kind.batched_calls += len(chunk)
            try:
                with self._admission.slot():
                    if len(chunk) == 1:
                        self._execute_single(chunk[0])
                    else:
                        self._execute_batch(chunk)
            except BaseException as error:
                # The chunk is already dequeued, so submit()'s stranded-
                # follower sweep cannot see it: an infra failure here (e.g.
                # KeyboardInterrupt while blocking on the admission
                # semaphore) must fail the extracted members itself, or
                # their callers hang forever on future.result().
                for waiting in chunk:
                    if not waiting.future.done():
                        waiting.future.set_exception(error)
                raise

    @staticmethod
    def _execute_single(pending: _Pending) -> None:
        """A chunk of one keeps exact serial semantics and accounting."""
        member = pending.member
        try:
            result, cost = metered_call(member.model, member.method,
                                        member.args, member.kwargs)
            pending.future.set_result((result, cost, cost))
        except BaseException as error:  # noqa: BLE001 - delivered to caller
            pending.future.set_exception(error)

    def _execute_batch(self, chunk: List[_Pending]) -> None:
        """Run one true batched invocation and deliver per-member shares.

        Each member's session meter is charged its fair share of the batch
        price as a single :class:`~repro.models.cost.BatchedModelCall`; the
        shares' synthetic latencies sum to **one** invocation's latency, so
        simulated-latency runs see the batch as one model round trip.
        """
        plan = plan_batch([pending.member for pending in chunk])
        total_saved = 0
        for pending, outcome in zip(chunk, plan.outcomes):
            if outcome.error is not None:
                pending.future.set_exception(outcome.error)
                continue
            meter = getattr(pending.member.model, "cost_meter", None)
            if meter is not None:
                meter.record_batched(
                    getattr(pending.member.model, "name",
                            type(pending.member.model).__name__),
                    pending.member.purpose,
                    outcome.charge_prompt, outcome.charge_completion,
                    batch_size=plan.size, members=1,
                    serial_tokens=outcome.serial_tokens,
                    latency_s=outcome.latency_share_s)
            total_saved += outcome.tokens_saved
            pending.future.set_result(
                (outcome.result, outcome.charged_tokens, outcome.serial_tokens))
        if total_saved:
            with self._lock:
                self.stats.token_savings += total_saved

"""Admission control: per-tenant token quotas and a global concurrency cap.

The gateway is the one place every model call funnels through, so it is the
natural enforcement point for the two production guardrails the ROADMAP's
"heavy traffic" north star needs:

* a **global concurrency limiter** — at most ``max_concurrency`` underlying
  model executions run at once, service-wide (cache hits and coalesced
  followers never take a slot), and
* **per-tenant token quotas** — a tenant that has already charged its
  quota is refused further *misses* (hits stay free: they cost the service
  nothing).  The check runs before execution, so a tenant can overshoot by
  at most one call.

The ledger is keyed by *tenant id*, not session id: a
:class:`~repro.gateway.gateway.SessionGatewayClient` carries both, and its
``tenant_id`` defaults to the session id for callers that never name a
tenant.  Keying by session would let a tenant dodge its quota by simply
re-submitting — every request runs in a fresh throwaway session with a
zeroed ledger — so all of a tenant's sessions now share one ledger entry.
Queueing policy (fairness, priorities, deadlines) lives in
:mod:`repro.sched`; this module stays the token/concurrency authority.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Optional

from repro.errors import SessionQuotaExceededError


class AdmissionController:
    """Semaphore-gated execution slots plus per-tenant spend ledgers."""

    #: LRU bound on tracked per-tenant spend ledgers: unnamed tenants default
    #: to one throwaway session per request, and the ledger must not grow
    #: forever.  Tenants that have exhausted their quota are never evicted —
    #: evicting them would hand an idle-but-blocked tenant a fresh quota
    #: (each entry is just an id + int, so retaining them is cheap);
    #: under-quota idle entries are the ones dropped.  (The historical name
    #: predates the tenant-keyed ledger and is kept for compatibility.)
    MAX_TRACKED_SESSIONS = 4096

    def __init__(self, max_concurrency: int = 16,
                 session_token_quota: Optional[int] = None):
        self.max_concurrency = max(1, int(max_concurrency))
        self.session_token_quota = session_token_quota
        self._semaphore = threading.Semaphore(self.max_concurrency)
        self._lock = threading.Lock()
        self._spent: "OrderedDict[str, int]" = OrderedDict()
        self._active = 0
        self.peak_concurrency = 0
        self.waits = 0          # slot acquisitions that had to block
        self.rejections = 0     # calls refused over quota

    @contextmanager
    def slot(self):
        """Occupy one global execution slot for the duration of a call."""
        if not self._semaphore.acquire(blocking=False):
            with self._lock:
                self.waits += 1
            self._semaphore.acquire()
        with self._lock:
            self._active += 1
            self.peak_concurrency = max(self.peak_concurrency, self._active)
        try:
            yield
        finally:
            with self._lock:
                self._active -= 1
            self._semaphore.release()

    def precheck(self, tenant_id: str) -> None:
        """Refuse the call if the tenant already spent its quota."""
        quota = self.session_token_quota
        if quota is None:
            return
        with self._lock:
            spent = self._spent.get(tenant_id, 0)
            if spent >= quota:
                self.rejections += 1
                raise SessionQuotaExceededError(tenant_id, spent, quota)

    def charge(self, tenant_id: str, tokens: int) -> int:
        """Record tokens a tenant paid; returns its running total."""
        quota = self.session_token_quota
        with self._lock:
            total = self._spent.get(tenant_id, 0) + max(0, int(tokens))
            self._spent[tenant_id] = total
            self._spent.move_to_end(tenant_id)
            if len(self._spent) > self.MAX_TRACKED_SESSIONS:
                # Evict lowest-spend-first among under-quota entries: an
                # unnamed per-request tenant spends once and idles near
                # zero, while a long-lived tenant that is *nearly*
                # exhausted keeps its ledger (evicting it would refresh its
                # quota).  Exhausted entries are never dropped at all.
                overflow = len(self._spent) - self.MAX_TRACKED_SESSIONS
                candidates = sorted(
                    (tid for tid, spent in self._spent.items()
                     if quota is None or spent < quota),
                    key=lambda tid: self._spent[tid])
                for tid in candidates[:overflow]:
                    del self._spent[tid]
                # All-exhausted overflow: keep every ledger — quota
                # correctness outranks the soft bound here.
            return total

    def spent(self, tenant_id: str) -> int:
        """Tokens charged against one tenant so far."""
        with self._lock:
            return self._spent.get(tenant_id, 0)

    def as_dict(self) -> Dict[str, int]:
        with self._lock:
            return {"max_concurrency": self.max_concurrency,
                    "peak_concurrency": self.peak_concurrency,
                    "waits": self.waits,
                    "rejections": self.rejections,
                    "sessions": len(self._spent)}

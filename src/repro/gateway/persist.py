"""Durable storage for the gateway's result caches.

The exact-match cache and the semantic near-match tier are the gateway's
most valuable state — every entry is a model call somebody already paid
for — yet until this module they lived and died with the process.
:class:`GatewayCacheStore` persists both tiers through the same pluggable
:class:`~repro.skills.backends.SkillBackend` interface the skill store
proved out (in-memory, atomic-JSON-file directory, SQLite), so cache
contents survive restarts and can be shared across shared-nothing worker
shards pointed at sibling paths.

What is (and is not) persisted:

* **exact tier** — every *non-volatile* entry (purely content-keyed
  requests: text extraction, embeddings, LLM calls).  Volatile entries are
  keyed on a URI-addressed argument and are only valid for the currently
  loaded corpus, so persisting them would resurrect stale answers after a
  corpus swap; they stay process-local by design.
* **semantic tier** — the (group, signature, result, token cost) tuple of
  every stored predicate answer.  Signature *vectors* are deliberately not
  stored: :meth:`SemanticNearCache.embed_signature` is deterministic (a
  private meter-less embedder), so the LSH index is rebuilt from the
  persisted signatures on startup — cheaper than round-tripping float
  arrays and immune to embedder-width drift.

Results are arbitrary Python values (nested dataclasses, numpy arrays,
tuples), so they travel through a small tagged JSON codec.  A result the
codec cannot represent is *skipped*, not an error: the in-memory cache
still holds it, the store just counts it under ``skipped`` — persistence
is strictly best-effort write-through.
"""

from __future__ import annotations

import base64
import dataclasses
import importlib
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.gateway.fingerprint import RequestKey
from repro.skills.backends import SkillBackend
from repro.utils.seed import stable_hash

#: Tag key marking a codec container; raw results never collide with it
#: because every dict a model returns is itself encoded as a tagged item
#: list.
_TAG = "__kathdb__"

#: Only dataclasses from the reproduction's own modules are reconstructed
#: on decode — a persisted record must never trigger an arbitrary import.
_TRUSTED_MODULE_PREFIX = "repro."


class UnpersistableResult(TypeError):
    """The codec cannot represent this result; keep it process-local."""


# -- the tagged JSON codec ---------------------------------------------------------
def encode_value(value: Any) -> Any:
    """Reduce a model result to a JSON-plain tagged structure.

    Raises :class:`UnpersistableResult` for types the codec does not
    cover; the caller treats that as "do not persist", never as a failure.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, bytes):
        return {_TAG: "bytes", "data": base64.b64encode(value).decode("ascii")}
    if isinstance(value, np.ndarray):
        return {_TAG: "ndarray", "dtype": str(value.dtype),
                "shape": list(value.shape),
                "data": base64.b64encode(np.ascontiguousarray(value).tobytes())
                .decode("ascii")}
    if isinstance(value, np.generic):
        return encode_value(value.item())
    if isinstance(value, (list, tuple)):
        return {_TAG: "tuple" if isinstance(value, tuple) else "list",
                "items": [encode_value(v) for v in value]}
    if isinstance(value, (set, frozenset)):
        return {_TAG: "set", "items": sorted((encode_value(v) for v in value),
                                             key=repr)}
    if isinstance(value, dict):
        return {_TAG: "dict",
                "items": [[encode_value(k), encode_value(v)]
                          for k, v in value.items()]}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        if not cls.__module__.startswith(_TRUSTED_MODULE_PREFIX):
            raise UnpersistableResult(
                f"refusing to persist foreign dataclass {cls.__module__}.{cls.__qualname__}")
        return {_TAG: "dataclass",
                "type": f"{cls.__module__}:{cls.__qualname__}",
                "fields": {f.name: encode_value(getattr(value, f.name))
                           for f in dataclasses.fields(value)}}
    raise UnpersistableResult(f"no codec for {type(value).__name__}")


def decode_value(encoded: Any) -> Any:
    """Invert :func:`encode_value`."""
    if not isinstance(encoded, dict):
        return encoded
    kind = encoded.get(_TAG)
    if kind == "bytes":
        return base64.b64decode(encoded["data"])
    if kind == "ndarray":
        raw = base64.b64decode(encoded["data"])
        return np.frombuffer(raw, dtype=np.dtype(encoded["dtype"])) \
            .reshape(tuple(encoded["shape"])).copy()
    if kind == "list":
        return [decode_value(v) for v in encoded["items"]]
    if kind == "tuple":
        return tuple(decode_value(v) for v in encoded["items"])
    if kind == "set":
        return set(decode_value(v) for v in encoded["items"])
    if kind == "dict":
        return {decode_value(k): decode_value(v) for k, v in encoded["items"]}
    if kind == "dataclass":
        module_name, _, qualname = encoded["type"].partition(":")
        if not module_name.startswith(_TRUSTED_MODULE_PREFIX):
            raise UnpersistableResult(f"untrusted dataclass module {module_name!r}")
        obj: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
        return obj(**{name: decode_value(v)
                      for name, v in encoded["fields"].items()})
    raise UnpersistableResult(f"unknown codec tag {kind!r}")


@dataclasses.dataclass
class StoreStats:
    """Write-through / restore counters for one store."""

    persisted: int = 0       # records written through to the backend
    skipped: int = 0         # results the codec could not represent
    restored: int = 0        # records loaded back into a live cache
    load_errors: int = 0     # undecodable records skipped on load

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class GatewayCacheStore:
    """Write-through persistence for the gateway's exact + semantic tiers.

    One store wraps one :class:`SkillBackend`; exact entries and semantic
    entries share it under distinct key prefixes.  All methods are
    best-effort: backend IO failures and unpersistable results are counted,
    never raised into the serving path.
    """

    EXACT_PREFIX = "gwx:"
    SEMANTIC_PREFIX = "gws:"

    def __init__(self, backend: SkillBackend):
        self.backend = backend
        self.stats = StoreStats()
        self._lock = threading.Lock()
        self._closed = False

    # -- exact tier ---------------------------------------------------------------
    def _exact_key(self, key: RequestKey) -> str:
        return f"{self.EXACT_PREFIX}{key[0]:016x}-{key[1]:016x}"

    def put_exact(self, key: RequestKey, result: Any, token_cost: int) -> bool:
        """Write one exact-cache entry through; False when skipped."""
        try:
            encoded = encode_value(result)
        except UnpersistableResult:
            with self._lock:
                self.stats.skipped += 1
            return False
        record = {"kind": "exact", "key": [int(key[0]), int(key[1])],
                  "result": encoded, "token_cost": max(0, int(token_cost))}
        try:
            self.backend.put(self._exact_key(key), record)
        except OSError:
            with self._lock:
                self.stats.skipped += 1
            return False
        with self._lock:
            self.stats.persisted += 1
        return True

    def load_exact(self, limit: Optional[int] = None
                   ) -> Iterator[Tuple[RequestKey, Any, int]]:
        """Yield persisted ``(key, result, token_cost)`` exact entries."""
        yielded = 0
        for name in self._keys(self.EXACT_PREFIX):
            if limit is not None and yielded >= limit:
                return
            record = self.backend.get(name)
            if not isinstance(record, dict) or record.get("kind") != "exact":
                continue
            try:
                key = record["key"]
                result = decode_value(record["result"])
                token_cost = int(record.get("token_cost", 0))
            except (UnpersistableResult, KeyError, TypeError, ValueError,
                    AttributeError, ImportError):
                with self._lock:
                    self.stats.load_errors += 1
                continue
            with self._lock:
                self.stats.restored += 1
            yielded += 1
            yield (int(key[0]), int(key[1])), result, token_cost

    # -- semantic tier ------------------------------------------------------------
    def put_semantic(self, group: Tuple[Any, ...], signature: str,
                     result: Any, token_cost: int) -> bool:
        """Write one semantic entry through; False when skipped."""
        try:
            encoded_group = encode_value(tuple(group))
            encoded_result = encode_value(result)
        except UnpersistableResult:
            with self._lock:
                self.stats.skipped += 1
            return False
        name = f"{self.SEMANTIC_PREFIX}{stable_hash(group, signature):016x}"
        record = {"kind": "semantic", "group": encoded_group,
                  "signature": signature, "result": encoded_result,
                  "token_cost": max(0, int(token_cost))}
        try:
            self.backend.put(name, record)
        except OSError:
            with self._lock:
                self.stats.skipped += 1
            return False
        with self._lock:
            self.stats.persisted += 1
        return True

    def load_semantic(self) -> List[Tuple[Tuple[Any, ...], str, Any, int]]:
        """All persisted ``(group, signature, result, token_cost)`` entries."""
        loaded: List[Tuple[Tuple[Any, ...], str, Any, int]] = []
        for name in self._keys(self.SEMANTIC_PREFIX):
            record = self.backend.get(name)
            if not isinstance(record, dict) or record.get("kind") != "semantic":
                continue
            try:
                group = decode_value(record["group"])
                signature = record["signature"]
                result = decode_value(record["result"])
                token_cost = int(record.get("token_cost", 0))
            except (UnpersistableResult, KeyError, TypeError, ValueError,
                    AttributeError, ImportError):
                with self._lock:
                    self.stats.load_errors += 1
                continue
            if not isinstance(signature, str):
                with self._lock:
                    self.stats.load_errors += 1
                continue
            with self._lock:
                self.stats.restored += 1
            loaded.append((tuple(group), signature, result, token_cost))
        return loaded

    # -- lifecycle ----------------------------------------------------------------
    def _keys(self, prefix: str) -> List[str]:
        try:
            return [k for k in self.backend.keys() if k.startswith(prefix)]
        except OSError:
            return []

    def clear(self) -> int:
        """Drop every persisted gateway record; returns how many."""
        dropped = 0
        for name in self._keys(self.EXACT_PREFIX) + self._keys(self.SEMANTIC_PREFIX):
            if self.backend.delete(name):
                dropped += 1
        return dropped

    def close(self) -> None:
        """Release the backend (idempotent; safe to call from shutdown)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.backend.close()

    def describe(self) -> str:
        counters = ", ".join(f"{k}={v}" for k, v in self.stats.as_dict().items())
        return f"gateway cache store ({self.backend.kind}): {counters}"

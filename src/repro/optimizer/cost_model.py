"""The unified cost model over FAO implementations.

The cost of a physical operator is dominated by its model calls, so the model
estimates *tokens* (per-row template priors refined by measured profiler
tokens) and converts them to a synthetic latency; relational work contributes
a small per-row constant.  Cardinalities are propagated through the plan with
simple selectivity heuristics -- enough to make predicate pushdown and cheap
variants visibly cheaper, which is all the ablation benchmarks need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.fao.function import GeneratedFunction
from repro.fao.profiler import ProfileResult
from repro.parser.logical_plan import LogicalPlan, LogicalPlanNode
from repro.relational.catalog import Catalog

# Selectivity priors by node family keyword.
_FILTER_SELECTIVITY = 0.5
_FLAG_FILTER_SELECTIVITY = 0.5
_RELATIONAL_FILTER_SELECTIVITY = 0.4
# Synthetic latency per 1000 tokens (seconds); matches the CostMeter scale.
_SECONDS_PER_1K_TOKENS = 0.02
# Relational per-row processing cost (seconds).  Halved when the relational
# core went columnar: pure operators now run over shared column vectors
# instead of materializing a dict per row (see benchmarks/bench_columnar.py).
_SECONDS_PER_ROW = 1e-6


@dataclass
class CostEstimate:
    """Estimated cost of running one implementation at one plan position."""

    tokens: float
    runtime_s: float
    output_cardinality: int

    def total_cost(self, token_weight: float = 1.0, runtime_weight: float = 0.0) -> float:
        """A single scalar for comparisons (token-dominated by default)."""
        return token_weight * self.tokens + runtime_weight * self.runtime_s


class CostModel:
    """Estimates cardinalities and per-operator costs."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._cardinalities: Dict[str, int] = {}

    # -- cardinality propagation ----------------------------------------------------
    def input_cardinality(self, node: LogicalPlanNode) -> int:
        """Estimated rows of the node's primary input."""
        if not node.inputs:
            return 0
        return self.table_cardinality(node.inputs[0])

    def table_cardinality(self, table_name: str) -> int:
        """Estimated rows of a table (catalog stats or propagated estimate)."""
        if table_name in self._cardinalities:
            return self._cardinalities[table_name]
        if self.catalog.has_table(table_name):
            entry = self.catalog.entry(table_name)
            return entry.stats.row_count if entry.stats else len(entry.table)
        return 0

    def record_output_cardinality(self, table_name: str, rows: int) -> None:
        """Remember an (estimated or observed) cardinality for a derived table."""
        self._cardinalities[table_name] = rows

    def estimate_output_cardinality(self, node: LogicalPlanNode, input_rows: int) -> int:
        """Propagate cardinality through one node."""
        name = node.name.lower()
        if name.startswith("filter_"):
            if "flag_column" in node.parameters:
                selectivity = _FLAG_FILTER_SELECTIVITY
            elif "op" in node.parameters:
                selectivity = _RELATIONAL_FILTER_SELECTIVITY
            else:
                selectivity = _FILTER_SELECTIVITY
            return max(1, int(round(input_rows * selectivity)))
        if name.startswith("join_results"):
            other = self.table_cardinality(node.inputs[1]) if len(node.inputs) > 1 else input_rows
            return max(1, min(input_rows, other))
        # Scores, classification, ranking, projection: one output row per input row.
        return input_rows

    # -- cost estimation ---------------------------------------------------------------
    @staticmethod
    def batched_tokens(tokens_per_row: float, setup_tokens: float,
                       rows: int, batch_size: int) -> float:
        """The PR-3 sub-linear batch price at estimation time.

        A serial run pays ``tokens_per_row × rows``; a batched run pays the
        per-call setup once per chunk plus every row's marginal content:
        ``ceil(rows / batch_size) × setup + rows × (tokens_per_row − setup)``
        — the planning-time analogue of ``max(setup) + sum(marginal)``.
        Setup never swallows a row's whole price (at least one token stays
        marginal), mirroring the execution-time cap in
        :func:`repro.models.batching.plan_batch`.
        """
        if rows <= 0:
            return 0.0
        setup = min(max(0.0, setup_tokens), max(0.0, tokens_per_row - 1.0))
        chunks = -(-rows // max(1, batch_size))  # ceil division
        return chunks * setup + rows * (tokens_per_row - setup)

    def estimate(self, node: LogicalPlanNode, function: GeneratedFunction,
                 profile: Optional[ProfileResult] = None,
                 batch_size: int = 0) -> CostEstimate:
        """Estimate the cost of running ``function`` for ``node`` at full scale.

        ``batch_size`` > 1 prices batchable implementations with the
        sub-linear batch formula instead of ``cost_per_row_tokens × rows``,
        so physical choice sees vectorized variants at the bill they will
        actually pay.
        """
        input_rows = self.input_cardinality(node)
        tokens_per_row = function.cost_per_row_tokens
        if profile is not None and profile.success and profile.rows_in > 0:
            tokens_per_row = profile.tokens_per_row
        if function.batchable and batch_size > 1:
            tokens = self.batched_tokens(tokens_per_row,
                                         function.batch_setup_tokens,
                                         input_rows, batch_size)
        else:
            tokens = tokens_per_row * input_rows
        runtime = tokens / 1000.0 * _SECONDS_PER_1K_TOKENS + input_rows * _SECONDS_PER_ROW
        if profile is not None and profile.success and profile.rows_in > 0:
            runtime += (profile.runtime_s / profile.rows_in) * input_rows
        output_rows = self.estimate_output_cardinality(node, input_rows)
        self.record_output_cardinality(node.output, output_rows)
        return CostEstimate(tokens=tokens, runtime_s=runtime, output_cardinality=output_rows)

    def estimate_plan_tokens(self, plan: LogicalPlan,
                             tokens_per_row_by_node: Optional[Dict[str, float]] = None) -> float:
        """Rough token estimate for a whole logical plan (used by rewrites)."""
        total = 0.0
        defaults = tokens_per_row_by_node or {}
        self._cardinalities = {}
        for node in plan.execution_order():
            input_rows = self.input_cardinality(node)
            per_row = defaults.get(node.name, 1.0)
            total += per_row * input_rows
            self.record_output_cardinality(node.output,
                                           self.estimate_output_cardinality(node, input_rows))
        return total

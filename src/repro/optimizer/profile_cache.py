"""Offline profiling cache.

The paper notes that profiling function implementations on the fly slows query
planning down and asks how the effort could be reduced "e.g., through offline
profiling".  The :class:`ProfileCache` answers that question's engineering
half: per-(family, variant) statistics from earlier profiling runs are kept
(optionally persisted to disk) and reused by the optimizer, so repeated
queries skip the per-candidate execution of sample rows.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, TYPE_CHECKING, Tuple, Union

from repro.fao.profiler import ProfileResult
from repro.utils.io import atomic_write_text

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.skills.backends import SkillBackend


@dataclass
class CachedProfile:
    """Aggregated profiling statistics for one (family, variant) pair."""

    tokens_per_row: float = 0.0
    runtime_per_row_s: float = 0.0
    success_rate: float = 1.0
    samples: int = 0

    def update(self, profile: ProfileResult) -> None:
        """Fold one fresh profile into the running averages."""
        rows = max(1, profile.rows_in)
        tokens_per_row = profile.tokens_used / rows
        runtime_per_row = profile.runtime_s / rows
        success = 1.0 if profile.success else 0.0
        total = self.samples + 1
        self.tokens_per_row = (self.tokens_per_row * self.samples + tokens_per_row) / total
        self.runtime_per_row_s = (self.runtime_per_row_s * self.samples + runtime_per_row) / total
        self.success_rate = (self.success_rate * self.samples + success) / total
        self.samples = total

    def as_profile(self, function_name: str, variant: str, rows_in: int) -> ProfileResult:
        """Materialize a synthetic ProfileResult from the cached statistics."""
        return ProfileResult(
            function_name=function_name,
            variant=variant,
            success=self.success_rate >= 0.5,
            runtime_s=self.runtime_per_row_s * rows_in,
            tokens_used=int(round(self.tokens_per_row * rows_in)),
            rows_in=rows_in,
            rows_out=rows_in,
        )

    def to_dict(self) -> Dict[str, float]:
        return {
            "tokens_per_row": self.tokens_per_row,
            "runtime_per_row_s": self.runtime_per_row_s,
            "success_rate": self.success_rate,
            "samples": self.samples,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, float]) -> "CachedProfile":
        return cls(
            tokens_per_row=float(payload.get("tokens_per_row", 0.0)),
            runtime_per_row_s=float(payload.get("runtime_per_row_s", 0.0)),
            success_rate=float(payload.get("success_rate", 1.0)),
            samples=int(payload.get("samples", 0)),
        )


class ProfileCache:
    """A (family, variant)-keyed cache of profiling statistics."""

    def __init__(self, path: Optional[Union[str, Path]] = None, min_samples: int = 1,
                 backend: Optional["SkillBackend"] = None, backend_key: str = "profiles"):
        self.path = Path(path) if path else None
        self.min_samples = min_samples
        # Optional durable storage through a skill-store backend (one store,
        # one path): entries are loaded at construction and written through
        # on every record, so profiling statistics survive restarts together
        # with the skills they price.
        self.backend = backend
        self.backend_key = backend_key
        self._entries: Dict[Tuple[str, str], CachedProfile] = {}
        # One cache is shared by every session's optimizer; updates are
        # multi-field read-modify-writes and must stay atomic under
        # concurrent compiles.
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        if self.path is not None and self.path.exists():
            self.load()
        if self.backend is not None:
            self._load_backend()

    # -- lookups -----------------------------------------------------------------
    def get(self, family: str, variant: str) -> Optional[CachedProfile]:
        """A usable cached profile, or None (counts hit/miss)."""
        with self._lock:
            entry = self._entries.get((family, variant))
            if entry is not None and entry.samples >= self.min_samples:
                self.hits += 1
                # Hand out a snapshot so callers read a consistent set of
                # averages even if another thread folds in a sample now.
                return CachedProfile.from_dict(entry.to_dict())
            self.misses += 1
            return None

    def record(self, family: str, variant: str, profile: ProfileResult) -> CachedProfile:
        """Fold a freshly measured profile into the cache."""
        with self._lock:
            entry = self._entries.setdefault((family, variant), CachedProfile())
            entry.update(profile)
            payload = self._payload() if self.backend is not None else None
        if self.backend is not None and payload is not None:
            self.backend.put(self.backend_key, payload)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return isinstance(key, tuple) and key in self._entries

    # -- persistence ----------------------------------------------------------------
    def _payload(self) -> Dict[str, Dict[str, Any]]:
        """Serializable entries (caller must hold the lock)."""
        return {f"{family}::{variant}": entry.to_dict()
                for (family, variant), entry in self._entries.items()}

    def save(self, path: Optional[Union[str, Path]] = None) -> Path:
        """Persist the cache as JSON (atomically); returns the path written."""
        target = Path(path) if path else self.path
        with self._lock:
            payload = self._payload()
        if self.backend is not None:
            self.backend.put(self.backend_key, payload)
            if target is None and self.backend.location is not None:
                return Path(self.backend.location)
        if target is None:
            raise ValueError("no path configured for the profile cache")
        atomic_write_text(target, json.dumps(payload, indent=2))
        return target

    def _load_backend(self) -> int:
        """Load entries previously written through the backend."""
        assert self.backend is not None
        payload = self.backend.get(self.backend_key)
        if not payload:
            return 0
        with self._lock:
            for key, value in payload.items():
                family, _, variant = key.partition("::")
                self._entries[(family, variant)] = CachedProfile.from_dict(value)
        return len(payload)

    def load(self, path: Optional[Union[str, Path]] = None) -> int:
        """Load entries from JSON; returns how many entries were loaded."""
        source = Path(path) if path else self.path
        if source is None or not source.exists():
            return 0
        payload = json.loads(source.read_text(encoding="utf-8"))
        for key, value in payload.items():
            family, _, variant = key.partition("::")
            self._entries[(family, variant)] = CachedProfile.from_dict(value)
        return len(payload)

    def describe(self) -> str:
        lines = [f"profile cache ({len(self._entries)} entries, "
                 f"{self.hits} hits / {self.misses} misses)"]
        for (family, variant), entry in sorted(self._entries.items()):
            lines.append(f"  {family}/{variant}: {entry.tokens_per_row:.1f} tokens/row, "
                         f"{entry.samples} samples")
        return "\n".join(lines)

"""Logical-plan rewrites (paper Section 4, "Cost optimization").

Two rewrites are implemented:

* **predicate pushdown** -- relational filters drafted near the end of the plan
  are moved next to the base-table selection, so semantic scoring and
  classification (the expensive, model-backed operators) run on fewer rows;
* **operator fusion** -- a chain of one-to-one scoring nodes (semantic scores,
  recency, combination) is merged into one larger function.  Fewer functions
  mean fewer intermediate materializations but, as the paper discusses, larger
  functions are harder to generate correctly and explain -- the fused variant
  carries a lower accuracy prior, which is the trade-off the granularity
  ablation (A2) measures.
"""

from __future__ import annotations

import copy
from typing import List, Tuple

from repro.parser.logical_plan import LogicalPlan, LogicalPlanNode
from repro.relational.catalog import Catalog


def applied_rewrites(enable_pushdown: bool, enable_fusion: bool) -> List[str]:
    """Names of the rewrites that a configuration enables (for reporting)."""
    names = []
    if enable_pushdown:
        names.append("predicate_pushdown")
    if enable_fusion:
        names.append("operator_fusion")
    return names


def _clone(plan: LogicalPlan) -> LogicalPlan:
    return copy.deepcopy(plan)


def _consumers_of(plan: LogicalPlan, table_name: str) -> List[LogicalPlanNode]:
    return [node for node in plan.nodes if table_name in node.inputs]


def predicate_pushdown(plan: LogicalPlan, catalog: Catalog) -> Tuple[LogicalPlan, bool]:
    """Push relational filters down to the base-table selection.

    A filter is pushed when its column is provided by the base relation the
    plan's selection node reads (checked against the catalog schema), so the
    rewrite is safe with respect to column availability.  Returns the (possibly
    new) plan and whether anything changed.
    """
    new_plan = _clone(plan)
    select_nodes = [node for node in new_plan.nodes if node.name.startswith("select_")]
    if not select_nodes:
        return new_plan, False
    select_node = select_nodes[0]
    base_table = select_node.inputs[0] if select_node.inputs else None
    if base_table is None or not catalog.has_table(base_table):
        return new_plan, False
    base_columns = {c.lower() for c in catalog.schema(base_table).column_names()}

    changed = False
    for filter_node in list(new_plan.nodes):
        parameters = filter_node.parameters
        if "op" not in parameters or "column" not in parameters:
            continue
        column = str(parameters["column"]).lower()
        if column not in base_columns:
            continue
        if filter_node.inputs == [select_node.output]:
            continue  # already at the source
        old_input = filter_node.inputs[0]
        old_output = filter_node.output

        # Splice the filter out of its current position.
        for consumer in _consumers_of(new_plan, old_output):
            consumer.inputs = [old_input if name == old_output else name
                               for name in consumer.inputs]

        # Re-insert it directly after the selection node.
        pushed_output = f"{select_node.output}_pushed_{filter_node.name}"
        for consumer in _consumers_of(new_plan, select_node.output):
            if consumer is filter_node:
                continue
            consumer.inputs = [pushed_output if name == select_node.output else name
                               for name in consumer.inputs]
        filter_node.inputs = [select_node.output]
        filter_node.output = pushed_output

        # Keep the stored node order roughly topological for readability.
        new_plan.nodes.remove(filter_node)
        insert_at = new_plan.nodes.index(select_node) + 1
        new_plan.nodes.insert(insert_at, filter_node)
        changed = True

    return new_plan, changed


def fuse_score_chain(plan: LogicalPlan) -> Tuple[LogicalPlan, bool]:
    """Fuse chains of one-to-one scoring nodes into a single function.

    The fused node's parameters carry the sub-steps (``sub_specs``) so the
    implementation library can build one composite body.  Only maximal chains
    of at least two nodes are fused.
    """
    new_plan = _clone(plan)
    fusable_prefixes = ("gen_", "combine_")

    def is_fusable(node: LogicalPlanNode) -> bool:
        return (node.name.startswith(fusable_prefixes)
                and node.dependency_pattern in ("one_to_one", "one_to_many")
                and len(node.inputs) == 1)

    # Find a maximal chain: consecutive fusable nodes where each consumes the
    # previous node's output and that output has no other consumer.
    chain: List[LogicalPlanNode] = []
    for node in new_plan.execution_order():
        if not is_fusable(node):
            continue
        if not chain:
            chain = [node]
            continue
        previous = chain[-1]
        only_consumer = _consumers_of(new_plan, previous.output) == [node]
        if node.inputs == [previous.output] and only_consumer:
            chain.append(node)
        elif len(chain) >= 2:
            break
        else:
            chain = [node]

    if len(chain) < 2:
        return new_plan, False

    sub_specs = []
    for node in chain:
        spec = {"name": node.name, "description": node.description,
                "parameters": dict(node.parameters)}
        sub_specs.append(spec)

    fused = LogicalPlanNode(
        name="fused_" + "_".join(n.name for n in chain)[:60],
        description=("Fused scoring function combining: "
                     + "; ".join(n.description for n in chain)),
        inputs=list(chain[0].inputs),
        output=chain[-1].output,
        dependency_pattern="one_to_one",
        sketch_step=chain[0].sketch_step,
        parameters={"sub_specs": sub_specs},
    )

    # Replace the chain with the fused node at the first chain position.
    first_index = new_plan.nodes.index(chain[0])
    for node in chain:
        new_plan.nodes.remove(node)
    new_plan.nodes.insert(first_index, fused)
    return new_plan, True

"""The cost-based query optimizer.

For each node of the (possibly rewritten) logical plan the optimizer asks the
coder for candidate implementations, profiles each candidate on sampled
intermediate data, lets the critic check semantics (repairing when needed),
and picks the cheapest acceptable candidate under the unified cost model.
Samples of intermediate results are produced with the chosen implementations
and fed to the downstream candidates, matching the paper's agentic workflow.

Functions can be compiled sequentially (the paper's current prototype) or in
parallel across independent branches (``parallel=True``), which the A6
ablation compares.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING, Tuple

from repro.executor.monitor import ExecutionMonitor
from repro.fao.codegen import Coder
from repro.fao.critic import Critic, CriticVerdict
from repro.fao.function import FunctionContext, GeneratedFunction
from repro.fao.profiler import Profiler, ProfileResult
from repro.fao.registry import FunctionRegistry
from repro.models.base import ModelSuite
from repro.obs.trace import attach, current_trace, span as obs_span
from repro.optimizer.cost_model import CostModel
from repro.optimizer.physical_plan import PhysicalOperator, PhysicalPlan
from repro.optimizer.profile_cache import ProfileCache
from repro.optimizer.rewrites import fuse_score_chain, predicate_pushdown
from repro.parser.logical_plan import LogicalPlan, LogicalPlanNode
from repro.relational.catalog import Catalog
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.utils.timer import Timer

if TYPE_CHECKING:  # pragma: no cover - skills imports the optimizer package
    from repro.skills.store import SkillHit, SkillStore


@dataclass
class OptimizationReport:
    """What the optimizer did while compiling one plan."""

    candidates_evaluated: int = 0
    repair_rounds: int = 0
    rewrites_applied: List[str] = field(default_factory=list)
    wall_clock_s: float = 0.0
    tokens_spent: int = 0
    chosen_variants: Dict[str, str] = field(default_factory=dict)
    profile_cache_hits: int = 0
    # Skill-store traffic: nodes compiled from a stored skill (exact/near
    # fingerprint match that survived revalidation) versus fresh codegen.
    skill_exact_hits: int = 0
    skill_near_hits: int = 0
    skill_misses: int = 0

    def describe(self) -> str:
        lines = [
            "optimization report",
            f"  rewrites: {', '.join(self.rewrites_applied) or 'none'}",
            f"  candidates evaluated: {self.candidates_evaluated}",
            f"  repair rounds: {self.repair_rounds}",
            f"  optimizer wall clock: {self.wall_clock_s * 1000:.1f} ms",
            f"  optimizer tokens: {self.tokens_spent}",
        ]
        if self.skill_exact_hits or self.skill_near_hits or self.skill_misses:
            lines.append(f"  skill store: {self.skill_exact_hits} exact / "
                         f"{self.skill_near_hits} near hits, {self.skill_misses} misses")
        for name, variant in self.chosen_variants.items():
            lines.append(f"  {name}: {variant}")
        return "\n".join(lines)


class QueryOptimizer:
    """Compiles logical plans into physical plans."""

    def __init__(self, models: ModelSuite, catalog: Catalog, registry: FunctionRegistry,
                 coder: Optional[Coder] = None, profiler: Optional[Profiler] = None,
                 critic: Optional[Critic] = None, enable_pushdown: bool = True,
                 enable_fusion: bool = False, explore_variants: bool = True,
                 max_variants: int = 3, parallel: bool = False,
                 variant_overrides: Optional[Dict[str, str]] = None,
                 sample_size: int = 4, max_repair_rounds: int = 3,
                 min_accuracy: float = 0.88,
                 profile_cache: Optional[ProfileCache] = None,
                 vectorized_batch_size: int = 32,
                 skill_store: Optional["SkillStore"] = None,
                 monitor: Optional[ExecutionMonitor] = None):
        self.models = models
        self.catalog = catalog
        self.registry = registry
        self.coder = coder or Coder(models)
        self.profiler = profiler or Profiler(models, sample_size=sample_size)
        self.critic = critic or Critic(models)
        self.enable_pushdown = enable_pushdown
        self.enable_fusion = enable_fusion
        self.explore_variants = explore_variants
        self.max_variants = max(1, max_variants)
        self.parallel = parallel
        self.variant_overrides = dict(variant_overrides or {})
        self.sample_size = sample_size
        self.max_repair_rounds = max_repair_rounds
        self.min_accuracy = min_accuracy
        self.profile_cache = profile_cache
        # Durable skill store: consulted before generating code for a node,
        # fed after the fresh codegen -> profile -> critic loop accepts one.
        # The monitor (when enabled) additionally watches revalidation runs.
        self.skill_store = skill_store
        self.monitor = monitor
        # Vectorization hint carried onto chosen operators: batchable
        # implementations are priced with the sub-linear batch formula and
        # executed chunk-at-a-time.  <= 1 disables vectorized execution.
        self.vectorized_batch_size = max(1, int(vectorized_batch_size))

    # -- public API ---------------------------------------------------------------------
    def optimize(self, logical_plan: LogicalPlan) -> Tuple[PhysicalPlan, OptimizationReport]:
        """Compile one logical plan into a physical plan."""
        report = OptimizationReport()
        marker = self.models.cost_meter.snapshot()
        timer = Timer()
        with timer, obs_span("optimize", kind="stage") as opt_sp:
            plan = logical_plan
            if self.enable_pushdown:
                plan, changed = predicate_pushdown(plan, self.catalog)
                if changed:
                    report.rewrites_applied.append("predicate_pushdown")
            if self.enable_fusion:
                plan, changed = fuse_score_chain(plan)
                if changed:
                    report.rewrites_applied.append("operator_fusion")

            physical = PhysicalPlan(logical_plan=plan,
                                    rewrites_applied=list(report.rewrites_applied))
            cost_model = CostModel(self.catalog)
            sample_tables: Dict[str, Table] = {}

            ordered = plan.execution_order()
            if self.parallel:
                self._compile_parallel(ordered, physical, cost_model, sample_tables, report)
            else:
                for node in ordered:
                    with obs_span(f"compile:{node.name}", kind="stage"):
                        operator = self._compile_node(node, cost_model, sample_tables, report)
                    physical.add(operator)
            opt_sp.tag(nodes=len(ordered),
                       rewrites=list(report.rewrites_applied))

        report.wall_clock_s = timer.elapsed
        report.tokens_spent = self.models.cost_meter.tokens_since(marker)
        report.chosen_variants = {op.name: op.function.variant for op in physical.operators}
        return physical, report

    # -- node compilation ------------------------------------------------------------------
    def _resolve_sample_inputs(self, node: LogicalPlanNode,
                               sample_tables: Dict[str, Table]) -> Dict[str, Table]:
        """Sample input tables for profiling one node."""
        inputs: Dict[str, Table] = {}
        for name in node.inputs:
            if name in sample_tables:
                inputs[name] = sample_tables[name]
            elif self.catalog.has_table(name):
                inputs[name] = self.catalog.table(name)
            else:
                inputs[name] = Table(name, Schema([]))
        return inputs

    def _compile_node(self, node: LogicalPlanNode, cost_model: CostModel,
                      sample_tables: Dict[str, Table],
                      report: OptimizationReport) -> PhysicalOperator:
        inputs = self._resolve_sample_inputs(node, sample_tables)
        context = FunctionContext(models=self.models, catalog=self.catalog)
        input_samples = {name: table.head(2) for name, table in inputs.items()}

        family = self.coder.library.classify_node(node)
        specs = self.coder.candidate_variants(node)
        override = self.variant_overrides.get(node.name) or self.variant_overrides.get(family)
        if override is not None:
            specs = [s for s in specs if s.variant == override] or specs[:1]
        elif not self.explore_variants:
            specs = specs[:1]
        specs = specs[: self.max_variants]

        # Consult the durable skill store before generating any code.  Nodes
        # with a forced variant or an injected fault must go through fresh
        # codegen (the stored record would bypass what the caller asked for).
        if self.skill_store is not None and override is None \
                and node.name not in self.coder.fault_injection:
            with obs_span("skill_lookup", kind="stage", node=node.name) as sk_sp:
                hit = self.skill_store.lookup(
                    node, family, inputs, context, models=self.models,
                    profiler=self.profiler, critic=self.critic, monitor=self.monitor,
                    sample_size=self.sample_size)
                sk_sp.tag(hit=hit is not None)
            if hit is not None:
                return self._operator_from_hit(node, hit, cost_model, sample_tables, report)
            report.skill_misses += 1

        candidates: List[Tuple[GeneratedFunction, ProfileResult, float, CriticVerdict]] = []
        for spec in specs:
            with obs_span("codegen", kind="stage", node=node.name,
                          variant=spec.variant):
                function = self.coder.generate(node, variant=spec.variant,
                                               input_samples=input_samples)
            self.registry.register(function)
            cached = self.profile_cache.get(family, spec.variant) \
                if self.profile_cache is not None else None
            if cached is not None:
                # Offline profiling: reuse the cached statistics instead of
                # executing the candidate on sample rows (paper Section 4's
                # research question about reducing online profiling effort).
                rows_in = len(inputs[node.inputs[0]]) if node.inputs and node.inputs[0] in inputs \
                    else self.sample_size
                profile = cached.as_profile(function.name, spec.variant,
                                            min(rows_in, self.sample_size))
                verdict = CriticVerdict(ok=profile.success, checked_semantics=False)
                rounds = 0
                report.profile_cache_hits += 1
            else:
                with obs_span("profile_critic", kind="stage", node=node.name,
                              variant=spec.variant) as pc_sp:
                    function, profile, rounds, verdict = self.critic.review_and_repair(
                        node, function, inputs, context, self.coder, self.profiler,
                        registry=self.registry, max_rounds=self.max_repair_rounds)
                    pc_sp.tag(rounds=rounds, success=profile.success,
                              critic_ok=verdict.ok)
                if self.profile_cache is not None:
                    self.profile_cache.record(family, spec.variant, profile)
            report.candidates_evaluated += 1
            report.repair_rounds += rounds
            estimate = cost_model.estimate(node, function, profile,
                                           batch_size=self.vectorized_batch_size)
            # "Choose the one that produces acceptable outputs at the lowest
            # cost": implementations that fail, are rejected by the critic, or
            # fall below the accuracy floor are only used as a last resort.
            penalty = 0.0
            if not profile.success:
                penalty += 1e9
            if not verdict.ok:
                penalty += 1e6
            if function.accuracy_prior < self.min_accuracy and override is None:
                penalty += 1e6
            candidates.append((function, profile, estimate.tokens + penalty, verdict))

        candidates.sort(key=lambda item: (item[2], -item[0].accuracy_prior))
        chosen, chosen_profile, _, chosen_verdict = candidates[0]
        estimate = cost_model.estimate(node, chosen, chosen_profile,
                                       batch_size=self.vectorized_batch_size)

        # Persist the accepted implementation as a durable skill so later
        # processes (or similar predicates) can retrieve it instead of
        # regenerating.  Overridden variants are a caller's experiment, not a
        # validated default choice, so they are not stored.
        if self.skill_store is not None and override is None:
            self.skill_store.put(node, family, chosen, chosen_profile, chosen_verdict,
                                 models=self.models, inputs=inputs)

        # Materialize the sample output of the chosen implementation so
        # downstream nodes can be profiled on realistic intermediate data.
        try:
            sample_output = chosen.execute(inputs, context)
        except Exception:  # noqa: BLE001 - sampling must never abort optimization
            sample_output = Table(node.output, Schema([]))
        if len(sample_output) > self.sample_size:
            sample_output = sample_output.head_table(self.sample_size, node.output)
        sample_tables[node.output] = sample_output

        batchable = chosen.batchable and self.vectorized_batch_size > 1
        return PhysicalOperator(
            node=node,
            function=chosen,
            estimated_tokens=estimate.tokens,
            estimated_runtime_s=estimate.runtime_s,
            estimated_cardinality=estimate.output_cardinality,
            profile=chosen_profile,
            alternatives_considered=len(candidates),
            batchable=batchable,
            batch_size=self.vectorized_batch_size if batchable else 0,
        )

    def _operator_from_hit(self, node: LogicalPlanNode, hit: "SkillHit",
                           cost_model: CostModel, sample_tables: Dict[str, Table],
                           report: OptimizationReport) -> PhysicalOperator:
        """Build a physical operator from a revalidated skill-store hit.

        The revalidation run already executed the function on sampled live
        inputs, so its output doubles as the downstream sample table — a warm
        compile issues no extra execution beyond that one sampled slice.
        """
        function = hit.function
        self.registry.register(function)
        report.candidates_evaluated += 1
        if hit.kind == "exact":
            report.skill_exact_hits += 1
        else:
            report.skill_near_hits += 1

        estimate = cost_model.estimate(node, function, hit.profile,
                                       batch_size=self.vectorized_batch_size)
        sample_output = hit.sample_output
        if sample_output is None:
            sample_output = Table(node.output, Schema([]))
        if len(sample_output) > self.sample_size:
            sample_output = sample_output.head_table(self.sample_size, node.output)
        sample_output.name = node.output
        sample_tables[node.output] = sample_output

        batchable = function.batchable and self.vectorized_batch_size > 1
        return PhysicalOperator(
            node=node,
            function=function,
            estimated_tokens=estimate.tokens,
            estimated_runtime_s=estimate.runtime_s,
            estimated_cardinality=estimate.output_cardinality,
            profile=hit.profile,
            alternatives_considered=1,
            batchable=batchable,
            batch_size=self.vectorized_batch_size if batchable else 0,
        )

    # -- parallel compilation -----------------------------------------------------------------
    def _compile_parallel(self, ordered: List[LogicalPlanNode], physical: PhysicalPlan,
                          cost_model: CostModel, sample_tables: Dict[str, Table],
                          report: OptimizationReport) -> None:
        """Compile independent nodes concurrently, level by level."""
        produced = set(self.catalog.table_names())
        remaining = list(ordered)
        compiled: Dict[str, PhysicalOperator] = {}
        # Worker threads do not inherit the query's span contextvar;
        # re-attach the trace so their compile spans still parent here.
        trace = current_trace()

        def compile_attached(node: LogicalPlanNode) -> PhysicalOperator:
            with attach(trace):
                with obs_span(f"compile:{node.name}", kind="stage"):
                    return self._compile_node(node, cost_model, sample_tables,
                                              report)

        while remaining:
            ready = [node for node in remaining
                     if all(source in produced or source in sample_tables
                            for source in node.inputs)]
            if not ready:
                ready = [remaining[0]]  # break potential deadlocks defensively
            with concurrent.futures.ThreadPoolExecutor(max_workers=max(1, len(ready))) as pool:
                futures = {
                    pool.submit(compile_attached, node): node
                    for node in ready
                }
                for future, node in futures.items():
                    compiled[node.name] = future.result()
            for node in ready:
                remaining.remove(node)
                produced.add(node.output)
        for node in ordered:
            physical.add(compiled[node.name])

"""The query optimizer (paper Sections 2.2 and 4).

The optimizer turns an approved logical plan into a physical plan:

* **logical rewrites** (:mod:`~repro.optimizer.rewrites`): predicate pushdown
  and operator fusion over the logical plan;
* **physical choice** (:mod:`~repro.optimizer.optimizer`): for each node the
  coder generates candidate implementations, the profiler measures them on
  sampled data, the critic checks their semantics, and the cost model
  (:mod:`~repro.optimizer.cost_model`) picks the cheapest acceptable one.
"""

from repro.optimizer.physical_plan import PhysicalOperator, PhysicalPlan
from repro.optimizer.cost_model import CostEstimate, CostModel
from repro.optimizer.profile_cache import CachedProfile, ProfileCache
from repro.optimizer.rewrites import predicate_pushdown, fuse_score_chain, applied_rewrites
from repro.optimizer.optimizer import OptimizationReport, QueryOptimizer

__all__ = [
    "PhysicalOperator",
    "PhysicalPlan",
    "CostEstimate",
    "CostModel",
    "CachedProfile",
    "ProfileCache",
    "predicate_pushdown",
    "fuse_score_chain",
    "applied_rewrites",
    "OptimizationReport",
    "QueryOptimizer",
]

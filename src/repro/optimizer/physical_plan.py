"""Physical plans: ordered lists of (node, generated function) pairs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import PlanError
from repro.fao.function import GeneratedFunction
from repro.fao.profiler import ProfileResult
from repro.parser.logical_plan import LogicalPlan, LogicalPlanNode


@dataclass
class PhysicalOperator:
    """One executable step: a logical node bound to a chosen implementation.

    ``batchable``/``batch_size`` carry the optimizer's vectorization hint:
    when set, the engine asks the body to collect per-row model inputs into
    chunks of ``batch_size`` rows and issue one batched call per chunk
    (sub-linear token cost, identical rows).  ``batch_size`` 0 means
    row-at-a-time.
    """

    node: LogicalPlanNode
    function: GeneratedFunction
    estimated_tokens: float = 0.0
    estimated_runtime_s: float = 0.0
    estimated_cardinality: int = 0
    profile: Optional[ProfileResult] = None
    alternatives_considered: int = 1
    batchable: bool = False
    batch_size: int = 0

    @property
    def name(self) -> str:
        return self.node.name

    def describe(self) -> str:
        batched = f", batched<={self.batch_size}" if self.batchable else ""
        return (f"{self.node.name} := {self.function.implementation_kind}/"
                f"{self.function.variant} v{self.function.version} "
                f"(~{self.estimated_tokens:.0f} tokens, "
                f"~{self.estimated_cardinality} rows out{batched})")


@dataclass
class PhysicalPlan:
    """The fully compiled plan the execution engine runs."""

    operators: List[PhysicalOperator] = field(default_factory=list)
    logical_plan: Optional[LogicalPlan] = None
    rewrites_applied: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.operators)

    def __iter__(self):
        return iter(self.operators)

    def add(self, operator: PhysicalOperator) -> PhysicalOperator:
        self.operators.append(operator)
        return operator

    def clone(self) -> "PhysicalPlan":
        """A per-execution copy: fresh operator shells over the shared nodes
        and functions.

        The engine reassigns ``operator.function`` when it repairs an
        implementation on the fly, so a cached (prepared) plan must never be
        executed directly — each run gets its own operator objects instead.
        """
        operators = [PhysicalOperator(node=op.node, function=op.function,
                                      estimated_tokens=op.estimated_tokens,
                                      estimated_runtime_s=op.estimated_runtime_s,
                                      estimated_cardinality=op.estimated_cardinality,
                                      profile=op.profile,
                                      alternatives_considered=op.alternatives_considered,
                                      batchable=op.batchable,
                                      batch_size=op.batch_size)
                     for op in self.operators]
        return PhysicalPlan(operators=operators, logical_plan=self.logical_plan,
                            rewrites_applied=list(self.rewrites_applied))

    def pin_versions(self, registry, versions: Dict[str, int]) -> "PhysicalPlan":
        """Swap specific function versions into this plan's operators.

        ``versions`` maps operator names to version ids resolved from the
        ``registry``; unmentioned operators are untouched.  Call this on a
        per-execution :meth:`clone`, never on a cached plan.  Returns self.
        """
        for operator in self.operators:
            if operator.name in versions:
                operator.function = registry.get(operator.name,
                                                 versions[operator.name])
        return self

    def operator(self, name: str) -> PhysicalOperator:
        """Look up an operator by its node name."""
        for operator in self.operators:
            if operator.name == name:
                return operator
        raise PlanError(f"no physical operator named {name!r}")

    def functions(self) -> Dict[str, GeneratedFunction]:
        """node name -> chosen implementation."""
        return {op.name: op.function for op in self.operators}

    def final_output(self) -> str:
        """The output table name of the last operator."""
        if not self.operators:
            raise PlanError("empty physical plan")
        return self.operators[-1].node.output

    @property
    def total_estimated_tokens(self) -> float:
        return sum(op.estimated_tokens for op in self.operators)

    @property
    def estimated_accuracy(self) -> float:
        """A crude plan-level accuracy estimate: product of accuracy priors."""
        accuracy = 1.0
        for operator in self.operators:
            accuracy *= operator.function.accuracy_prior
        return accuracy

    def describe(self) -> str:
        lines = ["physical plan"]
        if self.rewrites_applied:
            lines.append(f"  rewrites: {', '.join(self.rewrites_applied)}")
        lines.extend("  " + operator.describe() for operator in self.operators)
        lines.append(f"  total estimated tokens: {self.total_estimated_tokens:.0f}")
        return "\n".join(lines)

"""Result explanation over lineage (paper Section 5, Figure 5).

Two explanation modes are supported:

* **coarse-grained** -- a high-level overview of the transformations the query
  performed (one entry per executed operator);
* **fine-grained** -- given a specific ``lid``, inspect the function signature
  and implementation, trace parent tuples through the lineage graph, and show
  how every output field was derived.

The :class:`~repro.explain.lineage_query.LineageQueryInterface` additionally
answers free-form NL questions over the lineage ("explain tuple 1621",
"which function produced final_score", "how many rows did classify_boring
produce").
"""

from repro.explain.explainer import Explainer, TupleExplanation
from repro.explain.lineage_query import LineageQueryInterface

__all__ = ["Explainer", "TupleExplanation", "LineageQueryInterface"]

"""Coarse- and fine-grained explanations of query results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ExplanationError
from repro.executor.result import QueryResult
from repro.fao.registry import FunctionRegistry
from repro.models.base import ModelSuite
from repro.relational.table import Table


@dataclass
class TupleExplanation:
    """A fine-grained explanation of one output tuple."""

    lid: int
    row: Dict[str, Any]
    produced_by: str
    produced_by_version: int
    field_derivations: List[str] = field(default_factory=list)
    ancestry: List[str] = field(default_factory=list)
    source_text: str = ""

    def describe(self) -> str:
        lines = [f"tuple lid={self.lid} (produced by {self.produced_by} "
                 f"v{self.produced_by_version})"]
        display_row = {k: v for k, v in self.row.items()
                       if not isinstance(v, (list, dict)) or len(str(v)) < 120}
        lines.append(f"  row: {display_row}")
        if self.field_derivations:
            lines.append("  field derivations:")
            lines.extend(f"    - {d}" for d in self.field_derivations)
        if self.ancestry:
            lines.append("  derivation chain (nearest parent first):")
            lines.extend(f"    {a}" for a in self.ancestry)
        if self.source_text:
            lines.append("  implementation of the producing function:")
            lines.extend("    " + line for line in self.source_text.rstrip().splitlines())
        return "\n".join(lines)


class Explainer:
    """Builds explanations from a query result, its plan, and its lineage."""

    def __init__(self, models: ModelSuite, registry: Optional[FunctionRegistry] = None):
        self.models = models
        self.registry = registry

    # -- coarse-grained --------------------------------------------------------------
    def explain_pipeline(self, result: QueryResult) -> str:
        """A numbered, high-level overview of what the query did (Figure 5 left)."""
        if result.physical_plan is None:
            raise ExplanationError("the query result carries no physical plan to explain")
        lines = [f"How KathDB answered: {result.nl_query}"]
        for index, operator in enumerate(result.physical_plan.operators, start=1):
            record = result.record_for(operator.name)
            rows = f" ({record.rows_in} -> {record.rows_out} rows)" if record else ""
            description = operator.node.description.rstrip(".")
            lines.append(f"{index}: {description}{rows}.")
        summary = "\n".join(lines)
        self.models.llm.render_text("{text}", purpose="coarse_explanation", text=summary)
        return summary

    # -- fine-grained -------------------------------------------------------------------
    def explain_tuple(self, result: QueryResult, lid: int) -> TupleExplanation:
        """Explain how the tuple with lineage id ``lid`` was derived (Figure 5 right)."""
        if result.lineage is None:
            raise ExplanationError("the query result carries no lineage store")
        row, table_name = self._find_row(result, lid)
        if row is None:
            raise ExplanationError(f"no materialized tuple with lid={lid}")
        producer = result.lineage.producing_function(lid)
        produced_by, version = producer if producer else ("unknown", 0)

        explanation = TupleExplanation(lid=lid, row=dict(row), produced_by=produced_by,
                                       produced_by_version=version)
        explanation.field_derivations = self._derive_fields(result, row)
        explanation.ancestry = self._ancestry(result, lid)
        if self.registry is not None and self.registry.has(produced_by):
            try:
                explanation.source_text = self.registry.get(produced_by, version).source_text
            except Exception:  # noqa: BLE001 - explanation must not fail on registry gaps
                explanation.source_text = self.registry.latest(produced_by).source_text
        self.models.llm.render_text("{text}", purpose="fine_explanation",
                                    text=explanation.describe()[:400])
        return explanation

    # -- helpers -----------------------------------------------------------------------------
    def _find_row(self, result: QueryResult, lid: int) -> Tuple[Optional[Dict[str, Any]], str]:
        """Locate the materialized row carrying ``lid`` (final table first)."""
        tables: List[Tuple[str, Table]] = [(result.final_table.name, result.final_table)]
        tables.extend(result.intermediates.items())
        for name, table in tables:
            if not table.schema.has_column("lid"):
                continue
            for row in table:
                if row.get("lid") == lid:
                    return row, name
        return None, ""

    def _derive_fields(self, result: QueryResult, row: Dict[str, Any]) -> List[str]:
        """Explain how each derived field of the row got its value."""
        derivations: List[str] = []
        plan = result.physical_plan
        functions = plan.functions() if plan else {}

        # Semantic scores: show which entity terms matched the keyword list.
        for name, function in functions.items():
            parameters = function.parameters
            score_column = parameters.get("score_column")
            if score_column and score_column in row and parameters.get("keywords"):
                keywords = [str(k) for k in parameters["keywords"]]
                terms = [str(t) for t in (row.get("entity_terms") or [])]
                matched = sorted(set(t for t in terms if t in set(keywords)))
                value = row.get(score_column)
                derivations.append(
                    f"{score_column}: plot entities matched the generated keyword list "
                    f"({', '.join(matched[:8]) or 'via embedding similarity'}); score = {value}.")
            elif score_column == "recency_score" and "recency_score" in row:
                derivations.append(
                    f"recency_score: assigned {row.get('recency_score')} from release year "
                    f"{row.get('year')} (newer films score higher).")

        # Final score: reconstruct the weighted sum from the combine function.
        for name, function in functions.items():
            weights = function.parameters.get("weights")
            output_column = function.parameters.get("output_column", "final_score")
            if weights and output_column in row:
                terms = []
                for column, weight in weights.items():
                    if row.get(column) is not None:
                        terms.append(f"{weight} * {row.get(column)}")
                derivations.append(
                    f"{output_column}: weighted sum: {' + '.join(terms)} "
                    f"= {row.get(output_column)}.")

        # Poster classification: explain the flag from the visual evidence.
        for column in row:
            if column.endswith("_poster") and row.get(column) is not None:
                classes = row.get("object_classes") or []
                derivations.append(
                    f"{column}: {row.get(column)} -- the poster shows "
                    f"{len(classes)} detected object(s) "
                    f"({', '.join(str(c) for c in classes[:5]) or 'none'}) with saturation "
                    f"{round(float(row.get('saturation') or 0.0), 3)}; posters lacking color, "
                    f"detail, or action are flagged as boring.")
        return derivations

    def _ancestry(self, result: QueryResult, lid: int) -> List[str]:
        """Readable lineage chain entries for ``lid`` (nearest parents first)."""
        lines: List[str] = []
        for entry in result.lineage.trace(lid, max_depth=16):
            parent = entry.parent_lid if entry.parent_lid is not None else "NULL"
            source = f", src={entry.src_uri}" if entry.src_uri else ""
            lines.append(
                f"lid={entry.lid} <- parent={parent} via {entry.func_id} v{entry.ver_id} "
                f"[{entry.data_type}{source}]")
        return lines

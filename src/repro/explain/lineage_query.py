"""NL questions over lineage.

KathDB "exposes the full provenance of query results and makes it queryable in
NL".  The interface routes a small family of question shapes onto the lineage
store, the physical plan, and the materialized intermediates, and falls back
to a lineage summary for anything it cannot parse.  Because the lineage store
exports itself as a relational table, structured questions can also be
answered with the ordinary SQL front end (see :meth:`LineageQueryInterface.sql`).
"""

from __future__ import annotations

import re

from repro.errors import ExplanationError
from repro.executor.result import QueryResult
from repro.explain.explainer import Explainer
from repro.models.base import ModelSuite
from repro.relational.catalog import Catalog
from repro.relational.sql import execute_sql
from repro.relational.table import Table

_TUPLE_RE = re.compile(r"(?:tuple|lid|row)\s*(?:=|\s)\s*#?(\d+)", re.IGNORECASE)
_COLUMN_RE = re.compile(r"produced\s+(?:the\s+)?(?:column\s+)?['\"]?([A-Za-z_][A-Za-z_0-9]*)['\"]?",
                        re.IGNORECASE)
_ROWS_RE = re.compile(r"how many rows did\s+['\"]?([A-Za-z_][A-Za-z_0-9]*)['\"]?", re.IGNORECASE)


class LineageQueryInterface:
    """Answers NL questions about how a query result was derived."""

    def __init__(self, models: ModelSuite, explainer: Explainer):
        self.models = models
        self.explainer = explainer

    def ask(self, question: str, result: QueryResult) -> str:
        """Answer one NL question about ``result``."""
        lowered = question.lower()

        tuple_match = _TUPLE_RE.search(question)
        if tuple_match and any(word in lowered for word in ("explain", "derive", "how", "why")):
            lid = int(tuple_match.group(1))
            explanation = self.explainer.explain_tuple(result, lid)
            answer = explanation.describe()
        elif "pipeline" in lowered or "full" in lowered or "overview" in lowered \
                or "all steps" in lowered:
            answer = self.explainer.explain_pipeline(result)
        elif _COLUMN_RE.search(question) or "which function" in lowered:
            answer = self._which_function(question, result)
        elif _ROWS_RE.search(question):
            answer = self._row_count(question, result)
        elif "version" in lowered:
            answer = self._version_history(result)
        else:
            summary = result.lineage.summary() if result.lineage else {}
            answer = (f"I tracked {summary.get('total', 0)} lineage entries for this query "
                      f"({summary.get('row', 0)} row-level, {summary.get('table', 0)} "
                      f"table-level). Ask me to 'explain the pipeline' or to "
                      f"'explain tuple <lid>' for details.")
        self.models.llm.render_text("{text}", purpose="lineage_qa", text=answer[:200])
        return answer

    def sql(self, query: str, result: QueryResult) -> Table:
        """Run a SQL query directly over the lineage table (power-user path)."""
        if result.lineage is None:
            raise ExplanationError("no lineage store attached to this result")
        catalog = Catalog()
        catalog.register(result.lineage.to_table("lineage"))
        return execute_sql(query, catalog)

    # -- question handlers ---------------------------------------------------------
    def _which_function(self, question: str, result: QueryResult) -> str:
        match = _COLUMN_RE.search(question)
        column = match.group(1) if match else ""
        plan = result.physical_plan
        if plan is None:
            return "No physical plan is attached to this result."
        for operator in plan.operators:
            parameters = operator.function.parameters
            produced = {parameters.get("score_column"), parameters.get("output_column"),
                        parameters.get("flag_column")}
            if column and column in produced:
                return (f"Column {column!r} was produced by {operator.name} "
                        f"(v{operator.function.version}, "
                        f"{operator.function.implementation_kind}/{operator.function.variant}): "
                        f"{operator.node.description}")
        if column:
            return (f"No operator declares {column!r} as its output column; it most likely "
                    f"comes from a base relation.")
        lines = ["Operators and what they produce:"]
        for operator in plan.operators:
            lines.append(f"  {operator.name} -> {operator.node.output}")
        return "\n".join(lines)

    def _row_count(self, question: str, result: QueryResult) -> str:
        match = _ROWS_RE.search(question)
        name = match.group(1) if match else ""
        record = result.record_for(name)
        if record is None:
            return f"I have no execution record for an operator named {name!r}."
        return (f"{name} consumed {record.rows_in} rows and produced {record.rows_out} rows "
                f"(lineage recorded at {record.lineage_data_type} granularity).")

    def _version_history(self, result: QueryResult) -> str:
        lines = ["Function versions used by this query:"]
        for record in result.records:
            repaired = " (repaired during execution)" if record.repairs else ""
            lines.append(f"  {record.operator_name}: v{record.function_version}"
                         f" [{record.function_variant}]{repaired}")
        return "\n".join(lines)

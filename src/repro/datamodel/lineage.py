"""The unified provenance model (paper Table 3, Figure 2).

Every derived artifact in KathDB -- a loaded base table, a materialized
intermediate view, or an individual output row -- gets a lineage id (``lid``).
Each lineage entry records one edge of the provenance graph:

``Lineage(lid, parent_lid, src_uri, func_id, ver_id, data_type, ts)``

Functions are classified by their *dependency pattern* (one_to_one,
one_to_many, many_to_one, many_to_many); the first two allow row-level
lineage, the last two fall back to table-level lineage where every input
table is recorded as a parent of the output table (exactly the paper's
policy).  The store supports three tracking levels so the lineage-overhead
ablation (A1) can compare them:

* ``row``   -- full row- and table-level tracking (default),
* ``table`` -- only table-level entries,
* ``off``   -- no tracking at all.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import LineageError
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import DataType

LINEAGE_LEVEL_ROW = "row"
LINEAGE_LEVEL_TABLE = "table"
LINEAGE_LEVEL_OFF = "off"

#: Name of the hidden column carrying a row's lineage id inside data tables.
LID_COLUMN = "lid"
#: Name of the hidden column carrying a row's parent lineage id.
PARENT_LID_COLUMN = "parent_lid"


class DependencyPattern(enum.Enum):
    """How a function's outputs depend on its inputs (paper Section 3)."""

    ONE_TO_ONE = "one_to_one"
    ONE_TO_MANY = "one_to_many"
    MANY_TO_ONE = "many_to_one"
    MANY_TO_MANY = "many_to_many"

    @property
    def is_narrow(self) -> bool:
        """Narrow (single-tuple) dependencies support row-level lineage."""
        return self in (DependencyPattern.ONE_TO_ONE, DependencyPattern.ONE_TO_MANY)

    @classmethod
    def from_string(cls, name: str) -> "DependencyPattern":
        normalized = (name or "").strip().lower()
        for pattern in cls:
            if pattern.value == normalized:
                return pattern
        raise LineageError(f"unknown dependency pattern: {name!r}")


@dataclass
class LineageEntry:
    """One row of the lineage table."""

    lid: int
    parent_lid: Optional[int]
    src_uri: Optional[str]
    func_id: str
    ver_id: int
    data_type: str  # "row" or "table"
    ts: float

    def to_row(self) -> Dict[str, object]:
        """Serialize to a relational row dict."""
        return {
            "lid": self.lid,
            "parent_lid": self.parent_lid,
            "src_uri": self.src_uri,
            "func_id": self.func_id,
            "ver_id": self.ver_id,
            "data_type": self.data_type,
            "ts": self.ts,
        }


LINEAGE_SCHEMA = Schema([
    Column("lid", DataType.INTEGER, nullable=False, description="derived artifact id"),
    Column("parent_lid", DataType.INTEGER, description="input artifact id (NULL for external data)"),
    Column("src_uri", DataType.TEXT, description="external source path (NULL for derived artifacts)"),
    Column("func_id", DataType.TEXT, description="function that produced the artifact"),
    Column("ver_id", DataType.INTEGER, description="version of that function"),
    Column("data_type", DataType.TEXT, description="'row' or 'table'"),
    Column("ts", DataType.FLOAT, description="seconds since the store was created"),
])


class LineageStore:
    """Assigns lineage ids and records provenance edges."""

    def __init__(self, level: str = LINEAGE_LEVEL_ROW, start_lid: int = 1):
        if level not in (LINEAGE_LEVEL_ROW, LINEAGE_LEVEL_TABLE, LINEAGE_LEVEL_OFF):
            raise LineageError(f"unknown lineage level: {level!r}")
        self.level = level
        self._next_lid = start_lid
        self._entries: List[LineageEntry] = []
        self._by_lid: Dict[int, List[LineageEntry]] = {}
        self._children: Dict[int, List[LineageEntry]] = {}
        self._created_at = time.perf_counter()

    # -- id allocation -----------------------------------------------------------
    def new_lid(self) -> int:
        """Allocate a fresh lineage id (monotonically increasing)."""
        lid = self._next_lid
        self._next_lid += 1
        return lid

    def peek_next_lid(self) -> int:
        """The lid the next :meth:`new_lid` call would return (no allocation)."""
        return self._next_lid

    @property
    def row_tracking_enabled(self) -> bool:
        """Whether row-level entries are being recorded."""
        return self.level == LINEAGE_LEVEL_ROW

    @property
    def enabled(self) -> bool:
        """Whether any tracking is happening."""
        return self.level != LINEAGE_LEVEL_OFF

    def _now(self) -> float:
        return round(time.perf_counter() - self._created_at, 3)

    # -- recording ----------------------------------------------------------------
    def record(self, lid: int, parent_lid: Optional[int], func_id: str, ver_id: int,
               data_type: str, src_uri: Optional[str] = None) -> Optional[LineageEntry]:
        """Record one provenance edge (low-level API)."""
        if not self.enabled:
            return None
        if data_type == "row" and not self.row_tracking_enabled:
            return None
        entry = LineageEntry(lid=lid, parent_lid=parent_lid, src_uri=src_uri,
                             func_id=func_id, ver_id=ver_id, data_type=data_type,
                             ts=self._now())
        self._entries.append(entry)
        self._by_lid.setdefault(lid, []).append(entry)
        if parent_lid is not None:
            self._children.setdefault(parent_lid, []).append(entry)
        return entry

    def record_source(self, src_uri: str, func_id: str = "load_data", ver_id: int = 1) -> int:
        """Record the ingestion of an external source; returns its table lid."""
        lid = self.new_lid()
        self.record(lid, None, func_id, ver_id, data_type="table", src_uri=src_uri)
        return lid

    def record_table(self, func_id: str, ver_id: int,
                     parent_lids: Sequence[Optional[int]]) -> int:
        """Record a table-level derivation with one edge per parent table."""
        lid = self.new_lid()
        parents = [p for p in parent_lids if p is not None] or [None]
        for parent in parents:
            self.record(lid, parent, func_id, ver_id, data_type="table")
        return lid

    def record_row(self, func_id: str, ver_id: int, parent_lid: Optional[int]) -> int:
        """Record a row-level derivation; returns the new row lid."""
        lid = self.new_lid()
        self.record(lid, parent_lid, func_id, ver_id, data_type="row")
        return lid

    # -- queries ---------------------------------------------------------------------
    def _entries_of(self, lid: int) -> List[LineageEntry]:
        """Entries whose child is ``lid`` (overridable lookup hook)."""
        return self._by_lid.get(lid, [])

    def _child_entries_of(self, lid: int) -> List[LineageEntry]:
        """Entries whose parent is ``lid`` (overridable lookup hook)."""
        return self._children.get(lid, [])

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> List[LineageEntry]:
        """All recorded entries in insertion order."""
        return list(self._entries)

    def entries_for(self, lid: int) -> List[LineageEntry]:
        """All entries whose child is ``lid``."""
        return list(self._entries_of(lid))

    def has_lid(self, lid: int) -> bool:
        """Whether any entry was recorded for this lid."""
        return bool(self._entries_of(lid))

    def parents_of(self, lid: int) -> List[int]:
        """Parent lids of ``lid`` (empty for external sources)."""
        return [e.parent_lid for e in self._entries_of(lid) if e.parent_lid is not None]

    def children_of(self, lid: int) -> List[int]:
        """Lids directly derived from ``lid``."""
        return [e.lid for e in self._child_entries_of(lid)]

    def producing_function(self, lid: int) -> Optional[tuple]:
        """The ``(func_id, ver_id)`` that produced ``lid``, if known."""
        entries = self._entries_of(lid)
        if not entries:
            return None
        return entries[0].func_id, entries[0].ver_id

    def trace(self, lid: int, max_depth: int = 32) -> List[LineageEntry]:
        """The full derivation of ``lid``: its entries plus all ancestors' entries.

        Entries are returned child-first (the paper's Figure 2 layout).  Raises
        :class:`LineageError` for an unknown lid.
        """
        if not self.has_lid(lid):
            raise LineageError(f"unknown lineage id: {lid}")
        seen: set = set()
        ordered: List[LineageEntry] = []
        frontier = [lid]
        depth = 0
        while frontier and depth < max_depth:
            next_frontier: List[int] = []
            for current in frontier:
                if current in seen:
                    continue
                seen.add(current)
                for entry in self._entries_of(current):
                    ordered.append(entry)
                    if entry.parent_lid is not None and entry.parent_lid not in seen:
                        next_frontier.append(entry.parent_lid)
            frontier = next_frontier
            depth += 1
        return ordered

    def ancestors_of(self, lid: int, max_depth: int = 32) -> List[int]:
        """All ancestor lids of ``lid`` (nearest first, deduplicated)."""
        ordered: List[int] = []
        for entry in self.trace(lid, max_depth=max_depth):
            if entry.parent_lid is not None and entry.parent_lid not in ordered:
                ordered.append(entry.parent_lid)
        return ordered

    def to_table(self, name: str = "lineage") -> Table:
        """Export the lineage store as a relational table.

        This is what makes lineage itself queryable with the same machinery as
        any other table (used by the NL-over-lineage explainer).
        """
        table = Table(name, Schema(list(LINEAGE_SCHEMA.columns)),
                      description="Unified provenance table (paper Table 3).")
        for entry in self._entries:
            table.insert(entry.to_row())
        return table

    def summary(self) -> Dict[str, int]:
        """Counts by data_type plus the total number of entries."""
        row_entries = sum(1 for e in self._entries if e.data_type == "row")
        table_entries = sum(1 for e in self._entries if e.data_type == "table")
        return {"total": len(self._entries), "row": row_entries, "table": table_entries}


class ScopedLineageStore(LineageStore):
    """A per-session overlay over a shared base store.

    New entries are recorded locally, so concurrently running sessions never
    write into the shared store; *reads* (trace, parents, producing function)
    fall back to the base store, so a session's provenance chains still reach
    the base tables and external sources recorded at corpus-load time.

    Local lids start at the base store's next free lid as of scope creation.
    Everything below that snapshot is base territory (resolved from the base
    store), everything at or above it is session territory (resolved locally,
    never from the base) — so even if the base store keeps allocating after
    the scope was created (e.g. the legacy facade sharing it), foreign edges
    in the overlapping range stay invisible to this scope.  Every scope
    starting from the same snapshot allocates the same lids for the same
    workload, which is what makes parallel session batches row-identical to
    serial runs.
    """

    def __init__(self, base: LineageStore, level: Optional[str] = None):
        scope_start = base.peek_next_lid()
        super().__init__(level=base.level if level is None else level,
                         start_lid=scope_start)
        self.base = base
        self._scope_start = scope_start

    def rebase_if_unused(self) -> None:
        """Re-snapshot the scope boundary while this scope is still empty.

        A scope created *before* the base store finished growing (a session
        built before ``load_corpus``, or after legacy facade queries advanced
        the shared store) would otherwise allocate lids colliding with base
        entries and mask them.  Until the scope records its first edge the
        snapshot is free to slide forward, making all current base content
        visible base-territory.
        """
        if not self._entries:
            fresh = self.base.peek_next_lid()
            if fresh > self._scope_start:
                self._scope_start = fresh
                self._next_lid = fresh

    def new_lid(self) -> int:
        self.rebase_if_unused()
        return super().new_lid()

    def _entries_of(self, lid: int) -> List[LineageEntry]:
        if lid >= self._scope_start:
            return super()._entries_of(lid)
        return self.base._entries_of(lid)

    def _child_entries_of(self, lid: int) -> List[LineageEntry]:
        local = super()._child_entries_of(lid)
        # Base edges whose child lies in the scope's range were recorded by
        # someone else after this scope was created; they are not ours.
        base = [e for e in self.base._child_entries_of(lid)
                if e.lid < self._scope_start]
        return local + base

    def to_table(self, name: str = "lineage") -> Table:
        """Export this scope's view: the base as of scope creation, plus the
        session's own entries."""
        table = Table(name, Schema(list(LINEAGE_SCHEMA.columns)),
                      description="Unified provenance table (paper Table 3).")
        for entry in self.base.entries:
            if entry.lid < self._scope_start:
                table.insert(entry.to_row())
        for entry in self._entries:
            table.insert(entry.to_row())
        return table

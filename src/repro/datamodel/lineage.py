"""The unified provenance model (paper Table 3, Figure 2).

Every derived artifact in KathDB -- a loaded base table, a materialized
intermediate view, or an individual output row -- gets a lineage id (``lid``).
Each lineage entry records one edge of the provenance graph:

``Lineage(lid, parent_lid, src_uri, func_id, ver_id, data_type, ts)``

Functions are classified by their *dependency pattern* (one_to_one,
one_to_many, many_to_one, many_to_many); the first two allow row-level
lineage, the last two fall back to table-level lineage where every input
table is recorded as a parent of the output table (exactly the paper's
policy).  The store supports three tracking levels so the lineage-overhead
ablation (A1) can compare them:

* ``row``   -- full row- and table-level tracking (default),
* ``table`` -- only table-level entries,
* ``off``   -- no tracking at all.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import LineageError
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import DataType

LINEAGE_LEVEL_ROW = "row"
LINEAGE_LEVEL_TABLE = "table"
LINEAGE_LEVEL_OFF = "off"

#: Name of the hidden column carrying a row's lineage id inside data tables.
LID_COLUMN = "lid"
#: Name of the hidden column carrying a row's parent lineage id.
PARENT_LID_COLUMN = "parent_lid"


class DependencyPattern(enum.Enum):
    """How a function's outputs depend on its inputs (paper Section 3)."""

    ONE_TO_ONE = "one_to_one"
    ONE_TO_MANY = "one_to_many"
    MANY_TO_ONE = "many_to_one"
    MANY_TO_MANY = "many_to_many"

    @property
    def is_narrow(self) -> bool:
        """Narrow (single-tuple) dependencies support row-level lineage."""
        return self in (DependencyPattern.ONE_TO_ONE, DependencyPattern.ONE_TO_MANY)

    @classmethod
    def from_string(cls, name: str) -> "DependencyPattern":
        normalized = (name or "").strip().lower()
        for pattern in cls:
            if pattern.value == normalized:
                return pattern
        raise LineageError(f"unknown dependency pattern: {name!r}")


@dataclass
class LineageEntry:
    """One row of the lineage table."""

    lid: int
    parent_lid: Optional[int]
    src_uri: Optional[str]
    func_id: str
    ver_id: int
    data_type: str  # "row" or "table"
    ts: float

    def to_row(self) -> Dict[str, object]:
        """Serialize to a relational row dict."""
        return {
            "lid": self.lid,
            "parent_lid": self.parent_lid,
            "src_uri": self.src_uri,
            "func_id": self.func_id,
            "ver_id": self.ver_id,
            "data_type": self.data_type,
            "ts": self.ts,
        }


LINEAGE_SCHEMA = Schema([
    Column("lid", DataType.INTEGER, nullable=False, description="derived artifact id"),
    Column("parent_lid", DataType.INTEGER, description="input artifact id (NULL for external data)"),
    Column("src_uri", DataType.TEXT, description="external source path (NULL for derived artifacts)"),
    Column("func_id", DataType.TEXT, description="function that produced the artifact"),
    Column("ver_id", DataType.INTEGER, description="version of that function"),
    Column("data_type", DataType.TEXT, description="'row' or 'table'"),
    Column("ts", DataType.FLOAT, description="seconds since the store was created"),
])


class LineageStore:
    """Assigns lineage ids and records provenance edges."""

    def __init__(self, level: str = LINEAGE_LEVEL_ROW, start_lid: int = 1):
        if level not in (LINEAGE_LEVEL_ROW, LINEAGE_LEVEL_TABLE, LINEAGE_LEVEL_OFF):
            raise LineageError(f"unknown lineage level: {level!r}")
        self.level = level
        self._next_lid = start_lid
        self._entries: List[LineageEntry] = []
        self._by_lid: Dict[int, List[LineageEntry]] = {}
        self._children: Dict[int, List[LineageEntry]] = {}
        self._created_at = time.perf_counter()

    # -- id allocation -----------------------------------------------------------
    def new_lid(self) -> int:
        """Allocate a fresh lineage id (monotonically increasing)."""
        lid = self._next_lid
        self._next_lid += 1
        return lid

    @property
    def row_tracking_enabled(self) -> bool:
        """Whether row-level entries are being recorded."""
        return self.level == LINEAGE_LEVEL_ROW

    @property
    def enabled(self) -> bool:
        """Whether any tracking is happening."""
        return self.level != LINEAGE_LEVEL_OFF

    def _now(self) -> float:
        return round(time.perf_counter() - self._created_at, 3)

    # -- recording ----------------------------------------------------------------
    def record(self, lid: int, parent_lid: Optional[int], func_id: str, ver_id: int,
               data_type: str, src_uri: Optional[str] = None) -> Optional[LineageEntry]:
        """Record one provenance edge (low-level API)."""
        if not self.enabled:
            return None
        if data_type == "row" and not self.row_tracking_enabled:
            return None
        entry = LineageEntry(lid=lid, parent_lid=parent_lid, src_uri=src_uri,
                             func_id=func_id, ver_id=ver_id, data_type=data_type,
                             ts=self._now())
        self._entries.append(entry)
        self._by_lid.setdefault(lid, []).append(entry)
        if parent_lid is not None:
            self._children.setdefault(parent_lid, []).append(entry)
        return entry

    def record_source(self, src_uri: str, func_id: str = "load_data", ver_id: int = 1) -> int:
        """Record the ingestion of an external source; returns its table lid."""
        lid = self.new_lid()
        self.record(lid, None, func_id, ver_id, data_type="table", src_uri=src_uri)
        return lid

    def record_table(self, func_id: str, ver_id: int,
                     parent_lids: Sequence[Optional[int]]) -> int:
        """Record a table-level derivation with one edge per parent table."""
        lid = self.new_lid()
        parents = [p for p in parent_lids if p is not None] or [None]
        for parent in parents:
            self.record(lid, parent, func_id, ver_id, data_type="table")
        return lid

    def record_row(self, func_id: str, ver_id: int, parent_lid: Optional[int]) -> int:
        """Record a row-level derivation; returns the new row lid."""
        lid = self.new_lid()
        self.record(lid, parent_lid, func_id, ver_id, data_type="row")
        return lid

    # -- queries ---------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> List[LineageEntry]:
        """All recorded entries in insertion order."""
        return list(self._entries)

    def entries_for(self, lid: int) -> List[LineageEntry]:
        """All entries whose child is ``lid``."""
        return list(self._by_lid.get(lid, []))

    def has_lid(self, lid: int) -> bool:
        """Whether any entry was recorded for this lid."""
        return lid in self._by_lid

    def parents_of(self, lid: int) -> List[int]:
        """Parent lids of ``lid`` (empty for external sources)."""
        return [e.parent_lid for e in self._by_lid.get(lid, []) if e.parent_lid is not None]

    def children_of(self, lid: int) -> List[int]:
        """Lids directly derived from ``lid``."""
        return [e.lid for e in self._children.get(lid, [])]

    def producing_function(self, lid: int) -> Optional[tuple]:
        """The ``(func_id, ver_id)`` that produced ``lid``, if known."""
        entries = self._by_lid.get(lid)
        if not entries:
            return None
        return entries[0].func_id, entries[0].ver_id

    def trace(self, lid: int, max_depth: int = 32) -> List[LineageEntry]:
        """The full derivation of ``lid``: its entries plus all ancestors' entries.

        Entries are returned child-first (the paper's Figure 2 layout).  Raises
        :class:`LineageError` for an unknown lid.
        """
        if lid not in self._by_lid:
            raise LineageError(f"unknown lineage id: {lid}")
        seen: set = set()
        ordered: List[LineageEntry] = []
        frontier = [lid]
        depth = 0
        while frontier and depth < max_depth:
            next_frontier: List[int] = []
            for current in frontier:
                if current in seen:
                    continue
                seen.add(current)
                for entry in self._by_lid.get(current, []):
                    ordered.append(entry)
                    if entry.parent_lid is not None and entry.parent_lid not in seen:
                        next_frontier.append(entry.parent_lid)
            frontier = next_frontier
            depth += 1
        return ordered

    def ancestors_of(self, lid: int, max_depth: int = 32) -> List[int]:
        """All ancestor lids of ``lid`` (nearest first, deduplicated)."""
        ordered: List[int] = []
        for entry in self.trace(lid, max_depth=max_depth):
            if entry.parent_lid is not None and entry.parent_lid not in ordered:
                ordered.append(entry.parent_lid)
        return ordered

    def to_table(self, name: str = "lineage") -> Table:
        """Export the lineage store as a relational table.

        This is what makes lineage itself queryable with the same machinery as
        any other table (used by the NL-over-lineage explainer).
        """
        table = Table(name, Schema(list(LINEAGE_SCHEMA.columns)),
                      description="Unified provenance table (paper Table 3).")
        for entry in self._entries:
            table.insert(entry.to_row())
        return table

    def summary(self) -> Dict[str, int]:
        """Counts by data_type plus the total number of entries."""
        row_entries = sum(1 for e in self._entries if e.data_type == "row")
        table_entries = sum(1 for e in self._entries if e.data_type == "table")
        return {"total": len(self._entries), "row": row_entries, "table": table_entries}

"""Images and videos as scene graphs (paper Table 1).

Visual content is represented by four relational views:

* ``Objects(vid, fid, oid, lid, cid, x_1, y_1, x_2, y_2)``
* ``Relationships(vid, fid, rid, lid, oid_i, pid, oid_j)``
* ``Attributes(vid, fid, oid, lid, k, v)``
* ``Frames(vid, fid, lid, pixels)``

Images are treated as single-frame videos (``fid = 0``).  ``cid`` and ``pid``
hold the class / predicate *names* rather than integer label ids -- the paper
uses ids into a label vocabulary, but names keep the reproduction's lineage
explanations readable without changing any semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.datamodel.lineage import LineageStore
from repro.models.vlm import SimulatedVLM
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import DataType

OBJECTS_SCHEMA = Schema([
    Column("vid", DataType.INTEGER, nullable=False, description="video/image id"),
    Column("fid", DataType.INTEGER, nullable=False, description="frame id (0 for images)"),
    Column("oid", DataType.INTEGER, nullable=False, description="object id within the frame"),
    Column("lid", DataType.INTEGER, description="lineage id"),
    Column("cid", DataType.TEXT, description="object class"),
    Column("x_1", DataType.INTEGER), Column("y_1", DataType.INTEGER),
    Column("x_2", DataType.INTEGER), Column("y_2", DataType.INTEGER),
])

VISUAL_RELATIONSHIPS_SCHEMA = Schema([
    Column("vid", DataType.INTEGER, nullable=False),
    Column("fid", DataType.INTEGER, nullable=False),
    Column("rid", DataType.INTEGER, nullable=False, description="relationship id within the frame"),
    Column("lid", DataType.INTEGER),
    Column("oid_i", DataType.INTEGER, description="subject object id"),
    Column("pid", DataType.TEXT, description="relationship predicate"),
    Column("oid_j", DataType.INTEGER, description="object object id"),
])

VISUAL_ATTRIBUTES_SCHEMA = Schema([
    Column("vid", DataType.INTEGER, nullable=False),
    Column("fid", DataType.INTEGER, nullable=False),
    Column("oid", DataType.INTEGER, nullable=False),
    Column("lid", DataType.INTEGER),
    Column("k", DataType.TEXT, description="attribute key"),
    Column("v", DataType.TEXT, description="attribute value"),
])

FRAMES_SCHEMA = Schema([
    Column("vid", DataType.INTEGER, nullable=False),
    Column("fid", DataType.INTEGER, nullable=False),
    Column("lid", DataType.INTEGER),
    Column("pixels", DataType.BLOB, description="raw frame pixels"),
    Column("color_variance", DataType.FLOAT, description="pixel statistic used by classifiers"),
    Column("saturation", DataType.FLOAT),
    Column("coverage", DataType.FLOAT, description="fraction of the frame covered by objects"),
])


@dataclass
class SceneGraphTables:
    """The four scene-graph views for a collection of images."""

    objects: Table
    relationships: Table
    attributes: Table
    frames: Table

    def as_dict(self) -> Dict[str, Table]:
        """Name -> table mapping, using the catalog-facing view names."""
        return {
            "image_objects": self.objects,
            "image_relationships": self.relationships,
            "image_attributes": self.attributes,
            "image_frames": self.frames,
        }

    def objects_for(self, vid: int, fid: int = 0) -> List[Dict[str, object]]:
        """All object rows of one frame."""
        return [dict(row) for row in self.objects
                if row["vid"] == vid and row["fid"] == fid]

    def class_names_for(self, vid: int, fid: int = 0) -> List[str]:
        """Object class names of one frame (with duplicates)."""
        return [row["cid"] for row in self.objects_for(vid, fid)]


def populate_scene_graph(poster_rows: Iterable[Dict[str, object]], vlm: SimulatedVLM,
                         lineage: Optional[LineageStore] = None,
                         parent_lid: Optional[int] = None,
                         func_id: str = "populate_scene_graph",
                         ver_id: int = 1,
                         id_column: str = "movie_id",
                         image_column: str = "image",
                         batch_size: int = 32) -> SceneGraphTables:
    """Populate the scene-graph views from poster rows.

    Parameters
    ----------
    poster_rows:
        Rows containing an image payload column (``image``) and an id column
        (``movie_id``), typically the ``poster_images`` base relation.
    vlm:
        The vision model that extracts objects/relationships.
    lineage:
        When provided, each emitted row gets a row-level lineage entry whose
        parent is ``parent_lid`` (the poster table's lid) -- view population is
        a ``one_to_many`` function in the paper's taxonomy.
    batch_size:
        Scene-graph extraction is issued as one batched VLM call per this
        many posters (sub-linear token cost through the model's
        ``extract_scene_graph_batch`` planner, gateway-aware when the VLM is
        routed).  ``1`` restores the serial row-at-a-time path.  Emitted
        rows — and their lineage entries — are identical either way.
    """
    objects = Table("image_objects", Schema(list(OBJECTS_SCHEMA.columns)),
                    description="Scene-graph objects extracted from posters (Table 1).")
    relationships = Table("image_relationships", Schema(list(VISUAL_RELATIONSHIPS_SCHEMA.columns)),
                          description="Scene-graph relationships between poster objects.")
    attributes = Table("image_attributes", Schema(list(VISUAL_ATTRIBUTES_SCHEMA.columns)),
                       description="Scene-graph object attributes (key/value).")
    frames = Table("image_frames", Schema(list(FRAMES_SCHEMA.columns)),
                   description="Raw frame view with poster-level pixel statistics.")

    def next_lid() -> Optional[int]:
        if lineage is None or not lineage.enabled:
            return None
        if lineage.row_tracking_enabled:
            return lineage.record_row(func_id, ver_id, parent_lid)
        return None

    rows = [row for row in poster_rows if row.get(image_column) is not None]
    batch_size = max(1, int(batch_size))
    vectorized = batch_size > 1 and hasattr(vlm, "extract_scene_graph_batch")
    graphs: List[Dict[str, object]] = []
    if vectorized:
        for start in range(0, len(rows), batch_size):
            graphs.extend(vlm.extract_scene_graph_batch(
                [row[image_column] for row in rows[start:start + batch_size]]))
    else:
        graphs = [vlm.extract_scene_graph(row[image_column]) for row in rows]

    for row, graph in zip(rows, graphs):
        vid = row.get(id_column)
        fid = 0
        for oid, obj in enumerate(graph["objects"]):
            x1, y1, x2, y2 = obj["bbox"]
            objects.insert({
                "vid": vid, "fid": fid, "oid": oid, "lid": next_lid(),
                "cid": obj["class_name"], "x_1": x1, "y_1": y1, "x_2": x2, "y_2": y2,
            })
            for key, value in obj.get("attributes", {}).items():
                attributes.insert({
                    "vid": vid, "fid": fid, "oid": oid, "lid": next_lid(),
                    "k": key, "v": str(value),
                })
        for rid, (subject, predicate, target) in enumerate(graph["relationships"]):
            relationships.insert({
                "vid": vid, "fid": fid, "rid": rid, "lid": next_lid(),
                "oid_i": subject, "pid": predicate, "oid_j": target,
            })
        frames.insert({
            "vid": vid, "fid": fid, "lid": next_lid(), "pixels": row[image_column],
            "color_variance": graph["color_variance"],
            "saturation": graph["saturation"],
            "coverage": graph["coverage"],
        })

    return SceneGraphTables(objects=objects, relationships=relationships,
                            attributes=attributes, frames=frames)

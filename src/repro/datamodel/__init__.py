"""KathDB's unified multimodal data model (paper Section 3).

* :mod:`~repro.datamodel.scene_graph` -- images/videos as scene graphs
  (Objects, Relationships, Attributes, Frames; paper Table 1).
* :mod:`~repro.datamodel.text_graph` -- text as a semantic graph
  (Entities, Mentions, Relationships, Attributes, Texts; paper Table 2).
* :mod:`~repro.datamodel.lineage` -- the unified provenance schema
  (Lineage(lid, parent_lid, src_uri, func_id, ver_id, data_type, ts);
  paper Table 3 and Figure 2).
* :mod:`~repro.datamodel.views` -- the view populator that loads raw data and
  materializes the modality views, recording lineage for every step.
"""

from repro.datamodel.lineage import (
    DependencyPattern,
    LineageEntry,
    LineageStore,
    LINEAGE_LEVEL_OFF,
    LINEAGE_LEVEL_ROW,
    LINEAGE_LEVEL_TABLE,
)
from repro.datamodel.scene_graph import SceneGraphTables, populate_scene_graph
from repro.datamodel.text_graph import TextGraphTables, populate_text_graph
from repro.datamodel.views import ViewPopulator

__all__ = [
    "DependencyPattern",
    "LineageEntry",
    "LineageStore",
    "LINEAGE_LEVEL_OFF",
    "LINEAGE_LEVEL_ROW",
    "LINEAGE_LEVEL_TABLE",
    "SceneGraphTables",
    "populate_scene_graph",
    "TextGraphTables",
    "populate_text_graph",
    "ViewPopulator",
]

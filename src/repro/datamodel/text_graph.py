"""Text content as a semantic graph (paper Table 2).

Documents are represented by five relational views:

* ``Entities(did, eid, lid, cid)``
* ``Mentions(did, sid, mid, lid, eid, span_1, span_2)``
* ``Relationships(did, sid, rid, lid, eid_i, pid, eid_j)``
* ``Attributes(did, sid, eid, lid, k, v)``
* ``Texts(did, lid, chars)``

Entity ids are unique within the corpus (the extractor produces document-local
ids which are offset per document here), and mentions carry character spans so
that explanations can point back into the original text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.datamodel.lineage import LineageStore
from repro.models.ner import EntityExtractor
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import DataType

ENTITIES_SCHEMA = Schema([
    Column("did", DataType.INTEGER, nullable=False, description="document id"),
    Column("eid", DataType.INTEGER, nullable=False, description="corpus-unique entity id"),
    Column("lid", DataType.INTEGER, description="lineage id"),
    Column("cid", DataType.TEXT, description="entity class (person, event, ...)"),
    Column("canonical", DataType.TEXT, description="canonical surface form"),
])

MENTIONS_SCHEMA = Schema([
    Column("did", DataType.INTEGER, nullable=False),
    Column("sid", DataType.INTEGER, nullable=False, description="sentence id"),
    Column("mid", DataType.INTEGER, nullable=False, description="mention id"),
    Column("lid", DataType.INTEGER),
    Column("eid", DataType.INTEGER, description="entity this mention resolves to"),
    Column("span_1", DataType.INTEGER, description="start character offset"),
    Column("span_2", DataType.INTEGER, description="end character offset"),
    Column("surface", DataType.TEXT, description="mention surface text"),
])

TEXT_RELATIONSHIPS_SCHEMA = Schema([
    Column("did", DataType.INTEGER, nullable=False),
    Column("sid", DataType.INTEGER, nullable=False),
    Column("rid", DataType.INTEGER, nullable=False),
    Column("lid", DataType.INTEGER),
    Column("eid_i", DataType.INTEGER, description="subject entity"),
    Column("pid", DataType.TEXT, description="relationship predicate"),
    Column("eid_j", DataType.INTEGER, description="object entity"),
])

TEXT_ATTRIBUTES_SCHEMA = Schema([
    Column("did", DataType.INTEGER, nullable=False),
    Column("sid", DataType.INTEGER, nullable=False),
    Column("eid", DataType.INTEGER, nullable=False),
    Column("lid", DataType.INTEGER),
    Column("k", DataType.TEXT),
    Column("v", DataType.TEXT),
])

TEXTS_SCHEMA = Schema([
    Column("did", DataType.INTEGER, nullable=False),
    Column("lid", DataType.INTEGER),
    Column("chars", DataType.TEXT, description="raw document text"),
])


@dataclass
class TextGraphTables:
    """The five text-graph views for a corpus of documents."""

    entities: Table
    mentions: Table
    relationships: Table
    attributes: Table
    texts: Table

    def as_dict(self) -> Dict[str, Table]:
        """Name -> table mapping, using the catalog-facing view names."""
        return {
            "text_entities": self.entities,
            "text_mentions": self.mentions,
            "text_relationships": self.relationships,
            "text_attributes": self.attributes,
            "text_documents": self.texts,
        }

    def entities_for(self, did: int, class_name: Optional[str] = None) -> List[Dict[str, object]]:
        """All entity rows of one document, optionally filtered by class."""
        return [dict(row) for row in self.entities
                if row["did"] == did and (class_name is None or row["cid"] == class_name)]

    def event_terms_for(self, did: int) -> List[str]:
        """Canonical names of the event entities of one document."""
        return [row["canonical"] for row in self.entities_for(did, "event")]


def populate_text_graph(document_rows: Iterable[Dict[str, object]], extractor: EntityExtractor,
                        lineage: Optional[LineageStore] = None,
                        parent_lid: Optional[int] = None,
                        func_id: str = "populate_text_graph",
                        ver_id: int = 1,
                        did_column: str = "did",
                        text_column: str = "plot",
                        batch_size: int = 32) -> TextGraphTables:
    """Populate the text-graph views from document rows.

    ``document_rows`` typically come from the ``film_plot`` base relation; the
    text column holds the raw document and ``did`` its document id.  Entity
    ids are made corpus-unique by offsetting the extractor's document-local
    ids.

    Extraction is issued as one batched NER call per ``batch_size`` documents
    (sub-linear token cost through ``extract_batch``, gateway-aware when the
    extractor is routed); ``1`` restores the serial path.  Emitted rows — and
    their lineage entries — are identical either way.
    """
    entities = Table("text_entities", Schema(list(ENTITIES_SCHEMA.columns)),
                     description="Entities resolved from plot documents (Table 2).")
    mentions = Table("text_mentions", Schema(list(MENTIONS_SCHEMA.columns)),
                     description="Entity mentions with character spans.")
    relationships = Table("text_relationships", Schema(list(TEXT_RELATIONSHIPS_SCHEMA.columns)),
                          description="Relationships between entities within a document.")
    attributes = Table("text_attributes", Schema(list(TEXT_ATTRIBUTES_SCHEMA.columns)),
                       description="Entity attributes in key/value form.")
    texts = Table("text_documents", Schema(list(TEXTS_SCHEMA.columns)),
                  description="Raw document text view.")

    def next_lid() -> Optional[int]:
        if lineage is None or not lineage.enabled:
            return None
        if lineage.row_tracking_enabled:
            return lineage.record_row(func_id, ver_id, parent_lid)
        return None

    rows = list(document_rows)
    documents = [row.get(text_column) or "" for row in rows]
    batch_size = max(1, int(batch_size))
    if batch_size > 1 and hasattr(extractor, "extract_batch"):
        extractions = []
        for start in range(0, len(documents), batch_size):
            extractions.extend(
                extractor.extract_batch(documents[start:start + batch_size]))
    else:
        extractions = [extractor.extract(text) for text in documents]

    entity_id_offset = 0
    mention_id_offset = 0
    for row, text, extraction in zip(rows, documents, extractions):
        did = row.get(did_column)
        local_to_global = {}
        for entity in extraction.entities:
            global_eid = entity.entity_id + entity_id_offset
            local_to_global[entity.entity_id] = global_eid
            entities.insert({
                "did": did, "eid": global_eid, "lid": next_lid(),
                "cid": entity.class_name, "canonical": entity.canonical,
            })
        for mention in extraction.mentions:
            mentions.insert({
                "did": did, "sid": mention.sentence_id,
                "mid": mention.mention_id + mention_id_offset, "lid": next_lid(),
                "eid": local_to_global.get(mention.entity_id),
                "span_1": mention.span[0], "span_2": mention.span[1],
                "surface": mention.surface,
            })
        for relationship in extraction.relationships:
            relationships.insert({
                "did": did, "sid": relationship.sentence_id, "rid": relationship.relationship_id,
                "lid": next_lid(),
                "eid_i": local_to_global.get(relationship.subject_entity_id),
                "pid": relationship.predicate,
                "eid_j": local_to_global.get(relationship.object_entity_id),
            })
        for attribute in extraction.attributes:
            attributes.insert({
                "did": did, "sid": attribute.sentence_id,
                "eid": local_to_global.get(attribute.entity_id), "lid": next_lid(),
                "k": attribute.key, "v": attribute.value,
            })
        texts.insert({"did": did, "lid": next_lid(), "chars": text})
        entity_id_offset += len(extraction.entities)
        mention_id_offset += len(extraction.mentions)

    return TextGraphTables(entities=entities, mentions=mentions, relationships=relationships,
                           attributes=attributes, texts=texts)

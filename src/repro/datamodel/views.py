"""The view populator: raw data in, relational semantic layer out.

The paper's Section 6 prototype "pre-writes the view-population function that
invokes GPT-4o and supplies schema information to KathDB as the first step".
:class:`ViewPopulator` is that step: it registers the raw base relations in the
catalog (recording their external ``src_uri`` in the lineage table), then
materializes the scene-graph and text-graph views with the simulated VLM/NER
models, recording a lineage entry for every populated row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.data.mmqa import MovieCorpus
from repro.datamodel.lineage import LineageStore
from repro.datamodel.scene_graph import SceneGraphTables, populate_scene_graph
from repro.datamodel.text_graph import TextGraphTables, populate_text_graph
from repro.models.base import ModelSuite
from repro.relational.catalog import Catalog
from repro.relational.table import Table


@dataclass
class PopulationReport:
    """What the populator loaded and materialized."""

    base_tables: Dict[str, int] = field(default_factory=dict)      # name -> table lid
    view_tables: Dict[str, int] = field(default_factory=dict)      # name -> table lid
    row_counts: Dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        """Human-readable summary."""
        lines = ["view population report"]
        for name, lid in self.base_tables.items():
            lines.append(f"  base  {name:<22} lid={lid:<5} rows={self.row_counts.get(name, 0)}")
        for name, lid in self.view_tables.items():
            lines.append(f"  view  {name:<22} lid={lid:<5} rows={self.row_counts.get(name, 0)}")
        return "\n".join(lines)


class ViewPopulator:
    """Loads a corpus into the catalog and materializes the modality views.

    ``batch_size`` vectorizes view population: scene-graph extraction and
    NER run as one batched model call per that many rows (sub-linear token
    cost; gateway-aware when the suite is routed, so every member still
    populates the shared cache).  ``1`` keeps the serial row-at-a-time path.
    """

    def __init__(self, models: ModelSuite, catalog: Catalog, lineage: LineageStore,
                 batch_size: int = 32):
        self.models = models
        self.catalog = catalog
        self.lineage = lineage
        self.batch_size = max(1, int(batch_size))

    def load_corpus(self, corpus: MovieCorpus, populate_views: bool = True) -> PopulationReport:
        """Register the corpus base tables and (optionally) populate views.

        Returns a :class:`PopulationReport` mapping each table to the lid of
        its table-level lineage entry.
        """
        report = PopulationReport()
        base_tables = corpus.to_tables()
        base_lids: Dict[str, int] = {}
        for name, table in base_tables.items():
            source_uri = f"file://data/mmqa/{name}.json"
            source_lid = self.lineage.record_source(source_uri)
            table_lid = self.lineage.record_table("load_data", 1, [source_lid])
            self.catalog.register(table, kind="base", lineage_id=table_lid,
                                  source_uri=source_uri, replace=True)
            base_lids[name] = table_lid
            report.base_tables[name] = table_lid
            report.row_counts[name] = len(table)

        if populate_views:
            scene = self.populate_scene_views(base_tables["poster_images"],
                                              parent_lid=base_lids["poster_images"])
            text = self.populate_text_views(base_tables["film_plot"],
                                            parent_lid=base_lids["film_plot"])
            for name, table in {**scene.as_dict(), **text.as_dict()}.items():
                view_lid = self.lineage.record_table(
                    "populate_scene_graph" if name.startswith("image_") else "populate_text_graph",
                    1, [base_lids["poster_images" if name.startswith("image_") else "film_plot"]])
                self.catalog.register(table, kind="view", lineage_id=view_lid, replace=True)
                report.view_tables[name] = view_lid
                report.row_counts[name] = len(table)
        return report

    def populate_scene_views(self, poster_table: Table,
                             parent_lid: Optional[int] = None) -> SceneGraphTables:
        """Materialize the image scene-graph views from a poster table."""
        return populate_scene_graph(poster_table.rows, self.models.vlm,
                                    lineage=self.lineage, parent_lid=parent_lid,
                                    batch_size=self.batch_size)

    def populate_text_views(self, plot_table: Table,
                            parent_lid: Optional[int] = None) -> TextGraphTables:
        """Materialize the text semantic-graph views from a plot table."""
        return populate_text_graph(plot_table.rows, self.models.ner,
                                   lineage=self.lineage, parent_lid=parent_lid,
                                   batch_size=self.batch_size)

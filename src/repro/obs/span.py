"""Trace spans: lineage for time and cost.

A :class:`Trace` is the per-query tree of :class:`Span` records — the
temporal analogue of what ``LineageStore`` does for rows.  Each span
carries wall time measured with ``time.perf_counter`` plus free-form
tags (token cost, rows in/out, cache outcome).  Spans are created
through :class:`~repro.obs.trace.Tracer` and the module-level
``span(...)`` context manager; this module only defines the data model.

Span kinds used across the codebase:

``query``
    The root span — one per :class:`~repro.api.request.QueryRequest`.
``stage``
    Pipeline stages: ``prepare``, ``parse``, ``plan``, ``optimize``,
    ``compile:<node>``, ``codegen``, ``profile_critic``,
    ``skill_lookup``, ``skill_revalidate``, ``execute``, ``repair``.
``operator``
    One physical-operator execution inside the engine.
``model``
    One gateway model call, tagged with ``outcome``: ``exact-hit`` /
    ``semantic-hit`` / ``coalesced-follower`` / ``batched-chunk`` /
    ``executed``.
"""

from __future__ import annotations

import itertools
import time
from contextvars import ContextVar
from typing import Any, Dict, List, Optional

#: The innermost live span on the current call path.  Lives here (not in
#: ``repro.obs.trace``) because :class:`Span` doubles as its own context
#: manager scope on the hot path.
_CURRENT_SPAN: ContextVar[Optional["Span"]] = ContextVar("kathdb_obs_span",
                                                         default=None)


class Span:
    """One timed node in a trace tree.

    A plain slotted class (not a dataclass), and its *own* context-manager
    scope: span creation and finish run once per instrumented site per
    query, so the hot path avoids every avoidable allocation and
    indirection.  ``with trace.begin(...)`` sets the context var on entry
    and finishes (status ``error`` when the body raised) on exit.
    """

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "kind",
                 "start_pc", "end_pc", "status", "tags", "_trace", "_token")

    #: Real spans record; the shared no-op span reports False so
    #: instrumentation sites can stay branch-free.
    is_recording = True

    def __init__(self, name: str, trace_id: str, span_id: str,
                 parent_id: Optional[str], kind: str = "stage",
                 start_pc: float = 0.0, end_pc: Optional[float] = None,
                 status: str = "ok", tags: Optional[Dict[str, Any]] = None,
                 _trace: Optional["Trace"] = None) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.kind = kind
        self.start_pc = start_pc
        self.end_pc = end_pc
        self.status = status
        self.tags = tags if tags is not None else {}
        self._trace = _trace

    def __repr__(self) -> str:
        return (f"Span(name={self.name!r}, span_id={self.span_id!r}, "
                f"kind={self.kind!r}, status={self.status!r})")

    def __enter__(self) -> "Span":
        self._token = _CURRENT_SPAN.set(self)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        _CURRENT_SPAN.reset(self._token)
        self.finish("error" if exc_type is not None else None)
        return False

    @property
    def finished(self) -> bool:
        return self.end_pc is not None

    @property
    def duration_ms(self) -> float:
        end = self.end_pc if self.end_pc is not None else time.perf_counter()
        return (end - self.start_pc) * 1000.0

    def tag(self, **tags: Any) -> "Span":
        self.tags.update(tags)
        return self

    def finish(self, status: Optional[str] = None) -> "Span":
        """Close the span (idempotent).

        Dropping the back-reference breaks the ``Span -> Trace -> spans``
        cycle, so retired traces free by refcount instead of waiting on
        (and adding work to) the cycle collector — measurable on the
        ring-buffer sink, which keeps thousands of spans alive.
        """
        if self.end_pc is not None:
            return self
        self.end_pc = time.perf_counter()
        if status is not None:
            self.status = status
        self._trace = None
        return self

    def summary(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "status": self.status,
            "duration_ms": round(self.duration_ms, 3),
            "tags": dict(self.tags),
        }


class _NoopSpan:
    """Shared do-nothing span (and scope) returned when tracing is off.

    Lets call sites write ``sp.tag(...)`` unconditionally and use the
    same object as the no-op ``with`` target.
    """

    is_recording = False
    name = "noop"
    kind = "noop"
    trace_id = ""
    span_id = ""
    parent_id = None
    status = "ok"
    duration_ms = 0.0
    finished = True
    tags: Dict[str, Any] = {}

    def tag(self, **tags: Any) -> "_NoopSpan":
        return self

    def finish(self, status: Optional[str] = None) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Trace:
    """One query's span tree: a root plus nested children.

    Thread-safe: spans may be begun from any thread holding a reference
    (the vectorized gateway client attributes coalesced/batched work to
    every participating session's trace).
    """

    def __init__(self, trace_id: str, name: str,
                 session_id: Optional[str] = None,
                 tracer: Optional[Any] = None) -> None:
        self.trace_id = trace_id
        self.name = name
        self.session_id = session_id
        self.tracer = tracer
        #: Wall-clock birth time (epoch seconds) for exported records;
        #: all *durations* come from ``perf_counter``.
        self.started_at = time.time()
        self.start_pc = time.perf_counter()
        # Appended to lock-free: ``list.append`` and ``itertools.count``
        # are atomic under the GIL, and readers snapshot with ``list(...)``.
        self.spans: List[Span] = []
        self._seq = itertools.count(1)
        self.root = self.begin(name, parent=None, kind="query",
                               tags={"session": session_id} if session_id
                               else None)

    def begin(self, name: str, parent: Optional[Span], kind: str = "stage",
              tags: Optional[Dict[str, Any]] = None) -> Span:
        # ``tags`` ownership transfers to the span (every caller builds a
        # fresh dict from kwargs); avoiding the defensive copy — and
        # constructing positionally — matters on this per-span hot path.
        span = Span(name, self.trace_id,
                    f"{self.trace_id}.{next(self._seq)}",
                    parent.span_id if parent is not None else None,
                    kind, time.perf_counter(), None, "ok",
                    tags if tags is not None else {}, self)
        self.spans.append(span)
        return span

    @property
    def finished(self) -> bool:
        return self.root.finished

    @property
    def duration_ms(self) -> float:
        return self.root.duration_ms

    @property
    def status(self) -> str:
        return self.root.status

    def find(self, span_id: str) -> Optional[Span]:
        for span in list(self.spans):
            if span.span_id == span_id:
                return span
        return None

    def slowest(self, kind: str) -> Optional[Span]:
        candidates = [s for s in list(self.spans)
                      if s.kind == kind and s.finished]
        if not candidates:
            return None
        return max(candidates, key=lambda s: s.duration_ms)

    def summary(self) -> List[Dict[str, Any]]:
        return [span.summary() for span in list(self.spans)]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "session_id": self.session_id,
            "started_at": self.started_at,
            "status": self.status,
            "duration_ms": round(self.duration_ms, 3),
            "spans": self.summary(),
        }

"""The tracer: per-query trace trees with contextvar propagation.

:class:`Tracer` opens one :class:`~repro.obs.span.Trace` per query; the
root span rides a ``contextvars.ContextVar`` so any code on the query's
call path — engine, optimizer, skill store, gateway — can open child
spans through the module-level :func:`span` context manager without
plumbing a handle through every signature.  When no trace is active (or
tracing is disabled) :func:`span` hands back a shared no-op scope, so
instrumentation costs one contextvar read on the cold path.

Cross-trace attribution: each participating session records its *own*
gateway spans from its own thread (the coalesced follower waits in its
caller's context; every micro-batch member records its wait around the
shared execution), so shared work shows up in every trace it served.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

from repro.obs.span import _CURRENT_SPAN, NOOP_SPAN, Span, Trace


def current_span() -> Optional[Span]:
    """The innermost live span on this call path, if any."""
    return _CURRENT_SPAN.get()


def current_trace() -> Optional[Trace]:
    active = _CURRENT_SPAN.get()
    if active is None:
        return None
    return active._trace


def span(name: str, kind: str = "stage", **tags: Any):
    """Open a child span of the current context (no-op outside a trace).

    Spans are their own context-manager scopes (entering sets the
    contextvar; exiting finishes, with status ``error`` when the body
    raised) — one object per instrumented site on the hot path.

    Usage::

        with span("codegen", kind="stage", variant=spec.variant) as sp:
            ...
            sp.tag(tokens=cost)
    """
    parent = _CURRENT_SPAN.get()
    if parent is None or not parent.is_recording:
        return NOOP_SPAN
    trace = parent._trace
    if trace is None:
        return NOOP_SPAN
    return trace.begin(name, parent, kind, tags or None)


def record_span(name: str, kind: str = "stage", **tags: Any) -> Any:
    """Record an already-finished (instant) child span — cache hits and
    other outcomes with no meaningful duration of their own."""
    parent = _CURRENT_SPAN.get()
    if parent is None or not parent.is_recording:
        return NOOP_SPAN
    trace = parent._trace
    if trace is None:
        return NOOP_SPAN
    return trace.begin(name, parent, kind, tags or None).finish()


def attach(trace: Optional[Trace]):
    """Re-enter ``trace``'s root context from a foreign thread.

    The engine's parallel compile path and any future async scheduler
    run query work on threads that did not inherit the query's context;
    attaching the trace (carried on ``ExecutionContext``) restores span
    parenting there.  No-op scope when ``trace`` is ``None``.
    """
    if trace is None or trace.finished:
        return NOOP_SPAN
    token = _CURRENT_SPAN.set(trace.root)
    return _AttachScope(token)


class _AttachScope:
    __slots__ = ("_token",)

    def __init__(self, token: Any) -> None:
        self._token = token

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        _CURRENT_SPAN.reset(self._token)
        return False


class _TraceScope:
    """Context manager for a whole query trace."""

    __slots__ = ("_tracer", "_trace", "_token")

    def __init__(self, tracer: "Tracer", trace: Trace) -> None:
        self._tracer = tracer
        self._trace = trace

    def __enter__(self) -> Trace:
        self._token = _CURRENT_SPAN.set(self._trace.root)
        return self._trace

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        _CURRENT_SPAN.reset(self._token)
        self._trace.root.finish("error" if exc_type is not None else None)
        self._tracer._finish_trace(self._trace)
        return False


class _NoopTraceScope:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


_NOOP_TRACE_SCOPE = _NoopTraceScope()


class Tracer:
    """Factory for per-query traces.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) receives
    every span-finish event; ``on_trace_finish`` receives each completed
    trace (the service wires its sinks — ring buffer, JSONL, slow-query
    log — through it).
    """

    def __init__(self, enabled: bool = True, metrics: Optional[Any] = None,
                 on_trace_finish: Optional[Callable[[Trace], None]] = None,
                 ) -> None:
        self.enabled = enabled
        self.metrics = metrics
        self.on_trace_finish = on_trace_finish
        self._seq = itertools.count(1)  # next() is atomic under the GIL

    def trace(self, name: str, session_id: Optional[str] = None,
              **tags: Any):
        """Open a root trace scope; yields ``None`` when disabled."""
        if not self.enabled:
            return _NOOP_TRACE_SCOPE
        trace = Trace(f"t{next(self._seq):06d}", name,
                      session_id=session_id, tracer=self)
        if tags:
            trace.root.tag(**tags)
        return _TraceScope(self, trace)

    def _finish_trace(self, trace: Trace) -> None:
        # Metrics aggregate here, once per query, in one batched pass —
        # individual span finishes stay at two attribute writes.
        if self.metrics is not None:
            self.metrics.observe_trace(trace)
        if self.on_trace_finish is not None:
            self.on_trace_finish(trace)

"""Unified observability: per-query trace spans, service metrics, sinks.

``repro.obs`` is the one place the service's telemetry lives:

* :mod:`repro.obs.span` / :mod:`repro.obs.trace` — per-query trace
  trees with contextvar propagation (``span(...)`` from anywhere on the
  query path).
* :mod:`repro.obs.metrics` — the thread-safe :class:`MetricsRegistry`
  (counters, gauges, fixed-bucket latency histograms with p50/p95/p99)
  plus the shared :class:`EventLog` behind the gateway's windowed stats.
* :mod:`repro.obs.sinks` — trace ring buffer, JSONL sink, Chrome
  ``trace_event`` exporter, and the slow-query log.
"""

from repro.obs.metrics import (Counter, EventLog, Gauge, Histogram,
                               MetricsRegistry)
from repro.obs.sinks import (JsonlTraceSink, SlowQueryLog, TraceRingBuffer,
                             chrome_trace_events, write_chrome_trace)
from repro.obs.span import NOOP_SPAN, Span, Trace
from repro.obs.trace import (Tracer, attach, current_span, current_trace,
                             record_span, span)

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "JsonlTraceSink",
    "SlowQueryLog",
    "TraceRingBuffer",
    "chrome_trace_events",
    "write_chrome_trace",
    "NOOP_SPAN",
    "Span",
    "Trace",
    "Tracer",
    "attach",
    "current_span",
    "current_trace",
    "record_span",
    "span",
]

"""The service-wide metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` per :class:`~repro.api.service.KathDBService`
is the single backing store behind every stats surface:

* the gateway's rolling event stream (``windowed_stats``) lives here as
  :class:`EventLog` — one lock, one retention policy — instead of a
  private deque inside ``ModelGateway``;
* the skill store's counters are registry :class:`Counter` objects;
* ``gateway_stats()`` / ``skill_stats()`` stay API-compatible as *views*
  registered with :meth:`MetricsRegistry.register_view`;
* every finished span feeds :meth:`MetricsRegistry.observe_span`, which
  maintains per-kind latency histograms (p50/p95/p99) and outcome
  counters for model calls.

All structures are thread-safe; timestamps use ``time.perf_counter``.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

#: Fixed histogram bucket upper bounds, in milliseconds.  Chosen to span
#: sub-millisecond operator work up to multi-second cold compiles.
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)

#: Queued-trace cap: if nothing reads metrics for this many finished
#: queries, the next finisher aggregates the backlog inline so the queue
#: (which pins traces live) stays bounded and each inline drain stays a
#: sub-millisecond lump.
PENDING_DRAIN_LIMIT = 64


class Counter:
    """A monotonically-increasing thread-safe counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value: set directly or backed by a callable."""

    __slots__ = ("name", "_value", "_fn", "_lock")

    def __init__(self, name: str,
                 fn: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self._value = 0.0
        self._fn = fn
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value
            self._fn = None

    @property
    def value(self) -> float:
        fn = self._fn
        if fn is not None:
            return float(fn())
        return self._value


class Histogram:
    """Fixed-bucket histogram with interpolated p50/p95/p99.

    Values land in the first bucket whose upper bound contains them;
    one overflow bucket catches the rest.  Percentiles interpolate
    linearly within the winning bucket, clamped to the observed
    min/max so tiny samples do not report a bound nobody measured.
    """

    __slots__ = ("name", "bounds", "_counts", "_sum", "_count",
                 "_min", "_max", "_lock")

    def __init__(self, name: str,
                 buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS,
                 ) -> None:
        self.name = name
        self.bounds = tuple(sorted(buckets))
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._min: Optional[float] = None
        self._max = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        # First bucket whose upper bound contains the value; past-the-end
        # is the overflow bucket.
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if self._min is None or value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def observe_many(self, values: List[float]) -> None:
        """Record a batch of values under one lock acquisition."""
        if not values:
            return
        bounds = self.bounds
        with self._lock:
            counts = self._counts
            for value in values:
                counts[bisect_left(bounds, value)] += 1
            self._sum += sum(values)
            self._count += len(values)
            low = min(values)
            if self._min is None or low < self._min:
                self._min = low
            high = max(values)
            if high > self._max:
                self._max = high

    @property
    def count(self) -> int:
        return self._count

    def percentile(self, q: float) -> float:
        """Interpolated percentile, ``q`` in (0, 1]."""
        with self._lock:
            count = self._count
            counts = list(self._counts)
            low = self._min if self._min is not None else 0.0
            high = self._max
        if count == 0:
            return 0.0
        target = q * count
        cumulative = 0.0
        for i, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i] if i < len(self.bounds) else high
                fraction = (target - cumulative) / bucket_count
                value = lower + fraction * (upper - lower)
                return min(max(value, low), high)
            cumulative += bucket_count
        return high

    def summary(self) -> Dict[str, float]:
        with self._lock:
            count = self._count
            total = self._sum
            low = self._min if self._min is not None else 0.0
            high = self._max
        return {
            "count": count,
            "sum": round(total, 3),
            "min": round(low, 3),
            "max": round(high, 3),
            "p50": round(self.percentile(0.50), 3),
            "p95": round(self.percentile(0.95), 3),
            "p99": round(self.percentile(0.99), 3),
        }


class EventLog:
    """The shared rolling event stream (one lock, one retention policy).

    Entries are ``(perf_counter_stamp, kind, count, value, session_id)``
    — the shape the gateway's windowed stats aggregate over.  Bounded by
    ``maxlen`` and pruned to ``retention_s`` on read.
    """

    def __init__(self, maxlen: int = 65536,
                 retention_s: float = 3600.0) -> None:
        self.maxlen = maxlen
        self.retention_s = retention_s
        self._events: Deque[Tuple[float, str, int, int, Optional[str]]] = \
            deque(maxlen=maxlen)
        self._lock = threading.Lock()
        # Set by the owning registry: flushes deferred trace aggregation
        # before any read, so windowed views never miss finished queries.
        self._before_read: Optional[Callable[[], None]] = None

    def append(self, kind: str, count: int = 1, value: int = 0,
               session_id: Optional[str] = None) -> None:
        with self._lock:
            self._events.append(
                (time.perf_counter(), kind, count, value, session_id))

    def window(self, seconds: float, session_id: Optional[str] = None,
               ) -> List[Tuple[float, str, int, int, Optional[str]]]:
        """Events within the trailing ``seconds`` (pruning stale ones)."""
        if self._before_read is not None:
            self._before_read()
        horizon = time.perf_counter() - min(seconds, self.retention_s)
        stale = time.perf_counter() - self.retention_s
        with self._lock:
            while self._events and self._events[0][0] < stale:
                self._events.popleft()
            events = [event for event in self._events
                      if event[0] >= horizon]
        if session_id is not None:
            events = [event for event in events if event[4] == session_id]
        return events

    def __len__(self) -> int:
        if self._before_read is not None:
            self._before_read()
        with self._lock:
            return len(self._events)


class MetricsRegistry:
    """Thread-safe named registry of counters, gauges, and histograms.

    ``register_view(name, provider)`` attaches a legacy stats surface
    (``gateway.flat_stats``, ``skill_store.stats``) so callers read it
    *through* the registry — one place owns every number the service
    reports.
    """

    def __init__(self, latency_buckets_ms: Tuple[float, ...] =
                 DEFAULT_LATENCY_BUCKETS_MS) -> None:
        self.latency_buckets_ms = tuple(latency_buckets_ms)
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._views: Dict[str, Callable[[], Any]] = {}
        self._lock = threading.Lock()
        # Finished traces queue here (observe_trace) and aggregate lazily
        # on the next metrics *read* — queries pay one short lock instead
        # of contending on half a dozen instrument locks at trace finish.
        self._pending_traces: List[Any] = []
        self._pending_lock = threading.Lock()
        # Span aggregation tables: per-kind latency histograms and
        # per-outcome counters, read lock-free (CPython dict get/set are
        # atomic; a lost race re-resolves to the same registry objects).
        # Per-kind span *counts* are the histograms' counts — snapshot()
        # surfaces them as ``spans.<kind>`` counters.
        self._span_hists: Dict[str, Histogram] = {}
        self._outcome_counters: Dict[str, Counter] = {}
        self._query_tokens = self.counter("query_tokens")
        self.events = EventLog()
        self.events._before_read = self._drain

    def counter(self, name: str) -> Counter:
        self._drain()
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str,
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge(name, fn)
            elif fn is not None:
                gauge._fn = fn
        return gauge

    def histogram(self, name: str) -> Histogram:
        self._drain()
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(
                    name, self.latency_buckets_ms)
        return histogram

    def register_view(self, name: str,
                      provider: Callable[[], Any]) -> None:
        with self._lock:
            self._views[name] = provider

    def view(self, name: str) -> Any:
        self._drain()
        with self._lock:
            provider = self._views.get(name)
        if provider is None:
            raise KeyError(f"no registered view named {name!r}")
        return provider()

    def views(self) -> List[str]:
        with self._lock:
            return sorted(self._views)

    def _span_hist(self, kind: str) -> Histogram:
        hist = self._span_hists.get(kind)
        if hist is None:
            hist = self.histogram(f"latency_ms.{kind}")
            self._span_hists[kind] = hist
        return hist

    def observe_span(self, span: Any) -> None:
        """Feed one finished span: latency histogram + outcome counters."""
        kind = span.kind
        self._span_hist(kind).observe(span.duration_ms)
        if span.status == "error":
            self.counter(f"span_errors.{kind}").inc()
        if kind == "model":
            outcome = span.tags.get("outcome", "unknown")
            counter = self._outcome_counters.get(outcome)
            if counter is None:
                counter = self.counter(f"model_calls.{outcome}")
                self._outcome_counters[outcome] = counter
            counter.inc()
        elif kind == "query":
            tokens = span.tags.get("tokens")
            if not isinstance(tokens, int):
                tokens = 0
            self._query_tokens.inc(tokens)
            self.events.append("query", 1, tokens,
                               session_id=span.tags.get("session"))

    def observe_trace(self, trace: Any) -> None:
        """Queue a finished trace for aggregation.

        Called once per query by the tracer.  The serving path pays one
        short lock and a list append; the per-span work (histograms,
        outcome counters, the event log entry) runs in :meth:`_drain` on
        the next metrics read, so concurrent queries never contend on
        instrument locks at trace finish.
        """
        with self._pending_lock:
            self._pending_traces.append(trace)
            overflow = len(self._pending_traces) >= PENDING_DRAIN_LIMIT
        if overflow:
            self._drain()

    def _drain(self) -> None:
        """Aggregate every queued trace; called before any read."""
        with self._pending_lock:
            if not self._pending_traces:
                return
            pending, self._pending_traces = self._pending_traces, []
        for trace in pending:
            self._aggregate_trace(trace)

    def _aggregate_trace(self, trace: Any) -> None:
        """One batched pass over a trace's spans: per-kind histogram
        updates (one lock per kind), error/outcome counters, and the
        query's event-log entry."""
        by_kind: Dict[str, List[float]] = {}
        for span in list(trace.spans):
            if span.end_pc is None:
                continue
            durations = by_kind.get(span.kind)
            if durations is None:
                durations = by_kind[span.kind] = []
            durations.append((span.end_pc - span.start_pc) * 1000.0)
            if span.status == "error":
                self.counter(f"span_errors.{span.kind}").inc()
            if span.kind == "model":
                outcome = span.tags.get("outcome", "unknown")
                counter = self._outcome_counters.get(outcome)
                if counter is None:
                    counter = self.counter(f"model_calls.{outcome}")
                    self._outcome_counters[outcome] = counter
                counter.inc()
        for kind, durations in by_kind.items():
            self._span_hist(kind).observe_many(durations)
        tokens = trace.root.tags.get("tokens")
        if not isinstance(tokens, int):
            tokens = 0
        self._query_tokens.inc(tokens)
        self.events.append("query", 1, tokens, session_id=trace.session_id)

    def span_count(self, kind: str) -> int:
        """Spans of ``kind`` observed so far (histogram-backed)."""
        self._drain()
        hist = self._span_hists.get(kind)
        return hist.count if hist is not None else 0

    def snapshot(self) -> Dict[str, Any]:
        self._drain()
        with self._lock:
            counters = {name: c.value for name, c in self._counters.items()}
            gauges = {name: g.value
                      for name, g in sorted(self._gauges.items())}
            histograms = {name: h.summary()
                          for name, h in sorted(self._histograms.items())}
            # Per-kind span counts ride the latency histograms rather than
            # paying a second Counter on the span-finish path; surface them
            # under the counter naming scheme anyway.
            counters.update({f"spans.{kind}": h.count
                             for kind, h in self._span_hists.items()})
        return {"counters": dict(sorted(counters.items())), "gauges": gauges,
                "histograms": histograms}

    def describe(self) -> str:
        snap = self.snapshot()
        lines = ["metrics:"]
        for name, value in snap["counters"].items():
            lines.append(f"  {name}: {value}")
        for name, value in snap["gauges"].items():
            lines.append(f"  {name}: {value:.3f}")
        for name, summary in snap["histograms"].items():
            lines.append(
                f"  {name}: n={summary['count']}"
                f" p50={summary['p50']}ms p95={summary['p95']}ms"
                f" p99={summary['p99']}ms max={summary['max']}ms")
        return "\n".join(lines)

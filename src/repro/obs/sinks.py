"""Trace sinks: where finished traces go.

* :class:`TraceRingBuffer` — the in-memory tail behind
  ``service.traces()`` / ``service.trace(id)``.
* :class:`JsonlTraceSink` — append-only JSONL file, one trace per line.
* :func:`write_chrome_trace` — Chrome ``trace_event`` JSON (the
  ``{"traceEvents": [...]}`` envelope with ``"X"`` complete events);
  the output opens directly in ``chrome://tracing`` or Perfetto.
* :class:`SlowQueryLog` — a bounded ring of queries whose end-to-end
  latency crossed ``slow_query_ms``, each entry pinning the slowest
  operator span by id.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, Iterable, List, Optional, Union

from repro.obs.span import Trace
from repro.utils.io import atomic_write_text


class TraceRingBuffer:
    """Keeps the most recent ``capacity`` finished traces in memory."""

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._traces: Deque[Trace] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def add(self, trace: Trace) -> None:
        with self._lock:
            self._traces.append(trace)

    def list(self, limit: Optional[int] = None) -> List[Trace]:
        """Buffered traces, oldest first."""
        with self._lock:
            traces = list(self._traces)
        if limit is not None:
            traces = traces[-limit:]
        return traces

    def get(self, trace_id: str) -> Optional[Trace]:
        with self._lock:
            for trace in reversed(self._traces):
                if trace.trace_id == trace_id:
                    return trace
        return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


class JsonlTraceSink:
    """Appends each finished trace as one JSON line.

    ``buffer_lines`` batches appends: lines accumulate in memory and hit
    the file once the buffer fills, on :meth:`flush`, or on
    :meth:`close`.  The default of 1 keeps the historical behaviour —
    every trace is on disk the moment :meth:`write` returns.  Whoever
    raises it (high-volume scatter-gather runs) must close the sink on
    shutdown or the tail of the trace log is lost.
    """

    def __init__(self, path: Union[str, Path], buffer_lines: int = 1) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.buffer_lines = max(1, int(buffer_lines))
        self.written = 0
        self._pending: List[str] = []
        self._closed = False
        self._lock = threading.Lock()

    def write(self, trace: Trace) -> None:
        line = json.dumps(trace.to_dict(), sort_keys=True)
        with self._lock:
            if self._closed:
                return
            self._pending.append(line)
            self.written += 1
            if len(self._pending) >= self.buffer_lines:
                self._drain_locked()

    def _drain_locked(self) -> None:
        if not self._pending:
            return
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write("\n".join(self._pending) + "\n")
        self._pending.clear()

    def flush(self) -> None:
        """Force buffered lines to disk."""
        with self._lock:
            self._drain_locked()

    def close(self) -> None:
        """Flush and refuse further writes (idempotent)."""
        with self._lock:
            self._drain_locked()
            self._closed = True


def chrome_trace_events(traces: Iterable[Trace]) -> List[Dict[str, Any]]:
    """Flatten traces into Chrome ``trace_event`` ``"X"`` events.

    Each trace gets its own lane (``tid``) named after it; timestamps
    are microseconds relative to the earliest trace so concurrent
    queries line up on one shared timeline.
    """
    ordered = [trace for trace in traces if trace is not None]
    if not ordered:
        return []
    base = min(trace.start_pc for trace in ordered)
    events: List[Dict[str, Any]] = []
    for lane, trace in enumerate(ordered, start=1):
        label = f"{trace.trace_id}"
        if trace.session_id:
            label += f" [{trace.session_id}]"
        events.append({
            "ph": "M", "pid": 1, "tid": lane, "name": "thread_name",
            "args": {"name": label},
        })
        for span in trace.spans:
            if not span.finished:
                continue
            args: Dict[str, Any] = {"span_id": span.span_id,
                                    "status": span.status}
            args.update(span.tags)
            events.append({
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "pid": 1,
                "tid": lane,
                "ts": round((span.start_pc - base) * 1e6, 3),
                "dur": round(span.duration_ms * 1e3, 3),
                "args": args,
            })
    return events


def write_chrome_trace(path: Union[str, Path],
                       traces: Iterable[Trace]) -> int:
    """Write a ``chrome://tracing``-loadable file; returns event count."""
    events = chrome_trace_events(traces)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    atomic_write_text(Path(path), json.dumps(payload, indent=1))
    return len(events)


class SlowQueryLog:
    """Bounded ring of queries slower than ``threshold_ms``.

    Disabled (records nothing) while ``threshold_ms`` is ``None``.
    Each entry carries the root latency plus the slowest operator
    span's name and id, so a slow query points straight at its
    bottleneck without re-running anything.
    """

    def __init__(self, threshold_ms: Optional[float] = None,
                 capacity: int = 128) -> None:
        self.threshold_ms = threshold_ms
        self.capacity = capacity
        self._entries: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.threshold_ms is not None

    def observe(self, trace: Trace) -> Optional[Dict[str, Any]]:
        threshold = self.threshold_ms
        if threshold is None:
            return None
        latency_ms = trace.duration_ms
        if latency_ms < threshold:
            return None
        slowest = trace.slowest("operator")
        entry: Dict[str, Any] = {
            "trace_id": trace.trace_id,
            "session_id": trace.session_id,
            "query": trace.root.tags.get("query"),
            "status": trace.status,
            "latency_ms": round(latency_ms, 3),
        }
        if slowest is not None:
            entry["slowest_operator"] = {
                "name": slowest.name,
                "span_id": slowest.span_id,
                "duration_ms": round(slowest.duration_ms, 3),
            }
        with self._lock:
            self._entries.append(entry)
        return entry

    def entries(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def describe(self) -> str:
        entries = self.entries()
        if self.threshold_ms is None:
            return "slow-query log: disabled"
        lines = [f"slow-query log (>= {self.threshold_ms:g} ms):"
                 f" {len(entries)} recorded"]
        for entry in entries[-5:]:
            op = entry.get("slowest_operator")
            op_part = (f" slowest={op['name']}({op['span_id']})"
                       f" {op['duration_ms']:.1f}ms" if op else "")
            lines.append(
                f"  {entry['trace_id']} {entry['latency_ms']:.1f}ms"
                f" [{entry.get('session_id') or '-'}]{op_part}")
        return "\n".join(lines)

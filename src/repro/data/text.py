"""Synthetic plot-text generation.

Plots are composed from sentence templates whose vocabulary is drawn from the
lexicon's concept clusters, so a plot generated with a high excitement level
genuinely contains the kinds of words ("threat", "attack", "kill", ...) that
the simulated NER, embedding, and scoring pipeline will later pick up -- the
same coupling between data and models that exists with real corpora and real
foundation models.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.utils.seed import SeededRNG

# First/last names used to synthesize character entities in plots.
FIRST_NAMES = [
    "David", "Ruth", "Larry", "Dorothy", "Frank", "Helen", "Victor", "Clara",
    "Martin", "Alice", "Samuel", "Grace", "Walter", "Irene", "Nathan", "Joan",
]
LAST_NAMES = [
    "Merrill", "Nolan", "Keller", "Whitfield", "Ramsey", "Calloway", "Draper",
    "Stanton", "Ferris", "Holloway", "Mercer", "Langley", "Prescott", "Vaughn",
]

# Sentence templates.  ``{a}`` / ``{b}`` are character names.
EXCITING_TEMPLATES = [
    "{a} is accused of treason and threatened with death by a shadowy committee.",
    "A gunfight erupts when {a} confronts the men who attacked {b}.",
    "{a} narrowly escapes an explosion that destroys the evidence.",
    "The investigation turns violent as {a} is chased across the city by armed killers.",
    "{a} uncovers a conspiracy and becomes a fugitive under constant threat.",
    "A masked assassin attempts to kill {b} during the interrogation.",
    "{a} steals a motorcycle to escape the burning building before it collapses.",
    "Blackmail, betrayal, and a final shootout leave {b} fighting for survival.",
    "{a} is interrogated under suspicion of murder and refuses to name names.",
    "The heist goes wrong and {a} must defuse a bomb before the crash.",
]

CALM_TEMPLATES = [
    "{a} spends quiet afternoons in the garden talking with {b}.",
    "{a} attends a support meeting and slowly rebuilds an ordinary routine.",
    "Over dinner, {a} and {b} discuss paperwork from the office.",
    "{a} takes long walks and finds comfort in everyday conversation.",
    "The story follows {a} through a gentle recovery with help from a counselor.",
    "{a} learns to enjoy calm mornings, reading, and tea with {b}.",
    "A peaceful friendship grows between {a} and {b} at the clinic.",
    "{a} settles into a slow, serene life far from the city.",
]

ROMANCE_TEMPLATES = [
    "{a} falls in love with {b} at a wedding neither wanted to attend.",
    "A long-distance romance between {a} and {b} survives on letters.",
    "{a} plans a surprise date that rekindles an old passion with {b}.",
]

COMEDY_TEMPLATES = [
    "A silly prank by {a} spirals into a hilarious misunderstanding with {b}.",
    "{a} tells terrible jokes at exactly the wrong moments.",
    "An awkward dinner party leaves {a} and {b} laughing for days.",
]

THEME_TEMPLATES: Dict[str, List[str]] = {
    "exciting": EXCITING_TEMPLATES,
    "calm": CALM_TEMPLATES,
    "romance": ROMANCE_TEMPLATES,
    "comedy": COMEDY_TEMPLATES,
}


class PlotGenerator:
    """Generates synthetic movie plots with a controllable excitement level."""

    def __init__(self, seed: object = 0):
        self._rng = SeededRNG(("plot", seed))

    def character_names(self, title: str, count: int = 2) -> List[str]:
        """Deterministic character names for a movie."""
        rng = self._rng.fork(title, "names")
        names = []
        for index in range(count):
            first = rng.choice(FIRST_NAMES)
            last = rng.choice(LAST_NAMES)
            names.append(f"{first} {last}")
        # Ensure distinct names.
        seen = set()
        unique = []
        for name in names:
            while name in seen:
                name = rng.choice(FIRST_NAMES) + " " + rng.choice(LAST_NAMES)
            seen.add(name)
            unique.append(name)
        return unique

    def generate(self, title: str, excitement: float, themes: Optional[Sequence[str]] = None,
                 sentence_count: int = 5) -> str:
        """Generate a plot.

        Parameters
        ----------
        title:
            Movie title (seeds the generator so plots are stable per movie).
        excitement:
            Ground-truth excitement in [0, 1]: the fraction of sentences drawn
            from the exciting templates (the rest come from calm/other themes).
        themes:
            Optional extra themes (``"romance"``, ``"comedy"``) mixed into the
            non-exciting sentences.
        """
        excitement = max(0.0, min(1.0, excitement))
        rng = self._rng.fork(title, "plot")
        names = self.character_names(title)
        a, b = names[0], names[1]
        exciting_count = round(excitement * sentence_count)
        calm_count = sentence_count - exciting_count

        sentences: List[str] = []
        exciting_pool = rng.shuffle(EXCITING_TEMPLATES)
        for index in range(exciting_count):
            template = exciting_pool[index % len(exciting_pool)]
            sentences.append(template.format(a=a, b=b))
        other_pools: List[str] = []
        for theme in themes or []:
            other_pools.extend(THEME_TEMPLATES.get(theme, []))
        if not other_pools:
            other_pools = list(CALM_TEMPLATES)
        other_pool = rng.shuffle(other_pools)
        for index in range(calm_count):
            template = other_pool[index % len(other_pool)]
            sentences.append(template.format(a=a, b=b))
        # Keep sentence order stable but interleaved, so exciting sentences are
        # not all clustered at the front.
        ordered = rng.shuffle(sentences)
        intro = f"{title} follows {a} and {b}."
        return " ".join([intro] + ordered)

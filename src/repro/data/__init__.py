"""Synthetic multimodal data.

The paper evaluates on MMQA (tables + text + images crawled from Wikipedia).
Without access to that corpus, this package generates an MMQA-shaped movie
dataset: a relational movie table, plot documents, and synthetic poster
"images" (structured pixel arrays with known ground-truth objects), including
the two movies shown in the paper's Figure 6.  Ground-truth labels
(excitement, boring poster) make accuracy measurable for the benchmark
harness.
"""

from repro.data.images import ImageObject, SyntheticImage, PosterGenerator
from repro.data.text import PlotGenerator
from repro.data.mmqa import MovieRecord, MovieCorpus, build_movie_corpus
from repro.data.workloads import Workload, WorkloadQuery, build_default_workload

__all__ = [
    "ImageObject",
    "SyntheticImage",
    "PosterGenerator",
    "PlotGenerator",
    "MovieRecord",
    "MovieCorpus",
    "build_movie_corpus",
    "Workload",
    "WorkloadQuery",
    "build_default_workload",
]

"""Synthetic poster images.

A :class:`SyntheticImage` is the reproduction's stand-in for a poster file on
disk: it has a URI, pixel data (a numpy ``H x W x 3`` array rendered from its
objects), and ground-truth scene content (objects, relationships, attributes,
text overlay).  The simulated VLM reads the ground truth (with configurable
noise); the pixel-statistics detector and the OCR extractor read only the
rendered pixels / text overlay, giving the optimizer genuinely different
physical implementations to choose between.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.utils.seed import SeededRNG

# Colors are (R, G, B) in 0..255.
_MUTED_COLORS: Dict[str, Tuple[int, int, int]] = {
    "gray": (128, 128, 128),
    "beige": (222, 210, 180),
    "slate": (90, 100, 110),
    "charcoal": (54, 57, 63),
    "cream": (240, 235, 220),
}

_VIVID_COLORS: Dict[str, Tuple[int, int, int]] = {
    "red": (220, 40, 40),
    "orange": (255, 140, 20),
    "yellow": (250, 220, 40),
    "green": (40, 180, 80),
    "blue": (40, 90, 220),
    "purple": (150, 60, 200),
    "cyan": (40, 200, 220),
    "magenta": (230, 50, 160),
}

# Object classes available to the poster generator, split by visual style.
BORING_OBJECT_CLASSES = ["person", "face", "suit", "chair", "wall", "window", "letter"]
VIVID_OBJECT_CLASSES = [
    "gun", "motorcycle", "explosion", "car", "helicopter", "fire",
    "crowd", "knife", "cityscape", "monster", "robot", "lightning",
]
POSTER_PREDICATES = ["holding", "next_to", "behind", "chasing", "riding", "above"]


@dataclass
class ImageObject:
    """One ground-truth object inside a synthetic image."""

    class_name: str
    bbox: Tuple[int, int, int, int]  # x1, y1, x2, y2
    color_name: str = "gray"
    attributes: Dict[str, str] = field(default_factory=dict)

    @property
    def area(self) -> int:
        x1, y1, x2, y2 = self.bbox
        return max(0, x2 - x1) * max(0, y2 - y1)


@dataclass
class SyntheticImage:
    """A synthetic poster: URI + ground truth + renderable pixels."""

    uri: str
    width: int = 96
    height: int = 128
    background_color: Tuple[int, int, int] = (128, 128, 128)
    objects: List[ImageObject] = field(default_factory=list)
    relationships: List[Tuple[int, str, int]] = field(default_factory=list)
    text_overlay: str = ""
    style: str = "boring"  # ground-truth style label ("boring" | "vivid")
    _pixels: Optional[np.ndarray] = field(default=None, repr=False, compare=False)

    def render_pixels(self) -> np.ndarray:
        """Render (and cache) the poster as an ``H x W x 3`` uint8 array."""
        if self._pixels is not None:
            return self._pixels
        pixels = np.zeros((self.height, self.width, 3), dtype=np.uint8)
        pixels[:, :] = self.background_color
        palette = {**_MUTED_COLORS, **_VIVID_COLORS}
        for obj in self.objects:
            x1, y1, x2, y2 = obj.bbox
            x1, x2 = max(0, x1), min(self.width, x2)
            y1, y2 = max(0, y1), min(self.height, y2)
            if x2 <= x1 or y2 <= y1:
                continue
            color = palette.get(obj.color_name, (200, 200, 200))
            pixels[y1:y2, x1:x2] = color
        self._pixels = pixels
        return pixels

    # -- pixel statistics (what the cheap detector can see) --------------------
    def color_variance(self) -> float:
        """Mean per-channel variance of the rendered pixels."""
        pixels = self.render_pixels().astype(float)
        return float(pixels.var(axis=(0, 1)).mean())

    def saturation(self) -> float:
        """Mean (max-min)/255 channel spread — a cheap 'vividness' proxy."""
        pixels = self.render_pixels().astype(float)
        spread = pixels.max(axis=2) - pixels.min(axis=2)
        return float(spread.mean() / 255.0)

    def coverage(self) -> float:
        """Fraction of the poster covered by objects."""
        total = self.width * self.height
        if total == 0:
            return 0.0
        covered = sum(obj.area for obj in self.objects)
        return min(1.0, covered / total)

    def object_class_names(self) -> List[str]:
        """Ground-truth object class names (with duplicates)."""
        return [obj.class_name for obj in self.objects]


class PosterGenerator:
    """Generates synthetic posters in a "boring" or "vivid" style."""

    def __init__(self, seed: object = 0, width: int = 96, height: int = 128):
        self._rng = SeededRNG(("poster", seed))
        self.width = width
        self.height = height

    def generate(self, title: str, style: str, uri: Optional[str] = None) -> SyntheticImage:
        """Generate one poster.

        Parameters
        ----------
        title:
            Movie title; becomes the text overlay (what OCR can read).
        style:
            ``"boring"`` (plain background, few muted objects) or ``"vivid"``
            (colorful background, many bright action objects).
        uri:
            Optional URI; defaults to a ``file://posters/...`` path.
        """
        if style not in ("boring", "vivid"):
            raise ValueError(f"style must be 'boring' or 'vivid', got {style!r}")
        rng = self._rng.fork(title, style)
        uri = uri or "file://posters/" + "_".join(title.lower().split()) + ".png"
        if style == "boring":
            background_name = rng.choice(sorted(_MUTED_COLORS))
            background = _MUTED_COLORS[background_name]
            object_count = rng.randint(0, 2)
            classes = BORING_OBJECT_CLASSES
            colors = sorted(_MUTED_COLORS)
        else:
            background_name = rng.choice(sorted(_VIVID_COLORS))
            background = _VIVID_COLORS[background_name]
            object_count = rng.randint(4, 8)
            classes = VIVID_OBJECT_CLASSES
            colors = sorted(_VIVID_COLORS)

        objects: List[ImageObject] = []
        for _ in range(object_count):
            class_name = rng.choice(classes)
            w = rng.randint(self.width // 8, self.width // 2)
            h = rng.randint(self.height // 8, self.height // 2)
            x1 = rng.randint(0, max(1, self.width - w))
            y1 = rng.randint(0, max(1, self.height - h))
            color_name = rng.choice(colors)
            objects.append(ImageObject(
                class_name=class_name,
                bbox=(x1, y1, x1 + w, y1 + h),
                color_name=color_name,
                attributes={"color": color_name},
            ))

        relationships: List[Tuple[int, str, int]] = []
        if len(objects) >= 2:
            pair_count = min(len(objects) - 1, rng.randint(1, 3))
            for _ in range(pair_count):
                subject = rng.randint(0, len(objects) - 1)
                target = rng.randint(0, len(objects) - 1)
                if subject == target:
                    continue
                relationships.append((subject, rng.choice(POSTER_PREDICATES), target))

        return SyntheticImage(
            uri=uri,
            width=self.width,
            height=self.height,
            background_color=background,
            objects=objects,
            relationships=relationships,
            text_overlay=title,
            style=style,
        )

"""Benchmark workloads: NL queries plus scripted user behaviour and ground truth.

Each :class:`WorkloadQuery` bundles an NL request, the clarification answers a
scripted user would give, and a function that computes the ground-truth answer
from the corpus labels -- which is what the accuracy side of the baseline and
ablation benchmarks needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.data.mmqa import MovieCorpus


@dataclass
class WorkloadQuery:
    """One NL query with scripted user context and ground truth."""

    name: str
    nl_query: str
    clarification_answers: Dict[str, str] = field(default_factory=dict)
    corrections: List[str] = field(default_factory=list)
    ground_truth: Optional[Callable[[MovieCorpus], List[str]]] = None
    description: str = ""

    def expected_titles(self, corpus: MovieCorpus) -> List[str]:
        """Ground-truth answer (list of titles, best first) for this query."""
        if self.ground_truth is None:
            return []
        return self.ground_truth(corpus)


@dataclass
class Workload:
    """A named list of workload queries."""

    name: str
    queries: List[WorkloadQuery] = field(default_factory=list)

    def __iter__(self):
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)

    def query(self, name: str) -> WorkloadQuery:
        """Look up a query by name."""
        for query in self.queries:
            if query.name == name:
                return query
        raise KeyError(f"no workload query named {name!r}")


# ---------------------------------------------------------------------------
# Ground-truth functions
# ---------------------------------------------------------------------------
def _gt_flagship(corpus: MovieCorpus) -> List[str]:
    """Exciting movies (0.7) + recency (0.3), boring posters only, best first."""
    return [m.title for m in corpus.ground_truth_ranking(0.7, 0.3, boring_only=True)]


def _gt_flagship_no_recency(corpus: MovieCorpus) -> List[str]:
    """Exciting movies, boring posters only, without the recency correction."""
    return [m.title for m in corpus.ground_truth_ranking(1.0, 0.0, boring_only=True)]


def _gt_exciting_all(corpus: MovieCorpus) -> List[str]:
    """All movies ranked purely by excitement."""
    ranked = sorted(corpus.movies, key=lambda m: (-m.gt_excitement, m.title))
    return [m.title for m in ranked]


def _gt_boring_posters(corpus: MovieCorpus) -> List[str]:
    """Titles of movies whose posters are boring (unordered set semantics)."""
    return sorted(m.title for m in corpus.movies if m.gt_boring_poster)


def _gt_recent_exciting(corpus: MovieCorpus) -> List[str]:
    """Movies released after 2000 with genuinely exciting plots."""
    hits = [m for m in corpus.movies if m.year > 2000 and m.gt_excitement >= 0.6]
    hits.sort(key=lambda m: (-m.gt_excitement, m.title))
    return [m.title for m in hits]


def _gt_calm_old(corpus: MovieCorpus) -> List[str]:
    """Movies released before 1995 with calm plots."""
    hits = [m for m in corpus.movies if m.year < 1995 and m.gt_excitement <= 0.4]
    hits.sort(key=lambda m: (m.year, m.title))
    return [m.title for m in hits]


# ---------------------------------------------------------------------------
# Default workload
# ---------------------------------------------------------------------------
FLAGSHIP_QUERY = (
    "Sort the films in the table by how exciting they are, but the poster should be 'boring'."
)

FLAGSHIP_CLARIFICATION = "the movie plot contains scenes that are uncommon (e.g., gun fight) in real life"
FLAGSHIP_CORRECTION = "I prefer more recent movies as well when scoring"


def build_default_workload() -> Workload:
    """The default benchmark workload (flagship query plus five more)."""
    queries = [
        WorkloadQuery(
            name="flagship_exciting_boring",
            nl_query=FLAGSHIP_QUERY,
            clarification_answers={"exciting": FLAGSHIP_CLARIFICATION},
            corrections=[FLAGSHIP_CORRECTION],
            ground_truth=_gt_flagship,
            description="The paper's running example (Figures 1, 4, 5, 6).",
        ),
        WorkloadQuery(
            name="flagship_without_correction",
            nl_query=FLAGSHIP_QUERY,
            clarification_answers={"exciting": FLAGSHIP_CLARIFICATION},
            corrections=[],
            ground_truth=_gt_flagship_no_recency,
            description="Flagship query without the reactive recency correction.",
        ),
        WorkloadQuery(
            name="rank_all_by_excitement",
            nl_query="Rank every film by how exciting its plot is.",
            clarification_answers={"exciting": FLAGSHIP_CLARIFICATION},
            corrections=[],
            ground_truth=_gt_exciting_all,
            description="Ranking without the image-side filter.",
        ),
        WorkloadQuery(
            name="find_boring_posters",
            nl_query="Which films have a boring poster?",
            clarification_answers={},
            corrections=[],
            ground_truth=_gt_boring_posters,
            description="Pure image-side classification query.",
        ),
        WorkloadQuery(
            name="recent_exciting",
            nl_query="List films released after 2000 whose plots are exciting.",
            clarification_answers={"exciting": FLAGSHIP_CLARIFICATION},
            corrections=[],
            ground_truth=_gt_recent_exciting,
            description="Relational predicate combined with a semantic text predicate.",
        ),
        WorkloadQuery(
            name="calm_classics",
            nl_query="Show films released before 1995 with calm, quiet plots.",
            clarification_answers={},
            corrections=[],
            ground_truth=_gt_calm_old,
            description="Relational predicate combined with the opposite semantic predicate.",
        ),
    ]
    return Workload(name="default", queries=queries)


# ---------------------------------------------------------------------------
# Accuracy metrics shared by the benchmarks
# ---------------------------------------------------------------------------
def ranking_accuracy(predicted: Sequence[str], expected: Sequence[str], top_k: int = 5) -> float:
    """Top-k agreement between a predicted and an expected ranking.

    Measures the fraction of the first ``top_k`` expected items that appear in
    the first ``top_k`` predicted items, which is tolerant of ties deeper in
    the ranking while still rewarding getting the head right.
    """
    if not expected:
        return 1.0 if not predicted else 0.0
    k = min(top_k, len(expected))
    expected_head = list(expected[:k])
    predicted_head = set(predicted[:k])
    hits = sum(1 for title in expected_head if title in predicted_head)
    return hits / k


def set_f1(predicted: Sequence[str], expected: Sequence[str]) -> float:
    """F1 between predicted and expected sets of titles."""
    predicted_set, expected_set = set(predicted), set(expected)
    if not predicted_set and not expected_set:
        return 1.0
    if not predicted_set or not expected_set:
        return 0.0
    true_positives = len(predicted_set & expected_set)
    if true_positives == 0:
        return 0.0
    precision = true_positives / len(predicted_set)
    recall = true_positives / len(expected_set)
    return 2 * precision * recall / (precision + recall)

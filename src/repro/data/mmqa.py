"""An MMQA-style synthetic movie corpus.

The paper's running example executes over MMQA [Talmor et al. 2021]: a table of
movies, plot text, and poster images.  This module generates a corpus with the
same shape and with ground-truth labels, and always includes the two movies
the paper's Figure 6 reports as the top results (*Guilty by Suspicion*, 1991
and *Clean and Sober*, 1988), constructed so that an excitement + recency
scoring pipeline restricted to boring posters ranks them in the paper's order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.data.images import PosterGenerator, SyntheticImage
from repro.data.text import PlotGenerator
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import DataType
from repro.utils.seed import SeededRNG


@dataclass
class MovieRecord:
    """One movie with its multimodal payload and ground-truth labels."""

    movie_id: int
    title: str
    year: int
    genre: str
    plot: str
    poster: SyntheticImage
    gt_excitement: float
    gt_boring_poster: bool

    @property
    def document_id(self) -> int:
        """Document id of the plot text (one document per movie)."""
        return self.movie_id

    @property
    def poster_uri(self) -> str:
        return self.poster.uri


# Hand-crafted plots for the two Figure 6 movies: they contain the vocabulary
# the excitement pipeline looks for ("accused", "threat", "interrogation",
# "suspicion", ...), so the reproduction of the paper's example does not hinge
# on random template draws.
_GUILTY_PLOT = (
    "Guilty by Suspicion follows David Merrill, a celebrated director accused of "
    "disloyalty during the blacklist. Under constant threat, Merrill is dragged into "
    "a brutal interrogation and ordered to name names or lose everything. Friends "
    "are blackmailed, careers are killed, and one desperate writer dies after the "
    "committee's attack on his family. Merrill becomes a fugitive in his own town, "
    "followed, threatened, and facing ruin, until a final confrontation where he "
    "refuses to surrender despite the danger."
)

_CLEAN_PLOT = (
    "Clean and Sober follows Daryl Poynter, a real-estate broker who hides in a "
    "clinic after a night that leaves a young woman dead from an overdose and money "
    "stolen from his firm. Threatened with arrest and chased by creditors, he is "
    "accused of theft while the criminal investigation closes in. A dangerous "
    "relapse nearly kills him, a dealer attacks him over an unpaid debt, and the "
    "threat of prison hangs over every escape he attempts before the final "
    "confrontation with the police."
)

# Filler movie titles (year, genre, excitement band, poster style) -- chosen so
# that no boring-poster filler outranks the two Figure 6 movies on a combined
# excitement + recency score, while vivid-poster fillers can be arbitrarily
# exciting (the boring filter removes them).
_FILLER_SPECS = [
    # title, year, genre, gt_excitement, poster_style, themes
    ("Midnight Circuit", 2019, "action", 0.95, "vivid", ["exciting"]),
    ("Iron Meridian", 2015, "action", 0.9, "vivid", ["exciting"]),
    ("The Last Dispatch", 2008, "thriller", 0.85, "vivid", ["exciting"]),
    ("Harbor of Glass", 2012, "drama", 0.15, "boring", ["calm"]),
    ("A Quiet Ledger", 2003, "drama", 0.1, "boring", ["calm"]),
    ("Letters to Anna", 1996, "romance", 0.15, "boring", ["romance", "calm"]),
    ("The Greenhouse Year", 2021, "drama", 0.1, "boring", ["calm"]),
    ("Two Tickets Home", 1985, "comedy", 0.2, "boring", ["comedy", "calm"]),
    ("Standing Water", 1972, "drama", 0.1, "boring", ["calm"]),
    ("Copper Canyon Run", 1999, "western", 0.8, "vivid", ["exciting"]),
    ("Night of the Meteor", 2016, "scifi", 0.9, "vivid", ["exciting"]),
    ("The Cartographer", 1963, "drama", 0.2, "boring", ["calm"]),
    ("Sunday Painters", 2005, "comedy", 0.1, "boring", ["comedy", "calm"]),
    ("Redline Protocol", 2023, "action", 1.0, "vivid", ["exciting"]),
    ("The Archivist", 1978, "drama", 0.3, "boring", ["calm"]),
    ("Glass Harvest", 1990, "drama", 0.25, "boring", ["calm"]),
    ("Parallel Hearts", 2010, "romance", 0.15, "boring", ["romance"]),
    ("Thunder Basin", 1994, "action", 0.85, "vivid", ["exciting"]),
]


@dataclass
class MovieCorpus:
    """A collection of movies plus lookup helpers and relational exports."""

    movies: List[MovieRecord] = field(default_factory=list)
    seed: int = 0

    # -- lookups ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.movies)

    def __iter__(self):
        return iter(self.movies)

    def by_title(self, title: str) -> Optional[MovieRecord]:
        """Find a movie by exact title."""
        for movie in self.movies:
            if movie.title == title:
                return movie
        return None

    def by_id(self, movie_id: int) -> Optional[MovieRecord]:
        """Find a movie by id."""
        for movie in self.movies:
            if movie.movie_id == movie_id:
                return movie
        return None

    def image_by_uri(self, uri: str) -> Optional[SyntheticImage]:
        """Resolve a poster URI back to its image object (the 'file on disk')."""
        for movie in self.movies:
            if movie.poster.uri == uri:
                return movie.poster
        return None

    def document_text(self, document_id: int) -> Optional[str]:
        """Plot text of one document id."""
        movie = self.by_id(document_id)
        return movie.plot if movie else None

    @property
    def year_range(self) -> Sequence[int]:
        years = [m.year for m in self.movies]
        return (min(years), max(years)) if years else (0, 0)

    # -- relational export -----------------------------------------------------------
    def to_tables(self) -> Dict[str, Table]:
        """Export the corpus as the three MMQA-shaped base relations.

        * ``movie_table(movie_id, title, year, genre)``
        * ``film_plot(movie_id, did, plot)``
        * ``poster_images(movie_id, image_uri, image)`` -- ``image`` is a BLOB
          column holding the in-memory image object (standing in for reading
          the file at ``image_uri``).
        """
        movie_schema = Schema([
            Column("movie_id", DataType.INTEGER, nullable=False, description="movie identifier"),
            Column("title", DataType.TEXT, nullable=False, description="movie title"),
            Column("year", DataType.INTEGER, description="release year"),
            Column("genre", DataType.TEXT, description="primary genre"),
        ])
        plot_schema = Schema([
            Column("movie_id", DataType.INTEGER, nullable=False),
            Column("did", DataType.INTEGER, nullable=False, description="plot document id"),
            Column("plot", DataType.TEXT, description="plot summary text"),
        ])
        poster_schema = Schema([
            Column("movie_id", DataType.INTEGER, nullable=False),
            Column("image_uri", DataType.TEXT, description="poster file path"),
            Column("image", DataType.BLOB, description="poster image payload"),
        ])
        movie_table = Table("movie_table", movie_schema,
                            description="Movie metadata crawled from the synthetic MMQA corpus.")
        film_plot = Table("film_plot", plot_schema,
                          description="Plot summary text, one document per movie.")
        poster_images = Table("poster_images", poster_schema,
                              description="Poster images, one per movie, stored by file path.")
        for movie in self.movies:
            movie_table.insert({
                "movie_id": movie.movie_id,
                "title": movie.title,
                "year": movie.year,
                "genre": movie.genre,
            })
            film_plot.insert({
                "movie_id": movie.movie_id,
                "did": movie.document_id,
                "plot": movie.plot,
            })
            poster_images.insert({
                "movie_id": movie.movie_id,
                "image_uri": movie.poster.uri,
                "image": movie.poster,
            })
        return {
            "movie_table": movie_table,
            "film_plot": film_plot,
            "poster_images": poster_images,
        }

    # -- ground truth -----------------------------------------------------------------
    def ground_truth_boring(self) -> Dict[int, bool]:
        """movie_id -> ground-truth boring-poster flag."""
        return {m.movie_id: m.gt_boring_poster for m in self.movies}

    def ground_truth_ranking(self, excitement_weight: float = 0.7,
                             recency_weight: float = 0.3,
                             boring_only: bool = True) -> List[MovieRecord]:
        """The ground-truth ranking for the paper's flagship query.

        Scores each movie with ``excitement_weight * gt_excitement +
        recency_weight * normalized_year`` and (optionally) keeps only movies
        with boring posters, sorted best first.
        """
        low, high = self.year_range
        span = max(1, high - low)
        candidates = [m for m in self.movies if (m.gt_boring_poster or not boring_only)]
        scored = []
        for movie in candidates:
            recency = (movie.year - low) / span
            score = excitement_weight * movie.gt_excitement + recency_weight * recency
            scored.append((score, movie))
        scored.sort(key=lambda pair: (-pair[0], pair[1].title))
        return [movie for _, movie in scored]


def build_movie_corpus(size: int = 20, seed: object = 0) -> MovieCorpus:
    """Build a corpus of roughly ``size`` movies, always containing the two
    Figure 6 movies.

    Parameters
    ----------
    size:
        Target number of movies (minimum 2).  Values above the built-in filler
        list are filled with additional generated movies.
    seed:
        Seed controlling poster layout and filler plot text.
    """
    size = max(2, size)
    rng = SeededRNG(("corpus", seed))
    posters = PosterGenerator(seed=seed)
    plots = PlotGenerator(seed=seed)
    movies: List[MovieRecord] = []

    # The two Figure 6 movies, with hand-crafted plots and boring posters.
    movies.append(MovieRecord(
        movie_id=1,
        title="Guilty by Suspicion",
        year=1991,
        genre="drama",
        plot=_GUILTY_PLOT,
        poster=posters.generate("Guilty by Suspicion", "boring"),
        gt_excitement=0.95,
        gt_boring_poster=True,
    ))
    movies.append(MovieRecord(
        movie_id=2,
        title="Clean and Sober",
        year=1988,
        genre="drama",
        plot=_CLEAN_PLOT,
        poster=posters.generate("Clean and Sober", "boring"),
        gt_excitement=0.80,
        gt_boring_poster=True,
    ))

    next_id = 3
    filler_index = 0
    while len(movies) < size:
        if filler_index < len(_FILLER_SPECS):
            title, year, genre, excitement, style, themes = _FILLER_SPECS[filler_index]
            filler_index += 1
        else:
            # Generate extra movies beyond the hand-written filler list.  Boring
            # posters stay low-excitement so the Figure 6 ordering holds.
            index = len(movies)
            style = "vivid" if rng.chance(0.5) else "boring"
            excitement = rng.uniform(0.7, 1.0) if style == "vivid" else rng.uniform(0.05, 0.35)
            year = rng.randint(1950, 2024)
            genre = rng.choice(["drama", "action", "comedy", "romance", "thriller"])
            themes = ["exciting"] if style == "vivid" else ["calm"]
            title = f"Synthetic Feature {index}"
        plot = plots.generate(title, excitement, themes=themes)
        movies.append(MovieRecord(
            movie_id=next_id,
            title=title,
            year=year,
            genre=genre,
            plot=plot,
            poster=posters.generate(title, style),
            gt_excitement=excitement,
            gt_boring_poster=(style == "boring"),
        ))
        next_id += 1

    return MovieCorpus(movies=movies[:size] if size >= 2 else movies, seed=SeededRNG(seed).seed)

"""The durable FAO skill store (persist, retrieve, revalidate generated code).

The paper's codegen → profile → critic pipeline validates every function from
scratch in each process.  This package makes validated implementations
*skills*: durable records keyed by a full signature fingerprint, retrieved
exactly or by embedding similarity, and revalidated on live sampled data
before they are ever registered again.  See README "Durable skill store".
"""

from repro.skills.backends import (
    FileBackend,
    MemoryBackend,
    SkillBackend,
    SQLiteBackend,
    backend_from_spec,
)
from repro.skills.record import (
    STATUS_ACTIVE,
    STATUS_DEMOTED,
    SkillRecord,
    node_fingerprint,
    schema_fingerprint,
    signature_text,
)
from repro.skills.retrieval import RetrievalIndex
from repro.skills.validate import RevalidationHarness, RevalidationOutcome
from repro.skills.store import SkillHit, SkillStore

__all__ = [
    "FileBackend",
    "MemoryBackend",
    "SkillBackend",
    "SQLiteBackend",
    "backend_from_spec",
    "STATUS_ACTIVE",
    "STATUS_DEMOTED",
    "SkillRecord",
    "node_fingerprint",
    "schema_fingerprint",
    "signature_text",
    "RetrievalIndex",
    "RevalidationHarness",
    "RevalidationOutcome",
    "SkillHit",
    "SkillStore",
]

"""Revalidation harness: a retrieved skill is never registered blind.

Before the optimizer accepts a stored function, the harness (1) checks the
stored source still parses and still matches what its template family/variant
rebuilds today (an exact-hit integrity check that catches corrupted or stale
records), (2) rebuilds the executable body from the implementation library
(closures cannot be persisted, so the source of truth for *behaviour* is the
template plus the stored parameters), and (3) re-executes the function on a
sampled slice of the live inputs — watched by the execution monitor when one
is enabled — and re-runs the critic whenever the stored verdict does not
already vouch for semantics.  Any failure falls through to fresh codegen.
"""

from __future__ import annotations

import ast
import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.datamodel.lineage import DependencyPattern
from repro.errors import FunctionExecutionError
from repro.executor.monitor import ExecutionMonitor
from repro.fao.critic import Critic
from repro.fao.function import FunctionContext, GeneratedFunction
from repro.fao.library import ImplementationLibrary, ImplementationSpec
from repro.fao.profiler import ProfileResult, Profiler
from repro.fao.signature import FunctionSignature
from repro.parser.logical_plan import LogicalPlanNode
from repro.relational.table import Table
from repro.skills.record import SkillRecord, strip_patch_comments
from repro.utils.timer import Timer


@dataclass
class RevalidationOutcome:
    """What the harness concluded about one retrieved candidate."""

    ok: bool
    reason: str = ""
    function: Optional[GeneratedFunction] = None
    profile: Optional[ProfileResult] = None
    output: Optional[Table] = None
    checked_semantics: bool = False


class RevalidationHarness:
    """Rebuilds and re-verifies stored skills against live data."""

    def __init__(self, library: Optional[ImplementationLibrary] = None):
        self.library = library or ImplementationLibrary()

    # -- rebuild ---------------------------------------------------------------
    def _spec_for(self, family: str, variant: str) -> Optional[ImplementationSpec]:
        try:
            specs = self.library.candidates(family)
        except Exception:
            return None
        for spec in specs:
            if spec.variant == variant:
                return spec
        return None

    def rebuild(self, record: SkillRecord, node: LogicalPlanNode,
                exact: bool) -> Tuple[Optional[GeneratedFunction], str]:
        """Rebuild an executable function from a stored record.

        Returns ``(function, "")`` on success or ``(None, reason)`` when the
        record is unusable (unparseable source, vanished template variant, or
        an exact record whose source no longer matches its rebuild).
        """
        stored_source = strip_patch_comments(record.source_text)
        try:
            ast.parse(stored_source)
        except SyntaxError as error:
            return None, f"stored source no longer parses: {error}"

        spec = self._spec_for(record.family, record.variant)
        if spec is None:
            return None, (f"template {record.family}/{record.variant} "
                          "is no longer in the implementation library")

        # Exact hits replay the parameters the coder settled on (post-repair,
        # faults stripped); near matches re-parameterize for the current node.
        if exact:
            parameters = dict(record.function_parameters)
        else:
            parameters = dict(node.parameters)
        build_node = dataclasses.replace(node, parameters=parameters)
        try:
            body, rebuilt_source = spec.build(build_node)
        except Exception as error:  # template bug or incompatible parameters
            return None, f"template rebuild failed: {error}"

        if exact and rebuilt_source != stored_source:
            return None, "stored source diverged from its template rebuild"

        function = GeneratedFunction(
            signature=FunctionSignature.from_node(node),
            body=body,
            source_text=record.source_text if exact else rebuilt_source,
            implementation_kind=spec.implementation_kind,
            variant=spec.variant,
            dependency_pattern=DependencyPattern.from_string(node.dependency_pattern),
            parameters=parameters,
            accuracy_prior=spec.accuracy_prior,
            cost_per_row_tokens=spec.cost_per_row_tokens,
            batchable=spec.batchable,
            batch_setup_tokens=spec.batch_setup_tokens,
        )
        return function, ""

    # -- revalidate ------------------------------------------------------------
    def revalidate(self, record: SkillRecord, function: GeneratedFunction,
                   node: LogicalPlanNode, inputs: Dict[str, Table],
                   context: FunctionContext, profiler: Profiler, critic: Critic,
                   monitor: Optional[ExecutionMonitor] = None,
                   exact: bool = True,
                   sample_size: Optional[int] = None) -> RevalidationOutcome:
        """Re-execute a rebuilt skill on sampled live inputs and re-judge it.

        Mirrors the profiler's sampling discipline (primary input truncated,
        side relations passed whole) so the measured profile is comparable to
        a fresh profiling run.  The critic review is skipped only for exact
        hits whose stored verdict already checked semantics — that is what
        makes a warm restart nearly free of model calls.
        """
        size = sample_size or profiler.sample_size
        primary = function.signature.inputs[0] if function.signature.inputs else None
        sampled: Dict[str, Table] = {}
        for name, table in inputs.items():
            if name == primary and len(table) > size:
                sampled[name] = table.head_table(size)
            else:
                sampled[name] = table
        rows_in = len(sampled[primary]) if primary and primary in sampled else 0

        profile = ProfileResult(function_name=function.name, variant=function.variant,
                                success=False, rows_in=rows_in)
        if primary and primary in sampled:
            profile.input_sample = sampled[primary].head(size)

        meter = profiler.models.cost_meter
        marker = meter.snapshot()
        timer = Timer()
        try:
            with timer:
                output = function.execute(sampled, context)
        except FunctionExecutionError as error:
            profile.runtime_s = timer.elapsed
            profile.error = str(error)
            profile.tokens_used = meter.tokens_since(marker)
            return RevalidationOutcome(
                ok=False, reason=f"sampled re-execution failed: {error}",
                function=function, profile=profile)

        profile.success = True
        profile.runtime_s = timer.elapsed
        profile.rows_out = len(output)
        profile.output_sample = output.head(size)
        profile.tokens_used = meter.tokens_since(marker)
        function.profile_runtime_s = profile.runtime_s

        if monitor is not None:
            anomalies = monitor.inspect(node, function, sampled, output)
            if anomalies:
                reason = "; ".join(a.message for a in anomalies)
                return RevalidationOutcome(
                    ok=False, reason=f"monitor flagged the re-execution: {reason}",
                    function=function, profile=profile)

        already_checked = bool(record.verdict.get("ok")) and \
            bool(record.verdict.get("checked_semantics"))
        checked_now = False
        if not exact or not already_checked:
            verdict = critic.review(function, profile, node)
            checked_now = True
            if not verdict.ok:
                return RevalidationOutcome(
                    ok=False, reason=f"critic rejected the candidate: {verdict.hint}",
                    function=function, profile=profile)

        return RevalidationOutcome(ok=True, function=function, profile=profile,
                                   output=output,
                                   checked_semantics=already_checked or checked_now)

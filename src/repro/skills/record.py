"""Skill records: the durable form of one validated FAO implementation.

A record captures everything needed to decide whether a stored function still
applies to a new logical-plan node (the *signature fingerprint*: node kind,
predicate text, parameters, input/output schema shape, lexicon digest) and to
rebuild it without a codegen model call (template family + variant + the
post-repair parameters the coder settled on), plus the cached profile, the
critic verdict, and provenance for auditing.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Tuple

from repro.fao.function import GeneratedFunction, _is_plain
from repro.gateway.fingerprint import canonicalize
from repro.parser.logical_plan import LogicalPlanNode
from repro.relational.table import Table
from repro.utils.seed import stable_hash

#: Record statuses: active records are retrieval candidates; demoted records
#: (failed revalidation or evicted by the production repair loop) are kept for
#: auditing but never served again — the next prepare regenerates instead.
STATUS_ACTIVE = "active"
STATUS_DEMOTED = "demoted"

#: Comment prefix the coder appends to repaired sources ("# patched: ...").
#: Stripped before parse checks and rebuild comparisons so a repaired function
#: still matches its template rebuild.
_PATCH_COMMENT_PREFIX = "# "


def plain_parameters(parameters: Dict[str, Any]) -> Dict[str, Any]:
    """The JSON-serializable subset of a parameter dict."""
    return {key: value for key, value in parameters.items() if _is_plain(value)}


def strip_patch_comments(source_text: str) -> str:
    """Drop the coder's trailing ``# patched: ...`` annotation lines."""
    lines = source_text.splitlines()
    while lines and lines[-1].startswith(_PATCH_COMMENT_PREFIX):
        lines.pop()
    return "\n".join(lines) + ("\n" if lines else "")


def schema_fingerprint(inputs: Dict[str, Table]) -> str:
    """A process-stable digest of the input tables' names and column shapes.

    Row contents are deliberately excluded: a skill applies to any data with
    the same relational shape, which is what makes warm restarts and
    cross-corpus reuse possible.
    """
    shape: Tuple[Any, ...] = tuple(
        (name, tuple((column.name, column.data_type.value)
                     for column in inputs[name].schema.columns))
        for name in sorted(inputs))
    return f"{stable_hash('schema', shape):016x}"


def node_fingerprint(family: str, node: LogicalPlanNode,
                     schema_fp: str, lexicon_fp: str) -> str:
    """The full signature fingerprint used for exact skill lookup."""
    digest = stable_hash(
        "skill", family, node.name, node.description, tuple(node.inputs),
        node.output, node.dependency_pattern,
        canonicalize(plain_parameters(node.parameters)), schema_fp, lexicon_fp)
    return f"{digest:016x}"


def signature_text(family: str, node: LogicalPlanNode) -> str:
    """The text embedded for near-match retrieval (family + predicate)."""
    return f"{family} {node.name}: {node.description}"


@dataclass
class SkillRecord:
    """One stored, validated FAO implementation."""

    fingerprint: str
    family: str
    variant: str
    node: Dict[str, Any]
    function_parameters: Dict[str, Any]
    source_text: str
    schema_fingerprint: str
    lexicon_fingerprint: str
    profile: Dict[str, Any]
    verdict: Dict[str, Any]
    provenance: Dict[str, Any] = field(default_factory=dict)
    status: str = STATUS_ACTIVE
    uses: int = 0
    last_error: str = ""

    @classmethod
    def build(cls, *, fingerprint: str, family: str, node: LogicalPlanNode,
              function: GeneratedFunction, schema_fp: str, lexicon_fp: str,
              profile: Dict[str, Any], verdict: Dict[str, Any],
              provenance: Dict[str, Any]) -> "SkillRecord":
        """Assemble a record from a freshly validated function."""
        return cls(
            fingerprint=fingerprint,
            family=family,
            variant=function.variant,
            node={
                "name": node.name,
                "description": node.description,
                "inputs": list(node.inputs),
                "output": node.output,
                "dependency_pattern": node.dependency_pattern,
                "parameters": plain_parameters(node.parameters),
            },
            function_parameters=plain_parameters(function.parameters),
            source_text=function.source_text,
            schema_fingerprint=schema_fp,
            lexicon_fingerprint=lexicon_fp,
            profile=dict(profile),
            verdict=dict(verdict),
            provenance=dict(provenance),
        )

    @property
    def active(self) -> bool:
        return self.status == STATUS_ACTIVE

    @property
    def signature_text(self) -> str:
        return f"{self.family} {self.node.get('name', '')}: {self.node.get('description', '')}"

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SkillRecord":
        known = set(cls.__dataclass_fields__)
        return cls(**{key: value for key, value in payload.items() if key in known})

    def describe(self) -> str:
        return (f"skill {self.fingerprint} [{self.family}/{self.variant}] "
                f"{self.node.get('name', '?')} ({self.status}, uses={self.uses})")

"""Pluggable persistence backends for the skill store.

One abstract key/value interface with three implementations: in-memory (the
default — durable only for the process lifetime), an atomic one-file-per-key
JSON directory, and SQLite.  The interface is deliberately minimal and
schema-free (string key, JSON-plain dict value) so other caches — the profile
cache today, potentially the gateway cache per the sharding roadmap item —
can persist through the same abstraction.

The file backend doubles as the single persistence path for generated
function *sources*: ``put_source`` writes the legacy workspace layout
(``<dir>/<function>/v<N>.py.txt`` plus a ``v<N>.json`` metadata sidecar), so
``KathDBConfig.workspace`` is now just a file backend mounted at that path.
"""

from __future__ import annotations

import json
import re
import sqlite3
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, TYPE_CHECKING, Union

from repro.utils.io import atomic_write_text

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (fao imports us)
    from repro.fao.function import GeneratedFunction

_UNSAFE_KEY_CHARS = re.compile(r"[^A-Za-z0-9._-]")


class SkillBackend:
    """Abstract durable key/value storage for JSON-plain records."""

    kind = "abstract"
    #: Filesystem location backing this store, when there is one.
    location: Optional[Path] = None

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def put(self, key: str, value: Dict[str, Any]) -> None:
        raise NotImplementedError

    def delete(self, key: str) -> bool:
        raise NotImplementedError

    def keys(self) -> List[str]:
        raise NotImplementedError

    def clear(self) -> None:
        for key in self.keys():
            self.delete(key)

    def close(self) -> None:
        """Release any held resources (no-op for most backends)."""

    def put_source(self, function: "GeneratedFunction") -> None:
        """Persist a generated function's source text (no-op by default)."""

    def describe(self) -> str:
        where = f" at {self.location}" if self.location is not None else ""
        return f"{self.kind} backend{where}: {len(self.keys())} records"


class MemoryBackend(SkillBackend):
    """Process-local dict storage — the zero-configuration default."""

    kind = "memory"

    def __init__(self) -> None:
        self._records: Dict[str, Dict[str, Any]] = {}
        self._lock = threading.Lock()

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            value = self._records.get(key)
            return json.loads(json.dumps(value)) if value is not None else None

    def put(self, key: str, value: Dict[str, Any]) -> None:
        with self._lock:
            self._records[key] = json.loads(json.dumps(value))

    def delete(self, key: str) -> bool:
        with self._lock:
            return self._records.pop(key, None) is not None

    def keys(self) -> List[str]:
        with self._lock:
            return list(self._records)


class FileBackend(SkillBackend):
    """One atomically written JSON document per key under a directory.

    Records live under ``<directory>/records/<key>.skill`` (the original key
    travels inside the envelope so sanitized filenames stay reversible);
    function sources use the legacy workspace layout next to them.
    """

    kind = "file"

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.location = self.directory
        self.records_dir = self.directory / "records"
        self.records_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    def _path(self, key: str) -> Path:
        return self.records_dir / f"{_UNSAFE_KEY_CHARS.sub('_', key)}.skill"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        record = payload.get("record")
        return record if isinstance(record, dict) else None

    def put(self, key: str, value: Dict[str, Any]) -> None:
        envelope = {"key": key, "record": value}
        with self._lock:
            atomic_write_text(self._path(key), json.dumps(envelope, indent=2))

    def delete(self, key: str) -> bool:
        path = self._path(key)
        with self._lock:
            try:
                path.unlink()
                return True
            except OSError:
                return False

    def keys(self) -> List[str]:
        found = []
        for path in sorted(self.records_dir.glob("*.skill")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            key = payload.get("key")
            if isinstance(key, str):
                found.append(key)
        return found

    def put_source(self, function: "GeneratedFunction") -> None:
        directory = self.directory / function.name
        atomic_write_text(directory / f"v{function.version}.py.txt", function.source_text)
        atomic_write_text(directory / f"v{function.version}.json",
                          json.dumps(function.metadata(), indent=2))


class SQLiteBackend(SkillBackend):
    """A single-table SQLite store — durable, queryable, one file."""

    kind = "sqlite"

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.location = self.path
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._connection = sqlite3.connect(str(self.path), check_same_thread=False)
        with self._lock:
            self._connection.execute(
                "CREATE TABLE IF NOT EXISTS skills (key TEXT PRIMARY KEY, value TEXT NOT NULL)")
            self._connection.commit()

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            row = self._connection.execute(
                "SELECT value FROM skills WHERE key = ?", (key,)).fetchone()
        if row is None:
            return None
        try:
            value = json.loads(row[0])
        except json.JSONDecodeError:
            return None
        return value if isinstance(value, dict) else None

    def put(self, key: str, value: Dict[str, Any]) -> None:
        payload = json.dumps(value)
        with self._lock:
            self._connection.execute(
                "INSERT INTO skills (key, value) VALUES (?, ?) "
                "ON CONFLICT(key) DO UPDATE SET value = excluded.value", (key, payload))
            self._connection.commit()

    def delete(self, key: str) -> bool:
        with self._lock:
            cursor = self._connection.execute("DELETE FROM skills WHERE key = ?", (key,))
            self._connection.commit()
            return cursor.rowcount > 0

    def keys(self) -> List[str]:
        with self._lock:
            rows = self._connection.execute("SELECT key FROM skills ORDER BY key").fetchall()
        return [row[0] for row in rows]

    def close(self) -> None:
        with self._lock:
            self._connection.close()


def backend_from_spec(kind: str, path: Optional[Union[str, Path]] = None) -> SkillBackend:
    """Build a backend from the (kind, path) pair the config validates."""
    if kind == "memory":
        return MemoryBackend()
    if path is None:
        raise ValueError(f"skill store backend {kind!r} requires a path")
    if kind == "file":
        return FileBackend(path)
    if kind == "sqlite":
        return SQLiteBackend(path)
    raise ValueError(f"unknown skill store backend {kind!r}; "
                     "expected 'memory', 'file', or 'sqlite'")

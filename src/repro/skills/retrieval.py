"""Retrieval over the skill store: exact fingerprint hits, then near matches.

Exact lookup keys on the full signature fingerprint (family, predicate text,
parameters, schema shape, lexicon digest) — a hit means "this exact node was
compiled and validated before".  When that misses, near-match retrieval
embeds the node's signature text and scans active same-family records by
cosine similarity, surfacing a previously validated template choice for a
*similar* predicate; the revalidation harness then decides whether it
actually transfers.  Embeddings go through ``EmbeddingModel`` on the shared
suite, so routed sessions get gateway caching/batching for free.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.models.base import ModelSuite
from repro.models.embeddings import cosine_similarity
from repro.skills.backends import SkillBackend
from repro.skills.record import SkillRecord

#: Key prefix separating skill records from other tenants of the backend
#: (the profile cache stores its payload under a bare ``profiles`` key).
SKILL_KEY_PREFIX = "skill:"


def record_key(fingerprint: str) -> str:
    return f"{SKILL_KEY_PREFIX}{fingerprint}"


class RetrievalIndex:
    """Exact + embedding-similarity lookup over one backend's records."""

    def __init__(self, backend: SkillBackend, threshold: float = 0.9):
        self.backend = backend
        self.threshold = threshold

    def load(self, fingerprint: str) -> Optional[SkillRecord]:
        """Load a record by fingerprint regardless of status."""
        payload = self.backend.get(record_key(fingerprint))
        if payload is None:
            return None
        try:
            return SkillRecord.from_dict(payload)
        except TypeError:
            return None

    def exact(self, fingerprint: str) -> Optional[SkillRecord]:
        """An active record for exactly this signature fingerprint."""
        record = self.load(fingerprint)
        if record is None or not record.active:
            return None
        return record

    def active_records(self, family: Optional[str] = None) -> List[SkillRecord]:
        """All active records, optionally restricted to one template family."""
        records = []
        for key in self.backend.keys():
            if not key.startswith(SKILL_KEY_PREFIX):
                continue
            record = self.load(key[len(SKILL_KEY_PREFIX):])
            if record is None or not record.active:
                continue
            if family is not None and record.family != family:
                continue
            records.append(record)
        return records

    def near(self, family: str, query_text: str,
             models: ModelSuite) -> Optional[Tuple[SkillRecord, float]]:
        """The most similar active same-family record above the threshold."""
        candidates = self.active_records(family=family)
        if not candidates:
            return None
        query_vector = models.embeddings.embed_text(query_text, purpose="skill_retrieval")
        best: Optional[Tuple[SkillRecord, float]] = None
        for record in candidates:
            vector = models.embeddings.embed_text(record.signature_text,
                                                  purpose="skill_retrieval")
            score = cosine_similarity(query_vector, vector)
            if best is None or score > best[1]:
                best = (record, score)
        if best is None or best[1] < self.threshold:
            return None
        return best

"""The durable FAO skill store: lookup, validate, register, demote.

``SkillStore`` ties the pieces together: the persistence backend holds the
records, the retrieval index finds exact and near-match candidates, and the
revalidation harness decides whether a candidate may be registered.  The
optimizer consults :meth:`lookup` before generating code and calls
:meth:`put` after the fresh codegen → profile → critic loop accepts an
implementation; the execution engine reports repair-loop evictions through
:meth:`record_production_failure`, which demotes the backing record so the
next prepare regenerates through the critic instead of reusing bad code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.fao.critic import Critic, CriticVerdict
from repro.fao.function import FunctionContext, GeneratedFunction
from repro.fao.profiler import ProfileResult, Profiler
from repro.executor.monitor import ExecutionMonitor
from repro.fao.library import ImplementationLibrary
from repro.models.base import ModelSuite
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import span as obs_span
from repro.optimizer.profile_cache import CachedProfile
from repro.parser.logical_plan import LogicalPlanNode
from repro.relational.table import Table
from repro.skills.backends import FileBackend, MemoryBackend, SkillBackend
from repro.skills.record import (
    STATUS_DEMOTED,
    SkillRecord,
    node_fingerprint,
    schema_fingerprint,
    signature_text,
)
from repro.skills.retrieval import RetrievalIndex, record_key
from repro.skills.validate import RevalidationHarness


@dataclass
class SkillHit:
    """A validated retrieval result, ready to register as a physical operator."""

    record: SkillRecord
    function: GeneratedFunction
    profile: ProfileResult
    sample_output: Optional[Table]
    kind: str  # "exact" | "near"


class SkillStore:
    """Durable, retrievable, validated storage for generated functions."""

    #: Counter names, in the order ``stats()`` has always reported them.
    COUNTER_NAMES: Tuple[str, ...] = (
        "exact_hits", "near_hits", "misses", "stores",
        "revalidations", "revalidation_failures", "demotions",
    )

    def __init__(self, backend: Optional[SkillBackend] = None,
                 library: Optional[ImplementationLibrary] = None,
                 retrieval_threshold: float = 0.9,
                 provenance: Optional[Dict[str, Any]] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.backend = backend or MemoryBackend()
        self.retrieval = RetrievalIndex(self.backend, threshold=retrieval_threshold)
        self.harness = RevalidationHarness(library=library)
        self.provenance = dict(provenance or {})
        # Counters live in the (possibly service-wide) metrics registry under
        # ``skills.*``; pre-created so ``stats()`` always returns the full dict.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        for name in self.COUNTER_NAMES:
            self.metrics.counter(f"skills.{name}")

    # -- bookkeeping -----------------------------------------------------------
    def _bump(self, counter: str, amount: int = 1) -> None:
        self.metrics.counter(f"skills.{counter}").inc(amount)

    def stats(self) -> Dict[str, int]:
        return {name: self.metrics.counter(f"skills.{name}").value
                for name in self.COUNTER_NAMES}

    def __len__(self) -> int:
        return len(self.retrieval.active_records())

    def source_sink(self) -> Optional[SkillBackend]:
        """The backend, when it can double as the registry's source sink."""
        return self.backend if isinstance(self.backend, FileBackend) else None

    def describe(self) -> str:
        stats = self.stats()
        counters = ", ".join(f"{key}={stats[key]}" for key in sorted(stats))
        return f"skill store ({self.backend.describe()}); {counters}"

    def close(self) -> None:
        self.backend.close()

    # -- fingerprints ----------------------------------------------------------
    def _fingerprints(self, family: str, node: LogicalPlanNode,
                      inputs: Dict[str, Table], models: ModelSuite) -> Dict[str, str]:
        schema_fp = schema_fingerprint(inputs)
        lexicon_fp = models.lexicon.fingerprint()
        return {
            "schema": schema_fp,
            "lexicon": lexicon_fp,
            "node": node_fingerprint(family, node, schema_fp, lexicon_fp),
        }

    # -- retrieval -------------------------------------------------------------
    def lookup(self, node: LogicalPlanNode, family: str, inputs: Dict[str, Table],
               context: FunctionContext, *, models: ModelSuite, profiler: Profiler,
               critic: Critic, monitor: Optional[ExecutionMonitor] = None,
               sample_size: Optional[int] = None) -> Optional[SkillHit]:
        """Find, rebuild, and revalidate a stored skill for ``node``.

        Exact hits replay the stored implementation; near matches transfer a
        previously validated template choice to a similar predicate (and are
        stored under the new fingerprint when they survive revalidation).
        Every failure path returns ``None`` so the optimizer falls through to
        fresh codegen — retrieval must never surface an error.
        """
        prints = self._fingerprints(family, node, inputs, models)
        record = self.retrieval.exact(prints["node"])
        if record is not None:
            hit = self._try_candidate(record, node, inputs, context, models=models,
                                      profiler=profiler, critic=critic, monitor=monitor,
                                      sample_size=sample_size, kind="exact")
            if hit is not None:
                self._bump("exact_hits")
                return hit
            # The exact record was demoted by _try_candidate; fall through to
            # near-match retrieval over the remaining records.

        near = self.retrieval.near(family, signature_text(family, node), models)
        if near is not None:
            hit = self._try_candidate(near[0], node, inputs, context, models=models,
                                      profiler=profiler, critic=critic, monitor=monitor,
                                      sample_size=sample_size, kind="near")
            if hit is not None:
                self._bump("near_hits")
                # Persist the transfer under the new fingerprint so the next
                # restart exact-hits it directly.
                self.put(node, family, hit.function, hit.profile,
                         CriticVerdict(ok=True, checked_semantics=True),
                         models=models, inputs=inputs)
                return hit

        self._bump("misses")
        return None

    def _try_candidate(self, record: SkillRecord, node: LogicalPlanNode,
                       inputs: Dict[str, Table], context: FunctionContext, *,
                       models: ModelSuite, profiler: Profiler, critic: Critic,
                       monitor: Optional[ExecutionMonitor],
                       sample_size: Optional[int], kind: str) -> Optional[SkillHit]:
        exact = kind == "exact"
        function, reason = self.harness.rebuild(record, node, exact=exact)
        if function is None:
            # A near-match that fails to rebuild for *this* node may still be
            # valid for its own; only integrity failures demote.
            if exact or "parses" in reason:
                self.demote(record.fingerprint, reason)
            return None

        self._bump("revalidations")
        with obs_span("skill_revalidate", kind="stage", node=node.name,
                      skill_kind=kind) as reval_sp:
            outcome = self.harness.revalidate(record, function, node, inputs, context,
                                              profiler, critic, monitor=monitor,
                                              exact=exact, sample_size=sample_size)
            reval_sp.tag(ok=outcome.ok)
        if not outcome.ok:
            self._bump("revalidation_failures")
            if exact:
                self.demote(record.fingerprint, outcome.reason)
            return None

        function.skill_fingerprint = record.fingerprint  # type: ignore[attr-defined]
        record.uses += 1
        if exact and outcome.checked_semantics and \
                not record.verdict.get("checked_semantics"):
            # Upgrade the stored verdict so the next restart skips the critic.
            record.verdict = {"ok": True, "checked_semantics": True}
        self.backend.put(record_key(record.fingerprint), record.to_dict())

        assert outcome.profile is not None
        synthetic = self._synthetic_profile(record, function, outcome.profile)
        return SkillHit(record=record, function=function, profile=synthetic,
                        sample_output=outcome.output, kind=kind)

    def _synthetic_profile(self, record: SkillRecord, function: GeneratedFunction,
                           measured: ProfileResult) -> ProfileResult:
        """Price the hit with the stored per-row statistics, keep live samples."""
        try:
            stats = CachedProfile.from_dict(record.profile)
        except (TypeError, KeyError, ValueError):
            return measured
        profile = stats.as_profile(function.name, function.variant, measured.rows_in)
        profile.input_sample = measured.input_sample
        profile.output_sample = measured.output_sample
        profile.rows_out = measured.rows_out
        profile.runtime_s = measured.runtime_s
        return profile

    # -- registration ----------------------------------------------------------
    def put(self, node: LogicalPlanNode, family: str, function: GeneratedFunction,
            profile: ProfileResult, verdict: CriticVerdict, *,
            models: ModelSuite, inputs: Dict[str, Table]) -> Optional[str]:
        """Store a freshly validated implementation; returns its fingerprint."""
        if not profile.success or not verdict.ok:
            return None
        prints = self._fingerprints(family, node, inputs, models)
        stats = CachedProfile()
        stats.update(profile)
        record = SkillRecord.build(
            fingerprint=prints["node"], family=family, node=node, function=function,
            schema_fp=prints["schema"], lexicon_fp=prints["lexicon"],
            profile=stats.to_dict(),
            verdict={"ok": verdict.ok, "checked_semantics": verdict.checked_semantics},
            provenance=self.provenance)
        self.backend.put(record_key(record.fingerprint), record.to_dict())
        function.skill_fingerprint = record.fingerprint  # type: ignore[attr-defined]
        self._bump("stores")
        return record.fingerprint

    # -- demotion --------------------------------------------------------------
    def demote(self, fingerprint: str, reason: str) -> bool:
        """Mark a record as demoted; returns False when already demoted/absent."""
        record = self.retrieval.load(fingerprint)
        if record is None or record.status == STATUS_DEMOTED:
            return False
        record.status = STATUS_DEMOTED
        record.last_error = reason
        self.backend.put(record_key(fingerprint), record.to_dict())
        self._bump("demotions")
        return True

    def record_production_failure(self, function: GeneratedFunction, reason: str) -> bool:
        """Demote the record behind a function the repair loop just evicted."""
        fingerprint = getattr(function, "skill_fingerprint", None)
        if not fingerprint:
            return False
        return self.demote(fingerprint, f"production failure: {reason}")

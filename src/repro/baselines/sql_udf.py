"""The manual SQL + ML-UDF baseline.

This is what an expert user of an EVA/BigQuery-ML-style system would write by
hand for the paper's flagship query: explicit view population, explicit UDF
calls for scoring and classification, and explicit relational glue.  It is
accurate (the expert knows exactly what they want) but every step is manual --
the baseline records how many hand-written operations the pipeline needed,
which is the "user effort" axis of the comparison benchmark (A4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.data.mmqa import MovieCorpus
from repro.models.base import ModelSuite
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import DataType


@dataclass
class SQLUDFResult:
    """Result of one manually composed pipeline run."""

    table: Table
    manual_operations: int
    tokens: int
    description: str = ""

    def titles(self) -> List[str]:
        if not self.table.schema.has_column("title"):
            return []
        return [row.get("title") for row in self.table]


class SQLUDFBaseline:
    """Hand-written SQL + UDF pipelines for the benchmark workload queries."""

    def __init__(self, models: ModelSuite):
        self.models = models

    # -- the flagship query, written the way an expert would ------------------------
    def flagship_query(self, corpus: MovieCorpus, excitement_weight: float = 0.7,
                       recency_weight: float = 0.3,
                       keywords: Optional[Sequence[str]] = None) -> SQLUDFResult:
        """Exciting movies with boring posters, scored 0.7 excitement / 0.3 recency.

        Every numbered step below corresponds to one manual operation the
        expert had to write (the effort metric).
        """
        marker = self.models.cost_meter.snapshot()
        operations = 0
        keywords = list(keywords) if keywords else self.models.lexicon.terms_for("excitement")

        # 1. Load the base tables.
        tables = corpus.to_tables()
        operations += 1

        # 2. UDF: extract text entities per plot (manual NER call).
        events_by_movie: Dict[int, List[str]] = {}
        for row in tables["film_plot"]:
            extraction = self.models.ner.extract(row["plot"], purpose="sql_udf_ner")
            events_by_movie[row["movie_id"]] = extraction.event_terms()
        operations += 1

        # 3. UDF: excitement score via embedding similarity.
        excitement: Dict[int, float] = {}
        for movie_id, events in events_by_movie.items():
            excitement[movie_id] = self.models.embeddings.match_fraction(
                keywords, events, purpose="sql_udf_excitement")
        operations += 1

        # 4. Recency score from the movie table (plain SQL-style computation).
        years = [row["year"] for row in tables["movie_table"]]
        low, high = min(years), max(years)
        span = max(1, high - low)
        recency = {row["movie_id"]: (row["year"] - low) / span for row in tables["movie_table"]}
        operations += 1

        # 5. UDF: classify posters as boring via the VLM.
        boring: Dict[int, bool] = {}
        for row in tables["poster_images"]:
            answer = self.models.vlm.answer_visual_question(
                row["image"], "Is this poster boring and plain?", purpose="sql_udf_boring")
            boring[row["movie_id"]] = bool(answer["answer"])
        operations += 1

        # 6. Final SELECT: join, filter, score, order.
        schema = Schema([
            Column("movie_id", DataType.INTEGER), Column("title", DataType.TEXT),
            Column("year", DataType.INTEGER), Column("final_score", DataType.FLOAT),
            Column("boring_poster", DataType.BOOLEAN),
        ])
        result = Table("sql_udf_result", schema)
        for row in tables["movie_table"]:
            movie_id = row["movie_id"]
            if not boring.get(movie_id, False):
                continue
            score = (excitement_weight * excitement.get(movie_id, 0.0)
                     + recency_weight * recency.get(movie_id, 0.0))
            result.insert({"movie_id": movie_id, "title": row["title"], "year": row["year"],
                           "final_score": round(score, 6), "boring_poster": True})
        result = result.order_by("final_score", descending=True, name="sql_udf_result")
        operations += 1

        return SQLUDFResult(table=result, manual_operations=operations,
                            tokens=self.models.cost_meter.tokens_since(marker),
                            description="hand-written SQL + UDF pipeline for the flagship query")

    # -- simpler hand-written pipelines for the other workload queries ------------------
    def boring_posters(self, corpus: MovieCorpus) -> SQLUDFResult:
        """Which films have a boring poster? (manual pipeline)."""
        marker = self.models.cost_meter.snapshot()
        operations = 0
        tables = corpus.to_tables()
        operations += 1
        rows = []
        for row in tables["poster_images"]:
            answer = self.models.vlm.answer_visual_question(
                row["image"], "Is this poster boring and plain?", purpose="sql_udf_boring")
            if answer["answer"]:
                rows.append(row["movie_id"])
        operations += 1
        titles = {r["movie_id"]: (r["title"], r["year"]) for r in tables["movie_table"]}
        schema = Schema([Column("title", DataType.TEXT), Column("year", DataType.INTEGER)])
        result = Table("sql_udf_boring", schema)
        for movie_id in rows:
            title, year = titles[movie_id]
            result.insert({"title": title, "year": year})
        operations += 1
        return SQLUDFResult(table=result.order_by("title"), manual_operations=operations,
                            tokens=self.models.cost_meter.tokens_since(marker),
                            description="hand-written boring-poster pipeline")

    def rank_by_excitement(self, corpus: MovieCorpus,
                           keywords: Optional[Sequence[str]] = None) -> SQLUDFResult:
        """Rank every film by plot excitement (manual pipeline)."""
        marker = self.models.cost_meter.snapshot()
        operations = 0
        keywords = list(keywords) if keywords else self.models.lexicon.terms_for("excitement")
        tables = corpus.to_tables()
        operations += 1
        schema = Schema([Column("title", DataType.TEXT), Column("year", DataType.INTEGER),
                         Column("excitement_score", DataType.FLOAT)])
        result = Table("sql_udf_excitement", schema)
        plot_by_movie = {row["movie_id"]: row["plot"] for row in tables["film_plot"]}
        for row in tables["movie_table"]:
            extraction = self.models.ner.extract(plot_by_movie.get(row["movie_id"], ""),
                                                 purpose="sql_udf_ner")
            score = self.models.embeddings.match_fraction(
                keywords, extraction.event_terms(), purpose="sql_udf_excitement")
            result.insert({"title": row["title"], "year": row["year"],
                           "excitement_score": round(score, 6)})
        operations += 2
        return SQLUDFResult(table=result.order_by("excitement_score", descending=True),
                            manual_operations=operations,
                            tokens=self.models.cost_meter.tokens_since(marker),
                            description="hand-written excitement ranking")

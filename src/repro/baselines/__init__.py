"""Baseline systems KathDB is positioned against (paper Sections 1 and 7).

* :class:`~repro.baselines.sql_udf.SQLUDFBaseline` -- the "AI-assisted SQL
  engine" end of the trade-off: an expert manually composes the pipeline out
  of SQL and ML UDF calls.  Accurate and cheap, but every query costs manual
  developer effort and the user gets no NL interface.
* :class:`~repro.baselines.blackbox_llm.BlackBoxLLMBaseline` -- the "powerful
  but opaque multimodal system" end: the NL query plus every record is handed
  to a single foundation-model call per row that directly emits the answer,
  bypassing the relational layer.  No lineage, no intermediate views, no
  explanation beyond the final answer.
"""

from repro.baselines.sql_udf import SQLUDFBaseline, SQLUDFResult
from repro.baselines.blackbox_llm import BlackBoxLLMBaseline, BlackBoxResult

__all__ = [
    "SQLUDFBaseline",
    "SQLUDFResult",
    "BlackBoxLLMBaseline",
    "BlackBoxResult",
]

"""The black-box end-to-end LLM baseline.

This models the second class of systems the paper contrasts against: the NL
query and every record (plot text plus a caption of the poster) are handed to
a single foundation-model invocation per record, which directly emits the
target attributes; the model outputs are treated as the final query result.

Two properties matter for the comparison benchmark (A4):

* **cost** -- every record pays for the full plot plus the poster caption in
  the prompt, so token cost is much higher than KathDB's plan, which pushes
  model calls behind materialized views and filters;
* **opacity and accuracy** -- there is no relational layer: the paper's intro
  ambiguity (is "boring poster" a filter or part of the ranking?) is resolved
  inside the black box.  The simulated model folds the poster's boringness
  into the ranking score instead of filtering on it, and it never applies the
  user's recency correction because there is no sketch to correct -- the two
  systematic errors that lower its accuracy on the compositional query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.data.mmqa import MovieCorpus
from repro.models.base import ModelSuite
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import DataType
from repro.utils.text import estimate_tokens


@dataclass
class BlackBoxResult:
    """Result of one end-to-end black-box run."""

    table: Table
    tokens: int
    per_record_calls: int
    explanation: str = ""

    def titles(self) -> List[str]:
        if not self.table.schema.has_column("title"):
            return []
        return [row.get("title") for row in self.table]


class BlackBoxLLMBaseline:
    """Answers NL queries by prompting a model once per record."""

    def __init__(self, models: ModelSuite, name: str = "llm:sim-blackbox-e2e"):
        self.models = models
        self.name = name

    def answer(self, nl_query: str, corpus: MovieCorpus,
               clarifications: Optional[Dict[str, str]] = None) -> BlackBoxResult:
        """Run the black-box pipeline for one NL query.

        Clarifications are accepted (a user could paste them into the prompt)
        but corrections issued *after seeing intermediate results* have no
        channel here -- there are no intermediate results to see.
        """
        lexicon = self.models.lexicon
        meter = self.models.cost_meter
        marker = meter.snapshot()
        lowered = nl_query.lower()

        wants_excitement = "exciting" in lowered or "excitement" in lowered
        wants_calm = "calm" in lowered or "quiet" in lowered
        mentions_boring_poster = "boring" in lowered and "poster" in lowered
        year_after = None
        year_before = None
        for token in lowered.split():
            if token.isdigit() and len(token) == 4:
                if "after" in lowered:
                    year_after = int(token)
                elif "before" in lowered:
                    year_before = int(token)

        schema = Schema([
            Column("title", DataType.TEXT), Column("year", DataType.INTEGER),
            Column("answer_score", DataType.FLOAT),
        ])
        result = Table("blackbox_result", schema)
        calls = 0
        for movie in corpus:
            # The whole record goes into the prompt: plot text + poster caption.
            caption = self.models.vlm.caption(movie.poster, purpose="blackbox_caption")
            prompt_tokens = estimate_tokens(nl_query) + estimate_tokens(movie.plot) \
                + estimate_tokens(caption) + 64
            meter.record(self.name, "blackbox_per_record", prompt_tokens=prompt_tokens,
                         completion_tokens=24)
            calls += 1

            if year_after is not None and movie.year <= year_after:
                continue
            if year_before is not None and movie.year >= year_before:
                continue

            score = 0.0
            if wants_excitement:
                score = lexicon.text_affinity(movie.plot, "excitement") * 4.0
            elif wants_calm:
                score = lexicon.text_affinity(movie.plot, "calm") * 4.0
            else:
                score = 0.5
            score = max(0.0, min(1.0, score))
            if mentions_boring_poster:
                # The black box folds poster boringness into the ranking score
                # instead of filtering on it (the intro's unresolved ambiguity).
                boring_hint = 1.0 if "plain" in caption.lower() or "no prominent" in caption.lower() \
                    else 0.3
                score = 0.5 * score + 0.5 * boring_hint
            result.insert({"title": movie.title, "year": movie.year,
                           "answer_score": round(score, 6)})

        result = result.order_by("answer_score", descending=True, name="blackbox_result")
        explanation = ("The model returned a ranked list. No intermediate results, lineage, or "
                       "per-field derivations are available: the generation process bypassed "
                       "the relational layer.")
        return BlackBoxResult(table=result, tokens=meter.tokens_since(marker),
                              per_record_calls=calls, explanation=explanation)

    def explanation_depth(self) -> int:
        """How many distinct explanation artifacts this baseline can offer.

        Used by the comparison benchmark: the black box offers only the final
        answer text (depth 1); KathDB offers the sketch, the logical plan, the
        per-operator records, per-tuple lineage, and per-field derivations.
        """
        return 1

"""Rule-based entity, mention, relationship, and attribute extraction.

This is the model that populates the paper's *text semantic graph* (Table 2):
entities with document-scoped ids, mentions with character spans, pronoun
coreference back to the nearest person, relationships from sentence-level
co-occurrence, and attributes mined from simple appositive patterns.  Event
terms from the lexicon (``gun``, ``explosion``, ``threat``, ...) are also
extracted as entities of class ``event``, which is what the generated
excitement-scoring functions match keywords against.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.models.cost import CostMeter
from repro.models.lexicon import DEFAULT_LEXICON, Lexicon
from repro.utils.text import estimate_tokens, sentences

_CAPITALIZED_NAME_RE = re.compile(r"\b([A-Z][a-z]+(?:\s+[A-Z][a-z]+)+)\b")
_PRONOUNS = {"he", "she", "him", "her", "his", "hers"}
# Role nouns recognized by the appositive-attribute rule
# ("David Merrill, a celebrated director ..." -> role = "celebrated director").
_ROLE_WORDS = (
    "director", "broker", "writer", "producer", "doctor", "lawyer", "detective",
    "agent", "counselor", "scientist", "artist", "actor", "actress", "nurse",
    "teacher", "journalist", "officer",
)

# Event-ish concepts whose member terms become "event" entities.
_EVENT_CONCEPTS = ("excitement", "calm", "romance", "comedy", "science", "healthcare")


@dataclass
class ExtractedMention:
    """One mention of an entity in a document."""

    mention_id: int
    sentence_id: int
    entity_id: int
    span: Tuple[int, int]
    surface: str


@dataclass
class ExtractedEntity:
    """One resolved entity in a document."""

    entity_id: int
    class_name: str           # "person" or "event"
    canonical: str
    mentions: List[ExtractedMention] = field(default_factory=list)


@dataclass
class ExtractedRelationship:
    """A relationship between two entities in a document."""

    relationship_id: int
    subject_entity_id: int
    predicate: str
    object_entity_id: int
    sentence_id: int


@dataclass
class ExtractedAttribute:
    """A key/value attribute attached to an entity."""

    entity_id: int
    key: str
    value: str
    sentence_id: int


@dataclass
class ExtractionResult:
    """Everything extracted from one document."""

    entities: List[ExtractedEntity] = field(default_factory=list)
    mentions: List[ExtractedMention] = field(default_factory=list)
    relationships: List[ExtractedRelationship] = field(default_factory=list)
    attributes: List[ExtractedAttribute] = field(default_factory=list)

    def entities_of_class(self, class_name: str) -> List[ExtractedEntity]:
        """Entities of one class ("person", "event")."""
        return [e for e in self.entities if e.class_name == class_name]

    def event_terms(self) -> List[str]:
        """Canonical names of all extracted event entities."""
        return [e.canonical for e in self.entities_of_class("event")]


def _completion_digest(result: ExtractionResult) -> str:
    """The compact structured output a real extraction call would return.

    Billing is based on this JSON-shaped digest — id/class/canonical per
    entity, id tuples per mention/relationship/attribute — rather than the
    Python ``repr`` of the dataclasses, whose repeated field names inflated
    the completion to ~10x the size of the input document.
    """
    lines = [f'{{"id":{e.entity_id},"c":"{e.class_name}","n":"{e.canonical}"}}'
             for e in result.entities]
    lines += [f'[{m.sentence_id},{m.mention_id},{m.entity_id},'
              f'{m.span[0]},{m.span[1]},"{m.surface}"]'
              for m in result.mentions]
    lines += [f'[{r.sentence_id},{r.relationship_id},{r.subject_entity_id},'
              f'"{r.predicate}",{r.object_entity_id}]'
              for r in result.relationships]
    lines += [f'[{a.sentence_id},{a.entity_id},"{a.key}","{a.value}"]'
              for a in result.attributes]
    return ",".join(lines)


class EntityExtractor:
    """Rule-based text-graph extraction with pronoun coreference."""

    #: Prompt tokens of the extraction schema and few-shot preamble a serial
    #: request re-sends with *every* document — and a batched invocation
    #: sends once for the whole batch, which is exactly what makes vectorized
    #: extraction sub-linear (see :mod:`repro.models.batching`).  Mirrors
    #: the VLM's per-image ``IMAGE_PROMPT_TOKENS`` constant: the serial
    #: prompt is ``BATCH_OVERHEAD_TOKENS + tokens(document)``.
    BATCH_OVERHEAD_TOKENS = 640

    def __init__(self, cost_meter: Optional[CostMeter] = None, lexicon: Optional[Lexicon] = None,
                 name: str = "ner:rule-coref"):
        self.cost_meter = cost_meter
        self.lexicon = lexicon or DEFAULT_LEXICON
        self.name = name

    def _charge(self, text: str, result: "ExtractionResult", purpose: str) -> None:
        if self.cost_meter is not None:
            self.cost_meter.record(
                self.name, purpose,
                prompt_tokens=self.BATCH_OVERHEAD_TOKENS + estimate_tokens(text),
                completion_tokens=estimate_tokens(_completion_digest(result)))

    def extract_batch(self, texts: Sequence[str],
                      purpose: str = "text_graph_extraction") -> List[ExtractionResult]:
        """Extract text graphs from many documents as one batched invocation.

        Element-wise identical to serial :meth:`extract` calls; charged as a
        single :class:`~repro.models.cost.BatchedModelCall` whose token cost
        is sub-linear (the extraction preamble is paid once per batch).
        """
        from repro.models.batching import run_model_batch
        return run_model_batch(self, "extract",
                               [((text,), {"purpose": purpose}) for text in texts])

    def extract(self, text: str, purpose: str = "text_graph_extraction") -> ExtractionResult:
        """Extract the full text semantic graph from one document."""
        result = ExtractionResult()
        if not text:
            return result
        sentence_list = sentences(text)
        entity_by_canonical: Dict[str, ExtractedEntity] = {}
        next_entity_id = 0
        next_mention_id = 0
        next_relationship_id = 0
        offset = 0
        last_person_by_sentence: Optional[ExtractedEntity] = None

        for sentence_id, sentence in enumerate(sentence_list):
            sentence_start = text.find(sentence, offset)
            if sentence_start < 0:
                sentence_start = offset
            offset = sentence_start + len(sentence)
            persons_in_sentence: List[ExtractedEntity] = []

            # Person entities: capitalized name sequences.
            covered_spans = []
            for match in _CAPITALIZED_NAME_RE.finditer(sentence):
                surface = match.group(1)
                canonical = self._canonical_person(surface, entity_by_canonical)
                entity = entity_by_canonical.get(canonical)
                if entity is None:
                    entity = ExtractedEntity(next_entity_id, "person", canonical)
                    entity_by_canonical[canonical] = entity
                    result.entities.append(entity)
                    next_entity_id += 1
                covered_spans.append((match.start(1), match.end(1)))
                mention = ExtractedMention(
                    mention_id=next_mention_id,
                    sentence_id=sentence_id,
                    entity_id=entity.entity_id,
                    span=(sentence_start + match.start(1), sentence_start + match.end(1)),
                    surface=surface,
                )
                next_mention_id += 1
                entity.mentions.append(mention)
                result.mentions.append(mention)
                persons_in_sentence.append(entity)
                last_person_by_sentence = entity

            # Bare surnames / first names ("Merrill becomes a fugitive ..."):
            # single capitalized tokens that match part of a known person's
            # canonical name resolve to that entity (entity resolution).
            for match in re.finditer(r"\b([A-Z][a-z]+)\b", sentence):
                start, end = match.start(1), match.end(1)
                if any(s <= start < e for s, e in covered_spans):
                    continue
                surface = match.group(1)
                resolved = None
                for canonical, entity in entity_by_canonical.items():
                    if entity.class_name != "person":
                        continue
                    parts = canonical.split()
                    if surface in parts and canonical != surface:
                        resolved = entity
                        break
                if resolved is None:
                    continue
                mention = ExtractedMention(
                    mention_id=next_mention_id,
                    sentence_id=sentence_id,
                    entity_id=resolved.entity_id,
                    span=(sentence_start + start, sentence_start + end),
                    surface=surface,
                )
                next_mention_id += 1
                resolved.mentions.append(mention)
                result.mentions.append(mention)
                persons_in_sentence.append(resolved)
                last_person_by_sentence = resolved

            # Pronoun coreference to the most recent person entity.
            for match in re.finditer(r"\b([A-Za-z]+)\b", sentence):
                word = match.group(1)
                if word.lower() in _PRONOUNS and last_person_by_sentence is not None:
                    mention = ExtractedMention(
                        mention_id=next_mention_id,
                        sentence_id=sentence_id,
                        entity_id=last_person_by_sentence.entity_id,
                        span=(sentence_start + match.start(1), sentence_start + match.end(1)),
                        surface=word,
                    )
                    next_mention_id += 1
                    last_person_by_sentence.mentions.append(mention)
                    result.mentions.append(mention)

            # Event entities: lexicon terms found in this sentence.
            for concept in _EVENT_CONCEPTS:
                for term in self.lexicon.matching_terms(sentence, concept):
                    canonical = term
                    entity = entity_by_canonical.get(canonical)
                    if entity is None:
                        entity = ExtractedEntity(next_entity_id, "event", canonical)
                        entity_by_canonical[canonical] = entity
                        result.entities.append(entity)
                        next_entity_id += 1
                    position = sentence.lower().find(term)
                    span_start = sentence_start + max(position, 0)
                    mention = ExtractedMention(
                        mention_id=next_mention_id,
                        sentence_id=sentence_id,
                        entity_id=entity.entity_id,
                        span=(span_start, span_start + len(term)),
                        surface=term,
                    )
                    next_mention_id += 1
                    entity.mentions.append(mention)
                    result.mentions.append(mention)

            # Relationships: persons co-occurring in a sentence, and persons
            # linked to the events of that sentence.
            events_in_sentence = [
                entity_by_canonical[t]
                for concept in _EVENT_CONCEPTS
                for t in self.lexicon.matching_terms(sentence, concept)
                if t in entity_by_canonical
            ]
            for i in range(len(persons_in_sentence)):
                for j in range(i + 1, len(persons_in_sentence)):
                    result.relationships.append(ExtractedRelationship(
                        next_relationship_id, persons_in_sentence[i].entity_id,
                        "appears_with", persons_in_sentence[j].entity_id, sentence_id))
                    next_relationship_id += 1
            for person in persons_in_sentence[:1]:
                for event in events_in_sentence:
                    result.relationships.append(ExtractedRelationship(
                        next_relationship_id, person.entity_id, "involved_in",
                        event.entity_id, sentence_id))
                    next_relationship_id += 1

            # Attributes: appositive roles, e.g. "Merrill, a celebrated director ...".
            for person in persons_in_sentence:
                surface = person.canonical.split()[-1]
                pattern = re.compile(
                    re.escape(surface) + r",\s+(?:a|an|the)\s+((?:[a-z\-]+\s+){0,2}(?:" +
                    "|".join(_ROLE_WORDS) + r"))\b")
                role_match = pattern.search(sentence)
                if role_match:
                    result.attributes.append(ExtractedAttribute(
                        person.entity_id, "role", role_match.group(1).strip(), sentence_id))

        self._charge(text, result, purpose)
        return result

    def _canonical_person(self, surface: str, existing: Dict[str, ExtractedEntity]) -> str:
        """Resolve a surface name to a canonical entity key.

        A single-token surname that suffixes an existing canonical name maps to
        that entity ("Merrill" -> "David Merrill"); otherwise the surface form
        becomes its own canonical name.
        """
        for canonical, entity in existing.items():
            if entity.class_name != "person":
                continue
            if canonical == surface:
                return canonical
            if canonical.endswith(" " + surface) or canonical.startswith(surface + " "):
                return canonical
        return surface

"""True batched execution for the batchable simulated models.

A real serving stack answers many same-kind requests in one invocation: the
prompt preamble (instructions, few-shot examples, request framing) is paid
once per batch, each member adds only its marginal content, duplicate
members share a single computation, and the whole batch costs one model
round trip of latency.  :func:`plan_batch` reproduces that cost shape for
the simulated models without touching their serial semantics:

* each member's result is computed by calling the member's *own* model's
  serial method (so batched results are bit-identical to serial ones, per
  lexicon, per seed), with the charges diverted through
  :meth:`~repro.models.cost.CostMeter.capture` — pricing, not paying;
* the batch total is ``max(setup) + sum(marginal content)`` over *distinct*
  members, where ``setup`` is the model's ``BATCH_OVERHEAD_TOKENS`` share of
  each serial price — the sub-linear formula the ROADMAP asks for;
* the total is split back across members proportionally to their serial
  price, so every session still pays its fair share.

:func:`run_model_batch` is the direct (single-meter) entry point backing the
models' public ``*_batch()`` methods; the gateway's micro-batcher uses
:func:`plan_batch` itself and records one share per member session.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.models.cost import CostMeter, family_latency


@dataclass
class BatchMember:
    """One logical call inside a batch: a bound method invocation."""

    model: Any
    method: str
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    # Identity used for in-batch deduplication: members sharing a key are
    # the same request and share one computation.  None = always distinct.
    key: Optional[Any] = None

    @property
    def purpose(self) -> str:
        return str(self.kwargs.get("purpose") or self.method)


@dataclass
class MemberOutcome:
    """What one member gets back: its result slice and its token share."""

    result: Any = None
    error: Optional[BaseException] = None
    serial_prompt: int = 0        # what this member would have paid serially
    serial_completion: int = 0
    charge_prompt: int = 0        # its share of the batched invocation
    charge_completion: int = 0
    latency_share_s: float = 0.0

    @property
    def serial_tokens(self) -> int:
        return self.serial_prompt + self.serial_completion

    @property
    def charged_tokens(self) -> int:
        return self.charge_prompt + self.charge_completion

    @property
    def tokens_saved(self) -> int:
        return max(0, self.serial_tokens - self.charged_tokens)


@dataclass
class BatchPlan:
    """A fully costed batched invocation, ready to record and deliver."""

    outcomes: List[MemberOutcome]
    prompt_tokens: int = 0        # the single invocation's totals
    completion_tokens: int = 0
    serial_tokens: int = 0        # what the members would have cost serially
    latency_s: float = 0.0        # one invocation's synthetic latency
    size: int = 0                 # members that executed successfully

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens

    @property
    def tokens_saved(self) -> int:
        return max(0, self.serial_tokens - self.total_tokens)


def _overhead_of(model: Any) -> int:
    """The shared prompt/setup tokens one serial call of this model embeds."""
    return max(0, int(getattr(model, "BATCH_OVERHEAD_TOKENS", 0)))


def _split(amount: int, weights: Sequence[int]) -> List[int]:
    """Split ``amount`` across members proportionally to ``weights``.

    Integer shares that sum exactly to ``amount``; the remainder goes to the
    earliest members, one token each, so no session is over- or
    under-charged by more than a token.
    """
    n = len(weights)
    if n == 0:
        return []
    total_weight = sum(weights)
    if total_weight <= 0:
        base, extra = divmod(amount, n)
        return [base + (1 if i < extra else 0) for i in range(n)]
    shares = [amount * w // total_weight for w in weights]
    remainder = amount - sum(shares)
    for i in range(remainder):
        shares[i % n] += 1
    return shares


def plan_batch(members: Sequence[BatchMember]) -> BatchPlan:
    """Execute ``members`` as one batched invocation and cost it sub-linearly.

    Results are element-wise identical to serial execution (each distinct
    member runs its own model's serial method once; duplicates receive
    private copies of the representative's result).  A member whose
    execution raises gets the exception in its outcome — the rest of the
    batch is unaffected.
    """
    outcomes = [MemberOutcome() for _ in members]
    # 1. Execute each *distinct* member once, pricing (not paying) its
    #    serial cost through the capture frame.
    representatives: Dict[Any, int] = {}
    member_of: List[int] = []            # member index -> its representative
    for index, member in enumerate(members):
        key = member.key if member.key is not None else ("#unique", index)
        rep = representatives.get(key)
        if rep is not None:
            member_of.append(rep)
            continue
        representatives[key] = index
        member_of.append(index)
        with CostMeter.capture() as records:
            try:
                result = getattr(member.model, member.method)(
                    *member.args, **member.kwargs)
            except Exception as error:  # noqa: BLE001 - delivered per member
                outcomes[index].error = error
                continue
        outcomes[index].result = result
        outcomes[index].serial_prompt = sum(r.prompt_tokens for r in records)
        outcomes[index].serial_completion = sum(
            r.completion_tokens for r in records)

    # 2. Propagate representative outcomes to duplicates (errors included —
    #    an identical request fails identically) and collect the live set.
    alive: List[int] = []
    for index, rep in enumerate(member_of):
        outcome, source = outcomes[index], outcomes[rep]
        if source.error is not None:
            outcome.error = source.error
            continue
        if index != rep:
            outcome.result = copy.deepcopy(source.result)
            outcome.serial_prompt = source.serial_prompt
            outcome.serial_completion = source.serial_completion
        alive.append(index)

    plan = BatchPlan(outcomes=outcomes, size=len(alive))
    if not alive:
        return plan

    # 3. The sub-linear batch price: each distinct execution's prompt embeds
    #    up to ``overhead`` setup tokens (never its whole prompt — at least
    #    one content token stays marginal); the batch pays the largest setup
    #    once plus every distinct member's marginal content.
    groups: Dict[int, List[int]] = {}
    for i in alive:
        groups.setdefault(member_of[i], []).append(i)
    setup_of: Dict[int, int] = {}
    shared_setup = 0
    content_prompt = 0
    content_completion = 0
    for rep in groups:
        out = outcomes[rep]
        setup = min(_overhead_of(members[rep].model),
                    max(0, out.serial_prompt - 1))
        setup_of[rep] = setup
        shared_setup = max(shared_setup, setup)
        content_prompt += out.serial_prompt - setup
        content_completion += out.serial_completion
    plan.prompt_tokens = shared_setup + content_prompt
    plan.completion_tokens = content_completion
    plan.serial_tokens = sum(outcomes[i].serial_tokens for i in alive)

    # 4. Fair shares: every duplicate group splits its own execution's
    #    marginal content evenly; the single shared setup is split across
    #    all live members.  Shares sum exactly to the batch price.
    for rep, group in groups.items():
        prompt_shares = _split(outcomes[rep].serial_prompt - setup_of[rep],
                               [1] * len(group))
        completion_shares = _split(outcomes[rep].serial_completion,
                                   [1] * len(group))
        for position, i in enumerate(group):
            outcomes[i].charge_prompt = prompt_shares[position]
            outcomes[i].charge_completion = completion_shares[position]
    setup_shares = _split(shared_setup, [1] * len(alive))
    for position, i in enumerate(alive):
        outcomes[i].charge_prompt += setup_shares[position]
    model_name = getattr(members[alive[0]].model, "name",
                         type(members[alive[0]].model).__name__)
    plan.latency_s = family_latency(model_name, plan.total_tokens)
    for i in alive:
        outcomes[i].latency_share_s = plan.latency_s / len(alive)
    return plan


def metered_call(model: Any, method: str, args: Tuple[Any, ...],
                 kwargs: Dict[str, Any]) -> Tuple[Any, int]:
    """Run one serial call and return ``(result, tokens it charged)``.

    The single per-call metering pattern shared by the gateway's
    non-batchable execution path and the micro-batcher's chunk-of-one path:
    the model charges its own meter exactly as an un-routed call would.
    """
    meter = getattr(model, "cost_meter", None)
    marker = meter.snapshot() if meter is not None else 0
    result = getattr(model, method)(*args, **kwargs)
    cost = meter.tokens_since(marker) if meter is not None else 0
    return result, cost


def run_model_batch(model: Any, method: str,
                    calls: Sequence[Tuple[Tuple[Any, ...], Dict[str, Any]]],
                    purpose: Optional[str] = None) -> List[Any]:
    """Run many same-method calls on one model as a single batched invocation.

    This is the direct entry point behind the models' public ``*_batch()``
    methods: one :class:`~repro.models.cost.BatchedModelCall` covering the
    whole batch lands on the model's own meter, priced by the sub-linear
    formula.  Any member failure propagates, but — exactly as a serial loop
    would — the members that *did* execute are still billed first.  An
    empty ``calls`` is a free no-op.
    """
    if not calls:
        return []
    from repro.gateway.fingerprint import canonicalize  # local: avoids a cycle
    members = [BatchMember(model=model, method=method, args=tuple(args),
                           kwargs=dict(kwargs),
                           key=(canonicalize(tuple(args)),
                                canonicalize({k: v for k, v in kwargs.items()
                                              if k != "purpose"})))
               for args, kwargs in calls]
    plan = plan_batch(members)
    meter = getattr(model, "cost_meter", None)
    if meter is not None and plan.size:
        meter.record_batched(
            getattr(model, "name", type(model).__name__),
            purpose or members[0].purpose,
            plan.prompt_tokens, plan.completion_tokens,
            batch_size=plan.size, members=plan.size,
            serial_tokens=plan.serial_tokens, latency_s=plan.latency_s)
    for outcome in plan.outcomes:
        if outcome.error is not None:
            raise outcome.error
    return [outcome.result for outcome in plan.outcomes]

"""Simulated foundation models.

The paper invokes hosted LLMs/VLMs (GPT-4o) for query parsing, function
generation, and multimodal view population.  This reproduction has no GPU or
API access, so every model is replaced by a deterministic, seeded simulation
that exposes the same *interface* and charges realistic token costs:

* :class:`~repro.models.llm.SimulatedLLM` -- prompt-routed text model used by
  every agent (reviewer, sketch generator, plan writer, verifier, coder,
  profiler, critic, monitor, explainer).
* :class:`~repro.models.vlm.SimulatedVLM` -- image model that extracts scene
  graphs from synthetic posters (with a configurable error rate).
* :class:`~repro.models.embeddings.EmbeddingModel` -- lexicon-grounded text
  embeddings with cosine similarity.
* :class:`~repro.models.ner.EntityExtractor` -- rule-based entity/mention/
  relationship extraction with pronoun coreference.
* :class:`~repro.models.detector.PixelObjectDetector` and
  :class:`~repro.models.ocr.OCRTextExtractor` -- two alternative *physical
  implementations* of image analysis, with different cost/accuracy profiles.
* :class:`~repro.models.cascade.ModelCascade` -- cheap-model-first cascades.
* :class:`~repro.models.cost.CostMeter` -- token and latency accounting shared
  by everything above; this is what the cost-based optimizer reads.

See DESIGN.md ("Substitutions") for why this preserves the paper's behaviour.
"""

from repro.models.cost import BatchedModelCall, CostMeter, ModelCall
from repro.models.batching import BatchMember, BatchPlan, plan_batch, run_model_batch
from repro.models.lexicon import Lexicon, DEFAULT_LEXICON
from repro.models.embeddings import EmbeddingModel, cosine_similarity
from repro.models.llm import SimulatedLLM
from repro.models.vlm import SimulatedVLM
from repro.models.ner import EntityExtractor
from repro.models.detector import PixelObjectDetector
from repro.models.ocr import OCRTextExtractor
from repro.models.cascade import ModelCascade, CascadeStage
from repro.models.base import ModelSuite

__all__ = [
    "CostMeter",
    "ModelCall",
    "BatchedModelCall",
    "BatchMember",
    "BatchPlan",
    "plan_batch",
    "run_model_batch",
    "Lexicon",
    "DEFAULT_LEXICON",
    "EmbeddingModel",
    "cosine_similarity",
    "SimulatedLLM",
    "SimulatedVLM",
    "EntityExtractor",
    "PixelObjectDetector",
    "OCRTextExtractor",
    "ModelCascade",
    "CascadeStage",
    "ModelSuite",
]

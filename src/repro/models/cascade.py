"""Model cascades: cheap implementation first, escalate on low confidence.

The paper lists "model cascades" among the physical choices KathDB's optimizer
can make.  A :class:`ModelCascade` chains :class:`CascadeStage`s; each stage
returns a prediction and a confidence, and the cascade stops at the first
stage whose confidence clears its threshold.  Because every stage charges its
own tokens to the shared cost meter, the cascade's cost/accuracy trade-off is
measurable in the ablation benchmark (A3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


@dataclass
class CascadeStage:
    """One stage of a cascade.

    ``predict`` maps an input item to ``(prediction, confidence)`` with
    confidence in [0, 1].  ``threshold`` is the minimum confidence at which the
    cascade accepts this stage's answer instead of escalating.
    """

    name: str
    predict: Callable[[Any], Tuple[Any, float]]
    threshold: float = 0.8


@dataclass
class CascadeDecision:
    """The outcome of running a cascade on one item."""

    prediction: Any
    confidence: float
    stage_name: str
    stages_used: int


class ModelCascade:
    """Runs items through stages until one is confident enough."""

    def __init__(self, stages: Sequence[CascadeStage]):
        if not stages:
            raise ValueError("a cascade needs at least one stage")
        self.stages = list(stages)

    def run(self, item: Any) -> CascadeDecision:
        """Classify one item, escalating through stages as needed.

        The final stage's answer is always accepted, regardless of threshold.
        """
        decision: Optional[CascadeDecision] = None
        for index, stage in enumerate(self.stages):
            prediction, confidence = stage.predict(item)
            decision = CascadeDecision(prediction=prediction, confidence=confidence,
                                       stage_name=stage.name, stages_used=index + 1)
            if confidence >= stage.threshold:
                return decision
        return decision  # type: ignore[return-value]

    def run_many(self, items: Sequence[Any]) -> List[CascadeDecision]:
        """Classify a batch of items."""
        return [self.run(item) for item in items]

    def escalation_rate(self, items: Sequence[Any]) -> float:
        """Fraction of items that needed more than the first stage."""
        if not items:
            return 0.0
        decisions = self.run_many(items)
        return sum(1 for d in decisions if d.stages_used > 1) / len(items)

    def stage_usage(self, items: Sequence[Any]) -> Dict[str, int]:
        """How many items were answered by each stage."""
        usage: Dict[str, int] = {stage.name: 0 for stage in self.stages}
        for decision in self.run_many(items):
            usage[decision.stage_name] += 1
        return usage

"""A simulated vision-language model.

The VLM is the reproduction's stand-in for GPT-4o-style image understanding:
given a poster it returns a scene graph (objects, relationships, attributes),
a caption, and answers to simple visual questions.  Internally it reads the
synthetic image's ground truth and corrupts it with a configurable error rate
(missed objects, confused classes), so downstream accuracy is high but not
perfect -- the regime in which the paper's critic/monitor loops matter.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.data.images import (
    BORING_OBJECT_CLASSES,
    SyntheticImage,
    VIVID_OBJECT_CLASSES,
)
from repro.models.cost import CostMeter
from repro.models.lexicon import DEFAULT_LEXICON, Lexicon
from repro.utils.seed import SeededRNG
from repro.utils.text import estimate_tokens, join_names

# A fixed token charge per image, standing in for the vision encoder cost.
IMAGE_PROMPT_TOKENS = 420


class SimulatedVLM:
    """Scene-graph extraction and visual question answering over synthetic posters."""

    #: Prompt/setup tokens one serial request embeds — the vision system
    #: prompt, the extraction schema, and the shared few-shot example images
    #: that a batched invocation sends once for the whole batch.  Most of the
    #: per-request framing is shareable; only the poster's own encoded pixels
    #: (and the completion) stay marginal.  See :mod:`repro.models.batching`.
    BATCH_OVERHEAD_TOKENS = 384

    def __init__(self, cost_meter: Optional[CostMeter] = None, error_rate: float = 0.05,
                 seed: object = 0, lexicon: Optional[Lexicon] = None,
                 name: str = "vlm:sim-scene-graph"):
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError("error_rate must be in [0, 1]")
        self.cost_meter = cost_meter
        self.error_rate = error_rate
        self.lexicon = lexicon or DEFAULT_LEXICON
        self.name = name
        self._rng = SeededRNG(("vlm", seed))

    # -- internals ---------------------------------------------------------------
    def _charge(self, purpose: str, completion_text: str) -> None:
        if self.cost_meter is not None:
            self.cost_meter.record(
                self.name, purpose,
                prompt_tokens=IMAGE_PROMPT_TOKENS,
                completion_tokens=estimate_tokens(completion_text),
            )

    def _confuse_class(self, class_name: str, rng: SeededRNG) -> str:
        pool = VIVID_OBJECT_CLASSES if class_name in VIVID_OBJECT_CLASSES else BORING_OBJECT_CLASSES
        candidates = [c for c in pool if c != class_name]
        return rng.choice(candidates) if candidates else class_name

    # -- public API ----------------------------------------------------------------
    def extract_scene_graph(self, image: SyntheticImage,
                            purpose: str = "scene_graph_extraction") -> Dict[str, Any]:
        """Extract a scene graph from one poster.

        Returns a dict with ``objects`` (class_name, bbox, attributes),
        ``relationships`` (subject index, predicate, object index), and the
        poster-level pixel statistics the classify functions use.
        """
        rng = self._rng.fork(image.uri)
        objects: List[Dict[str, Any]] = []
        kept_indices: List[int] = []
        for index, obj in enumerate(image.objects):
            if rng.chance(self.error_rate):
                continue  # missed detection
            class_name = obj.class_name
            if rng.chance(self.error_rate):
                class_name = self._confuse_class(class_name, rng)
            kept_indices.append(index)
            objects.append({
                "class_name": class_name,
                "bbox": list(obj.bbox),
                "attributes": dict(obj.attributes),
            })
        index_map = {original: new for new, original in enumerate(kept_indices)}
        relationships: List[Tuple[int, str, int]] = []
        for subject, predicate, target in image.relationships:
            if subject in index_map and target in index_map:
                relationships.append((index_map[subject], predicate, index_map[target]))
        result = {
            "objects": objects,
            "relationships": relationships,
            "color_variance": image.color_variance(),
            "saturation": image.saturation(),
            "coverage": image.coverage(),
            "text_overlay": image.text_overlay,
        }
        self._charge(purpose, repr(result))
        return result

    def extract_scene_graph_batch(self, images: Sequence[SyntheticImage],
                                  purpose: str = "scene_graph_extraction"
                                  ) -> List[Dict[str, Any]]:
        """Extract scene graphs from many posters as **one batched invocation**.

        Element-wise identical to serial :meth:`extract_scene_graph` calls
        (the RNG forks on the image URI, not call order); charged as a single
        :class:`~repro.models.cost.BatchedModelCall` with sub-linear token
        cost — the shared vision preamble is paid once per batch.
        """
        from repro.models.batching import run_model_batch
        return run_model_batch(self, "extract_scene_graph",
                               [((image,), {"purpose": purpose})
                                for image in images])

    def caption(self, image: SyntheticImage, purpose: str = "caption") -> str:
        """A one-sentence caption of the poster."""
        graph = self.extract_scene_graph(image, purpose=purpose)
        classes = [o["class_name"] for o in graph["objects"]]
        if not classes:
            text = "A plain poster with no prominent objects."
        else:
            text = f"A poster showing {join_names(sorted(set(classes)))}."
        self._charge(purpose, text)
        return text

    def answer_visual_question(self, image: SyntheticImage, question: str,
                               purpose: str = "visual_qa") -> Dict[str, Any]:
        """Answer a yes/no style visual question about the poster.

        The only question family the reproduction needs is "does this poster
        look boring / vivid / exciting"; anything else falls back to object
        presence checks.
        """
        graph = self.extract_scene_graph(image, purpose=purpose)
        lowered = question.lower()
        vivid_evidence = self.lexicon.matching_terms(
            " ".join(o["class_name"] for o in graph["objects"]), "vivid_visual")
        boring_score = 1.0
        boring_score -= min(0.4, 0.1 * len(graph["objects"]))
        boring_score -= min(0.3, 0.15 * len(vivid_evidence))
        boring_score -= min(0.3, graph["saturation"])
        boring_score = max(0.0, min(1.0, boring_score))
        if "boring" in lowered or "plain" in lowered or "dull" in lowered:
            answer = boring_score >= 0.5
            confidence = abs(boring_score - 0.5) * 2
        elif "vivid" in lowered or "exciting" in lowered or "action" in lowered:
            answer = boring_score < 0.5
            confidence = abs(boring_score - 0.5) * 2
        else:
            # object-presence fallback: "does the poster contain a gun?"
            classes = {o["class_name"] for o in graph["objects"]}
            answer = any(c in lowered for c in classes)
            confidence = 0.6
        result = {"answer": bool(answer), "confidence": float(confidence),
                  "boring_score": boring_score, "evidence": vivid_evidence}
        self._charge(purpose, repr(result))
        return result

    def answer_visual_question_batch(self, images: Sequence[SyntheticImage],
                                     question: str, purpose: str = "visual_qa"
                                     ) -> List[Dict[str, Any]]:
        """Answer the same visual question about many posters in one batch.

        Element-wise identical to serial :meth:`answer_visual_question`
        calls; charged as a single
        :class:`~repro.models.cost.BatchedModelCall`.
        """
        from repro.models.batching import run_model_batch
        return run_model_batch(self, "answer_visual_question",
                               [((image, question), {"purpose": purpose})
                                for image in images])

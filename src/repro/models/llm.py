"""The simulated large language model.

Every agent in KathDB (reviewer, sketch generator, plan writer, plan verifier,
coder, profiler, critic, monitor, explainer) is "LLM-powered".  In this
reproduction those agents call :class:`SimulatedLLM`, which provides:

* natural-language *understanding*: ambiguity detection, query interpretation
  into a structured :class:`QueryIntent`, keyword-list generation,
  alternative-interpretation enumeration, dependency-pattern classification;
* natural-language *generation*: clarification questions, sketch-step text,
  explanation text (all template-based);
* semantic *judgement*: the critic/monitor checks for implausible outputs.

The implementation is rule- and lexicon-driven rather than neural, but it is
imperfect on purpose (it only understands vocabulary covered by its lexicon)
and every call charges prompt/completion tokens to the shared
:class:`~repro.models.cost.CostMeter`, so cost-based optimization and the
cost/accuracy benchmarks exercise the same code paths the paper describes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.models.cost import CostMeter
from repro.models.lexicon import DEFAULT_LEXICON, Lexicon
from repro.utils.seed import SeededRNG
from repro.utils.text import content_words, estimate_tokens, normalize, tokenize


# ---------------------------------------------------------------------------
# Structured query interpretation
# ---------------------------------------------------------------------------
@dataclass
class SemanticScoreSpec:
    """A per-row semantic score computed from text (e.g. an excitement score)."""

    name: str                      # e.g. "excitement_score"
    concept: str                   # lexicon concept, e.g. "excitement"
    source_column: str = "plot"    # which text column feeds the score
    keywords: List[str] = field(default_factory=list)
    weight: float = 1.0


@dataclass
class ImagePredicateSpec:
    """A per-row predicate or score over poster images (e.g. 'boring')."""

    name: str                      # e.g. "boring"
    concept: str                   # "boring_visual" or "vivid_visual"
    mode: str = "filter"           # "filter" (keep matching rows) or "score"
    keep_if_true: bool = True


@dataclass
class RelationalFilterSpec:
    """A plain relational predicate (e.g. year > 2000)."""

    column: str
    op: str
    value: Any


@dataclass
class QueryIntent:
    """The LLM's structured interpretation of an NL query."""

    raw_query: str
    semantic_scores: List[SemanticScoreSpec] = field(default_factory=list)
    image_predicates: List[ImagePredicateSpec] = field(default_factory=list)
    relational_filters: List[RelationalFilterSpec] = field(default_factory=list)
    ranking: bool = False
    descending: bool = True
    include_recency: bool = False
    score_weights: Dict[str, float] = field(default_factory=dict)
    ambiguous_terms: List[str] = field(default_factory=list)
    clarifications: Dict[str, str] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    @property
    def needs_text(self) -> bool:
        """Whether the query requires the text modality."""
        return bool(self.semantic_scores)

    @property
    def needs_images(self) -> bool:
        """Whether the query requires the image modality."""
        return bool(self.image_predicates)


@dataclass
class AmbiguityReport:
    """One detected ambiguity: the term, a focused question, and a priority."""

    term: str
    question: str
    priority: float  # >= 0.5 means the reviewer should ask before proceeding


# Subjective terms that have a reasonable default visual interpretation; the
# reviewer does not block on these (the paper only asks about "exciting").
_LOW_PRIORITY_SUBJECTIVE = {"boring", "plain", "dull", "nice", "memorable", "notable"}

_RANK_WORDS = {"sort", "rank", "order", "top", "best", "most"}
_FILTER_ONLY_WORDS = {"which", "list", "show", "find", "filter"}

_AFTER_RE = re.compile(r"(?:after|since|later than)\s+(\d{4})")
_BEFORE_RE = re.compile(r"(?:before|earlier than|prior to)\s+(\d{4})")

# Mapping from query vocabulary to lexicon concepts for semantic text scoring.
_TEXT_CONCEPT_TRIGGERS: Dict[str, str] = {
    "exciting": "excitement",
    "excitement": "excitement",
    "thrilling": "excitement",
    "dangerous": "excitement",
    "action": "excitement",
    "calm": "calm",
    "quiet": "calm",
    "peaceful": "calm",
    "romantic": "romance",
    "romance": "romance",
    "funny": "comedy",
    "comedy": "comedy",
    "scientific": "science",
    "medical": "healthcare",
}

# Mapping for image predicates.
_IMAGE_CONCEPT_TRIGGERS: Dict[str, Tuple[str, bool]] = {
    # term -> (concept, keep_if_true)
    "boring": ("boring_visual", True),
    "plain": ("boring_visual", True),
    "dull": ("boring_visual", True),
    "vivid": ("vivid_visual", True),
    "colorful": ("vivid_visual", True),
}

_IMAGE_NOUNS = {"poster", "posters", "image", "images", "picture", "pictures", "cover"}


class SimulatedLLM:
    """A deterministic, lexicon-grounded stand-in for a hosted LLM."""

    def __init__(self, cost_meter: Optional[CostMeter] = None, lexicon: Optional[Lexicon] = None,
                 seed: object = 0, keyword_count: int = 12, name: str = "llm:sim-instruct"):
        self.cost_meter = cost_meter
        self.lexicon = lexicon or DEFAULT_LEXICON
        self.keyword_count = keyword_count
        self.name = name
        self._rng = SeededRNG(("llm", seed))

    # -- cost plumbing -----------------------------------------------------------
    def _charge(self, prompt: str, completion: str, purpose: str) -> None:
        if self.cost_meter is not None:
            self.cost_meter.record(self.name, purpose,
                                   prompt_tokens=estimate_tokens(prompt),
                                   completion_tokens=estimate_tokens(completion))

    # -- ambiguity detection (reviewer agent) ---------------------------------------
    def detect_ambiguity(self, nl_query: str, resolved_terms: Optional[Sequence[str]] = None,
                         purpose: str = "ambiguity_detection") -> List[AmbiguityReport]:
        """Find subjective / user-dependent terms that need clarification.

        Mirrors the paper's reviewer prompt ("Look for ambiguous terms or
        subjective words ...").  Terms the user has already clarified are not
        reported again.
        """
        resolved = {normalize(t) for t in (resolved_terms or [])}
        reports: List[AmbiguityReport] = []
        seen = set()
        for word in tokenize(nl_query):
            if word in seen or word in resolved:
                continue
            if self.lexicon.concept("subjective") and word in self.lexicon.concept("subjective").terms:
                seen.add(word)
                priority = 0.3 if word in _LOW_PRIORITY_SUBJECTIVE else 0.9
                reports.append(AmbiguityReport(
                    term=word,
                    question=self.clarification_question(word),
                    priority=priority,
                ))
        reports.sort(key=lambda r: -r.priority)
        self._charge(nl_query, repr([r.term for r in reports]), purpose)
        return reports

    def clarification_question(self, term: str) -> str:
        """The focused clarification question for one ambiguous term."""
        return f"What does '{term}' mean in this context?"

    # -- keyword generation -----------------------------------------------------------
    def generate_keywords(self, concept_description: str, context: str = "",
                          count: Optional[int] = None,
                          purpose: str = "keyword_generation") -> List[str]:
        """Generate a keyword list for a concept ("exciting" -> gun, murder, ...).

        The paper notes that "the keyword list is also generated by the LLM";
        here the list is drawn from the lexicon cluster that best matches the
        concept description (plus any context the user supplied), which keeps
        the list meaningful for the downstream similarity search.
        """
        count = count or self.keyword_count
        concept = self._resolve_concept(concept_description, context)
        terms = self.lexicon.terms_for(concept) if concept else []
        # Also include content words from the user's clarification that carry
        # the concept's meaning (e.g. "gun fight" from the paper's reply).
        concept_terms = set(terms)
        extra = [w for w in content_words(context) if len(w) > 2 and w in concept_terms]
        merged: List[str] = []
        for term in extra + terms:
            normalized = normalize(term)
            if normalized not in merged:
                merged.append(normalized)
        keywords = merged[:count]
        prompt = f"concept: {concept_description}; context: {context}"
        self._charge(prompt, ", ".join(keywords), purpose)
        return keywords

    def _resolve_concept(self, description: str, context: str = "") -> Optional[str]:
        """Map a free-form concept description onto a lexicon concept."""
        words = tokenize(description) + tokenize(context)
        for word in words:
            trigger = _TEXT_CONCEPT_TRIGGERS.get(word)
            if trigger:
                return trigger
        # Fall back to whichever concept has the largest overlap with the words.
        best_name, best_hits = None, 0
        for name in self.lexicon.concept_names():
            concept = self.lexicon.concept(name)
            hits = sum(1 for w in words if w in concept.terms)
            if hits > best_hits:
                best_name, best_hits = name, hits
        return best_name

    def alternative_interpretations(self, term: str,
                                    purpose: str = "interpretation_enumeration") -> List[str]:
        """Enumerate alternative readings of a subjective term.

        The paper's example: "exciting movies" could mean action movies, recent
        releases, or award-winning movies.
        """
        interpretations = {
            "exciting": [
                "movies whose plots contain dangerous or uncommon events (action reading)",
                "movies released recently (recency reading)",
                "movies that won or were nominated for awards (award reading)",
            ],
            "boring": [
                "posters with plain backgrounds, few objects, and muted colors",
                "posters that contain mostly text",
            ],
        }.get(normalize(term), [f"a literal reading of '{term}'", f"a subjective reading of '{term}'"])
        self._charge(term, " | ".join(interpretations), purpose)
        return interpretations

    # -- query interpretation (sketch generator's understanding step) ------------------
    def interpret_query(self, nl_query: str, clarifications: Optional[Dict[str, str]] = None,
                        corrections: Optional[Sequence[str]] = None,
                        purpose: str = "query_interpretation") -> QueryIntent:
        """Interpret an NL query (plus clarifications/corrections) into a
        structured :class:`QueryIntent`."""
        clarifications = dict(clarifications or {})
        corrections = list(corrections or [])
        text = nl_query.lower()
        words = set(tokenize(nl_query))
        intent = QueryIntent(raw_query=nl_query, clarifications=clarifications)

        # Ranking vs filtering.
        intent.ranking = bool(words & _RANK_WORDS)
        if not intent.ranking and words & _FILTER_ONLY_WORDS:
            intent.ranking = False

        # Semantic text scores.
        for trigger, concept in _TEXT_CONCEPT_TRIGGERS.items():
            if trigger in words and not self._is_image_scoped(text, trigger):
                context = clarifications.get(trigger, "")
                spec = SemanticScoreSpec(
                    name=f"{concept}_score",
                    concept=concept,
                    source_column="plot",
                    keywords=self.generate_keywords(trigger, context),
                )
                if not any(s.concept == concept for s in intent.semantic_scores):
                    intent.semantic_scores.append(spec)

        # Image predicates (only when the query mentions posters/images).
        if words & _IMAGE_NOUNS:
            for trigger, (concept, keep) in _IMAGE_CONCEPT_TRIGGERS.items():
                if trigger in words:
                    if not any(p.concept == concept for p in intent.image_predicates):
                        intent.image_predicates.append(ImagePredicateSpec(
                            name=trigger, concept=concept, mode="filter", keep_if_true=keep))

        # Relational filters.
        for match in _AFTER_RE.finditer(text):
            intent.relational_filters.append(RelationalFilterSpec("year", ">", int(match.group(1))))
        for match in _BEFORE_RE.finditer(text):
            intent.relational_filters.append(RelationalFilterSpec("year", "<", int(match.group(1))))

        # Corrections: the only correction family the reproduction models is
        # the paper's "I prefer more recent movies when scoring".
        for correction in corrections:
            lowered = correction.lower()
            if any(term in lowered for term in ("recent", "newer", "new release", "later")):
                intent.include_recency = True
                intent.notes.append("user asked to include recency in the score")

        # Score weights: mirror the paper's 0.7 / 0.3 split when recency joins
        # a single semantic score; equal weights otherwise.
        primary = [s.name for s in intent.semantic_scores]
        if intent.include_recency:
            if len(primary) == 1:
                intent.score_weights = {primary[0]: 0.7, "recency_score": 0.3}
            else:
                share = 1.0 / (len(primary) + 1) if primary else 1.0
                intent.score_weights = {name: share for name in primary}
                intent.score_weights["recency_score"] = share
        elif primary:
            share = 1.0 / len(primary)
            intent.score_weights = {name: share for name in primary}

        # Residual ambiguity bookkeeping.
        for report in self.detect_ambiguity(nl_query, resolved_terms=list(clarifications)):
            intent.ambiguous_terms.append(report.term)

        completion = (
            f"scores={[s.name for s in intent.semantic_scores]} "
            f"image={[p.name for p in intent.image_predicates]} "
            f"filters={[(f.column, f.op, f.value) for f in intent.relational_filters]} "
            f"ranking={intent.ranking} recency={intent.include_recency}"
        )
        prompt = nl_query + " " + " ".join(clarifications.values()) + " " + " ".join(corrections)
        self._charge(prompt, completion, purpose)
        return intent

    def _is_image_scoped(self, query_text: str, trigger: str) -> bool:
        """Whether a trigger word refers to the poster/image rather than the plot.

        A crude window check: the trigger is image-scoped when an image noun
        appears within a few words before it ("the poster should be boring").
        """
        tokens = tokenize(query_text)
        positions = [i for i, t in enumerate(tokens) if t == trigger]
        for position in positions:
            window = tokens[max(0, position - 5):position] + tokens[position + 1:position + 4]
            if set(window) & _IMAGE_NOUNS:
                return True
        return False

    # -- dependency-pattern classification (used for lineage) ---------------------------
    def classify_dependency_pattern(self, function_description: str,
                                    purpose: str = "dependency_classification") -> str:
        """Classify a function's dependency pattern for lineage recording.

        Returns one of ``one_to_one``, ``one_to_many``, ``many_to_one``, or
        ``many_to_many`` (paper Section 3, provenance model).
        """
        text = function_description.lower()
        wide_markers = ("join", "aggregate", "group", "sort", "rank", "combine tables",
                        "merge tables", "count", "sum over", "average over")
        expand_markers = ("explode", "split into", "one row per", "unnest", "extract entities",
                          "extract objects")
        if any(marker in text for marker in wide_markers):
            pattern = "many_to_many" if "join" in text or "merge" in text or "sort" in text else "many_to_one"
        elif any(marker in text for marker in expand_markers):
            pattern = "one_to_many"
        else:
            pattern = "one_to_one"
        self._charge(function_description, pattern, purpose)
        return pattern

    # -- semantic judgement (critic / monitor) --------------------------------------------
    def judge_output(self, description: str, input_sample: Sequence[Dict[str, Any]],
                     output_sample: Sequence[Dict[str, Any]],
                     purpose: str = "semantic_judgement") -> Tuple[bool, str]:
        """Judge whether a function's output plausibly matches its description.

        Returns ``(ok, hint)``.  The checks are the ones the paper's examples
        call for: a recency score that decreases with the release year, a
        constant score column, an empty output from a non-empty input, and a
        score column outside [0, 1].
        """
        hint = ""
        ok = True
        lowered = description.lower()
        if input_sample and not output_sample:
            ok, hint = False, "the function produced no output for non-empty input"
        score_columns = [key for key in (output_sample[0].keys() if output_sample else [])
                         if key.endswith("_score") or key in ("score", "final_score")]
        for column in score_columns:
            values = [row.get(column) for row in output_sample if row.get(column) is not None]
            if not values:
                continue
            if any(isinstance(v, (int, float)) and (v < -0.001 or v > 1.001) for v in values):
                ok, hint = False, f"column {column!r} has values outside [0, 1]"
            if len(values) >= 3 and len({round(float(v), 6) for v in values}) == 1:
                ok, hint = False, f"column {column!r} is constant across sampled rows"
        if "recency" in lowered and output_sample:
            # Higher year must not get a lower recency score.
            pairs = [(row.get("year"), row.get("recency_score")) for row in output_sample
                     if row.get("year") is not None and row.get("recency_score") is not None]
            for (year_a, score_a) in pairs:
                for (year_b, score_b) in pairs:
                    if year_a > year_b and score_a < score_b - 1e-9:
                        ok, hint = False, ("recency_score decreases as year increases; "
                                           "the score appears to be reversed")
                        break
        self._charge(description + repr(input_sample[:2]) + repr(output_sample[:2]),
                     f"ok={ok} hint={hint}", purpose)
        return ok, hint

    # -- text generation (sketches, explanations) -------------------------------------------
    def render_text(self, template: str, purpose: str = "text_generation", **fields: Any) -> str:
        """Render a text template, charging generation tokens for the output."""
        text = template.format(**fields)
        self._charge(template + repr(fields), text, purpose)
        return text

    def complete(self, prompt: str, purpose: str = "freeform_completion") -> str:
        """A generic completion entry point.

        Routes a handful of known prompt shapes (keyword requests, clarification
        questions) and otherwise echoes a short acknowledgement.  Exists so that
        code written against a ``complete()``-style API keeps working.
        """
        lowered = prompt.lower()
        if "keyword" in lowered:
            concept = self._resolve_concept(prompt) or "excitement"
            completion = ", ".join(self.lexicon.terms_for(concept)[: self.keyword_count])
        elif "clarif" in lowered or "ambiguous" in lowered:
            reports = self.detect_ambiguity(prompt)
            completion = reports[0].question if reports else "The request appears unambiguous."
        else:
            completion = "Acknowledged: " + prompt[:120]
        self._charge(prompt, completion, purpose)
        return completion

"""A Tesseract-style OCR text extractor over synthetic posters.

The paper's example of physical-plan alternatives is "an image-to-text
extraction operator may be instantiated using either a VLM-based
implementation or an OCR-based implementation such as Tesseract".  The
synthetic poster's ``text_overlay`` plays the role of printed text; the OCR
extractor reads it (occasionally garbling characters), charges very few
tokens, and knows nothing about the depicted objects.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.data.images import SyntheticImage
from repro.models.cost import CostMeter
from repro.utils.seed import SeededRNG
from repro.utils.text import estimate_tokens

OCR_CALL_TOKENS = 12


class OCRTextExtractor:
    """Reads the printed text on a poster."""

    #: Prompt/setup tokens one serial request embeds (engine configuration a
    #: batched invocation pays once); OCR_CALL_TOKENS is 12.
    BATCH_OVERHEAD_TOKENS = 8

    def __init__(self, cost_meter: Optional[CostMeter] = None, error_rate: float = 0.02,
                 seed: object = 0, name: str = "ocr:sim-tesseract"):
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError("error_rate must be in [0, 1]")
        self.cost_meter = cost_meter
        self.error_rate = error_rate
        self.name = name
        self._rng = SeededRNG(("ocr", seed))

    def _charge(self, purpose: str, text: str) -> None:
        if self.cost_meter is not None:
            self.cost_meter.record(self.name, purpose,
                                   prompt_tokens=OCR_CALL_TOKENS,
                                   completion_tokens=estimate_tokens(text))

    def extract_text_batch(self, images: Sequence[SyntheticImage],
                           purpose: str = "ocr") -> List[Dict[str, Any]]:
        """Read many posters as one batched invocation.

        Element-wise identical to serial :meth:`extract_text` calls (the RNG
        forks on the image URI, not call order); charged as a single
        :class:`~repro.models.cost.BatchedModelCall`.
        """
        from repro.models.batching import run_model_batch
        return run_model_batch(self, "extract_text",
                               [((image,), {"purpose": purpose}) for image in images])

    def extract_text(self, image: SyntheticImage, purpose: str = "ocr") -> Dict[str, Any]:
        """Extract printed text from the poster.

        Returns the recognized text and a per-character confidence; characters
        are occasionally garbled according to ``error_rate``.
        """
        rng = self._rng.fork(image.uri)
        source = image.text_overlay or ""
        recognized = []
        errors = 0
        for char in source:
            if char.isalpha() and rng.chance(self.error_rate):
                recognized.append(rng.choice("abcdefghijklmnopqrstuvwxyz"))
                errors += 1
            else:
                recognized.append(char)
        text = "".join(recognized)
        confidence = 1.0 if not source else 1.0 - errors / max(1, len(source))
        result = {"text": text, "confidence": confidence}
        self._charge(purpose, text)
        return result

"""Deterministic, lexicon-grounded text embeddings.

The physical implementation of several FAO operators is "embed the extracted
objects, embed the concepts from the generated keyword list, compute their
similarity" (paper Section 1).  This module provides an embedding model whose
vectors are:

* **semantic** -- one dimension block per lexicon concept, so terms sharing a
  concept have high cosine similarity; and
* **deterministic** -- a hashed residual sub-vector makes unrelated terms
  near-orthogonal without any randomness across runs.

The model charges embedding tokens to the shared :class:`CostMeter`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.models.cost import CostMeter
from repro.models.lexicon import DEFAULT_LEXICON, Lexicon
from repro.utils.seed import stable_hash
from repro.utils.text import content_words, estimate_tokens, normalize


def cosine_similarity(a: Sequence[float], b: Sequence[float]) -> float:
    """Cosine similarity of two vectors (0.0 when either is all-zero)."""
    va = np.asarray(a, dtype=float)
    vb = np.asarray(b, dtype=float)
    norm = float(np.linalg.norm(va) * np.linalg.norm(vb))
    if norm == 0.0:
        return 0.0
    return float(np.dot(va, vb) / norm)


class EmbeddingModel:
    """Embeds words and texts into a fixed-dimension vector space."""

    #: Prompt/setup tokens one serial request embeds (the request framing a
    #: batched invocation pays once); see :mod:`repro.models.batching`.
    BATCH_OVERHEAD_TOKENS = 8

    def __init__(self, lexicon: Optional[Lexicon] = None, dimensions: int = 64,
                 concept_weight: float = 3.0, cost_meter: Optional[CostMeter] = None,
                 name: str = "embedding:lexicon-64"):
        if dimensions < 8:
            raise ValueError("dimensions must be at least 8")
        self.lexicon = lexicon or DEFAULT_LEXICON
        self.dimensions = dimensions
        self.concept_weight = concept_weight
        self.cost_meter = cost_meter
        self.name = name
        self._concept_axes: Dict[str, int] = {
            concept: index for index, concept in enumerate(self.lexicon.concept_names())
        }
        self._residual_dims = max(4, dimensions - len(self._concept_axes))
        self._cache: Dict[str, np.ndarray] = {}

    @property
    def vector_width(self) -> int:
        """The dimensionality of every vector this model emits.

        The concept block plus the hashed residual block — callers that
        pre-size vector structures (the gateway's LSH index builds its
        hyperplane matrix eagerly from this) read it instead of probing
        with a throwaway embedding.
        """
        return len(self._concept_axes) + self._residual_dims

    # -- internals --------------------------------------------------------------
    def _charge(self, text: str, purpose: str) -> None:
        if self.cost_meter is not None:
            tokens = estimate_tokens(text)
            self.cost_meter.record(self.name, purpose, prompt_tokens=tokens, completion_tokens=0)

    def _word_vector(self, word: str) -> np.ndarray:
        key = normalize(word)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        concept_part = np.zeros(len(self._concept_axes), dtype=float)
        for concept in self.lexicon.concepts_of_term(key):
            # Concepts added to the lexicon after the model was built (e.g. a
            # clarified subjective term) have no axis of their own; their terms
            # still resolve through the original concepts they belong to.
            axis = self._concept_axes.get(concept)
            if axis is not None:
                concept_part[axis] = self.concept_weight
        residual = np.zeros(self._residual_dims, dtype=float)
        seed = stable_hash("embedding", key)
        # Three pseudo-random residual components keep unrelated words apart.
        for i in range(3):
            index = (seed >> (i * 8)) % self._residual_dims
            sign = 1.0 if ((seed >> (i * 8 + 7)) & 1) else -1.0
            residual[index] += sign
        vector = np.concatenate([concept_part, residual])
        self._cache[key] = vector
        return vector

    # -- public API ----------------------------------------------------------------
    def embed_word(self, word: str, purpose: str = "embed_word") -> np.ndarray:
        """Embedding of a single word."""
        self._charge(word, purpose)
        return self._word_vector(word)

    def embed_text(self, text: str, purpose: str = "embed_text") -> np.ndarray:
        """Embedding of a text: mean of content-word embeddings."""
        self._charge(text, purpose)
        words = content_words(text)
        if not words:
            return np.zeros(len(self._concept_axes) + self._residual_dims, dtype=float)
        vectors = [self._word_vector(w) for w in words]
        return np.mean(vectors, axis=0)

    def embed_many(self, texts: Iterable[str], purpose: str = "embed_batch") -> List[np.ndarray]:
        """Embed a batch of texts (serial accounting; see :meth:`embed_text_batch`)."""
        return [self.embed_text(t, purpose=purpose) for t in texts]

    def embed_text_batch(self, texts: Sequence[str],
                         purpose: str = "embed_text") -> List[np.ndarray]:
        """Embed many texts as **one batched invocation**.

        Bit-identical to calling :meth:`embed_text` per text, but charged as
        a single :class:`~repro.models.cost.BatchedModelCall`: one shared
        request overhead plus per-text marginal cost (sub-linear in batch
        size), one invocation's worth of synthetic latency.
        """
        from repro.models.batching import run_model_batch
        return run_model_batch(self, "embed_text",
                               [((text,), {"purpose": purpose}) for text in texts])

    def similarity(self, text_a: str, text_b: str, purpose: str = "similarity") -> float:
        """Cosine similarity between two texts."""
        return cosine_similarity(self.embed_text(text_a, purpose=purpose),
                                 self.embed_text(text_b, purpose=purpose))

    def max_similarity(self, query_terms: Sequence[str], candidate_terms: Sequence[str],
                       purpose: str = "max_similarity") -> float:
        """Best pairwise similarity between two term sets (keyword matching).

        This is the primitive used by generated excitement-scoring functions:
        LLM-generated keywords on one side, extracted entities/objects on the
        other.
        """
        best = 0.0
        for query in query_terms:
            query_vec = self.embed_word(query, purpose=purpose)
            for candidate in candidate_terms:
                score = cosine_similarity(query_vec, self.embed_word(candidate, purpose=purpose))
                best = max(best, score)
        return best

    def aggregate_similarity(self, query_terms: Sequence[str], candidate_terms: Sequence[str],
                             purpose: str = "aggregate_similarity") -> float:
        """A smooth [0, 1] score of how strongly candidates match the query terms.

        Computes, for each candidate, its best similarity to any query term,
        then combines them with a saturating (noisy-or style) aggregation so
        that more matching candidates monotonically increase the score -- the
        behaviour the paper's ``gen_excitement_score`` needs (more dangerous
        scenes, higher excitement).
        """
        if not query_terms or not candidate_terms:
            return 0.0
        query_vectors = [self.embed_word(q, purpose=purpose) for q in query_terms]
        score = 1.0
        for candidate in candidate_terms:
            candidate_vector = self.embed_word(candidate, purpose=purpose)
            best = max(cosine_similarity(candidate_vector, qv) for qv in query_vectors)
            best = max(0.0, min(1.0, best))
            score *= (1.0 - 0.9 * best)
        return 1.0 - score

    def match_fraction(self, query_terms: Sequence[str], candidate_terms: Sequence[str],
                       threshold: float = 0.5, purpose: str = "match_fraction") -> float:
        """Fraction of candidates that match any query term above ``threshold``.

        Unlike :meth:`aggregate_similarity` this does not saturate: it measures
        the *density* of matching content, so a plot with one violent sentence
        among many calm ones scores much lower than a plot that is violent
        throughout.  The default excitement-scoring FAO implementation uses it.
        """
        if not query_terms or not candidate_terms:
            return 0.0
        query_vectors = [self.embed_word(q, purpose=purpose) for q in query_terms]
        matches = 0
        for candidate in candidate_terms:
            candidate_vector = self.embed_word(candidate, purpose=purpose)
            best = max(cosine_similarity(candidate_vector, qv) for qv in query_vectors)
            if best >= threshold:
                matches += 1
        return matches / len(candidate_terms)

    def match_fraction_batch(self, query_terms: Sequence[str],
                             candidate_lists: Sequence[Sequence[str]],
                             threshold: float = 0.5,
                             purpose: str = "match_fraction") -> List[float]:
        """Score many candidate lists against one query set in one batch.

        This is the column-vector form of :meth:`match_fraction` the
        vectorized FAO bodies use: one row's extracted terms per member,
        element-wise identical results, charged as a single
        :class:`~repro.models.cost.BatchedModelCall` (the query-side
        embedding/request framing is the shared setup a batch pays once).
        """
        from repro.models.batching import run_model_batch
        query = tuple(query_terms)
        return run_model_batch(
            self, "match_fraction",
            [((query, tuple(candidates)),
              {"threshold": threshold, "purpose": purpose})
             for candidates in candidate_lists])

    def nearest(self, query: str, candidates: Sequence[str], top_k: int = 5,
                purpose: str = "nearest") -> List[tuple]:
        """The ``top_k`` candidates most similar to ``query`` as (term, score)."""
        query_vector = self.embed_text(query, purpose=purpose)
        scored = []
        for candidate in candidates:
            score = cosine_similarity(query_vector, self.embed_text(candidate, purpose=purpose))
            scored.append((candidate, score))
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:top_k]

"""The semantic lexicon that grounds every simulated model.

The simulated LLM, VLM, and embedding model all need a shared notion of what
words *mean* so that, e.g., the keyword list generated for "exciting" actually
matches the entities extracted from an exciting plot, and a poster full of
weapons scores high on excitement.  A :class:`Lexicon` is a set of named
concept clusters; cluster membership drives embeddings, keyword generation,
and scoring.

This is the reproduction's stand-in for the world knowledge a real foundation
model brings.  The default lexicon covers the paper's running example (movie
excitement, boring posters, recency) plus enough extra domains (healthcare,
science, media) to support additional workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.utils.text import content_words, normalize, tokenize


@dataclass
class Concept:
    """One concept cluster: a canonical name plus member terms."""

    name: str
    terms: Set[str] = field(default_factory=set)
    description: str = ""

    def __post_init__(self):
        self.terms = {normalize(t) for t in self.terms}
        self.terms.add(normalize(self.name))

    def contains(self, term: str) -> bool:
        """Whether ``term`` belongs to this concept (exact, normalized)."""
        return normalize(term) in self.terms


class Lexicon:
    """A collection of concept clusters with membership and affinity queries."""

    def __init__(self, concepts: Optional[Iterable[Concept]] = None):
        self._concepts: Dict[str, Concept] = {}
        # Mutation version: bumped by add/add_terms so fingerprint() can be
        # cached between mutations (the gateway fingerprints every model
        # call; a digest walk per call would dwarf the lookup it keys).
        self._version = 0
        self._fingerprint_cache: Optional[Tuple[int, str]] = None
        for concept in concepts or []:
            self.add(concept)

    # -- construction -----------------------------------------------------------
    def add(self, concept: Concept) -> None:
        """Register a concept cluster."""
        self._concepts[concept.name] = concept
        self._version += 1

    def add_terms(self, concept_name: str, terms: Sequence[str]) -> None:
        """Add extra terms to an existing concept (creating it if needed).

        This is how user feedback updates the system's interpretation of a
        subjective term (paper Figure 4): clarifications extend the cluster.
        Mutate concepts through this method (not ``concept.terms`` directly),
        or the cached :meth:`fingerprint` will go stale.
        """
        concept = self._concepts.get(concept_name)
        if concept is None:
            concept = Concept(concept_name, set(terms))
            self._concepts[concept_name] = concept
        else:
            concept.terms.update(normalize(t) for t in terms)
        self._version += 1

    @property
    def version(self) -> int:
        """Monotonic mutation counter (add / add_terms bump it)."""
        return self._version

    def fingerprint(self) -> str:
        """A process-stable digest of every concept cluster.

        Clarifications extend a session's private lexicon at runtime and the
        lexicon steers parsing/keyword generation, so prepared-query cache
        keys and gateway request keys include this digest: sessions whose
        lexicons diverged must not share compiled plans or model results.
        The digest is cached per mutation version — repeated calls between
        mutations are two attribute reads.
        """
        cached = self._fingerprint_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        from repro.utils.seed import stable_hash
        payload = tuple((name, tuple(sorted(self._concepts[name].terms)))
                        for name in sorted(self._concepts))
        digest = f"{stable_hash(payload):016x}"
        self._fingerprint_cache = (self._version, digest)
        return digest

    def copy(self) -> "Lexicon":
        """A deep copy of this lexicon.

        Sessions clone the shared lexicon so that user clarifications recorded
        in one session never leak into concurrently running sessions.
        """
        return Lexicon(Concept(c.name, set(c.terms), c.description)
                       for c in self._concepts.values())

    # -- queries -----------------------------------------------------------------
    def concept_names(self) -> List[str]:
        """All registered concept names."""
        return sorted(self._concepts)

    def concept(self, name: str) -> Optional[Concept]:
        """Look up one concept by name."""
        return self._concepts.get(name)

    def terms_for(self, concept_name: str) -> List[str]:
        """All member terms of one concept (empty list if unknown)."""
        concept = self._concepts.get(concept_name)
        return sorted(concept.terms) if concept else []

    def concepts_of_term(self, term: str) -> List[str]:
        """All concepts a term belongs to."""
        normalized = normalize(term)
        return sorted(name for name, c in self._concepts.items() if normalized in c.terms)

    def membership_vector(self, term: str) -> Dict[str, float]:
        """Concept-membership weights for a term (1.0 per containing concept)."""
        return {name: 1.0 for name in self.concepts_of_term(term)}

    def affinity(self, term_a: str, term_b: str) -> float:
        """Jaccard affinity between the concept sets of two terms.

        Returns 1.0 for identical normalized terms, 0.0 when they share no
        concept.
        """
        a, b = normalize(term_a), normalize(term_b)
        if a == b:
            return 1.0
        concepts_a = set(self.concepts_of_term(a))
        concepts_b = set(self.concepts_of_term(b))
        if not concepts_a or not concepts_b:
            return 0.0
        intersection = concepts_a & concepts_b
        union = concepts_a | concepts_b
        return len(intersection) / len(union)

    def text_affinity(self, text: str, concept_name: str) -> float:
        """Fraction of a text's content words that belong to a concept.

        Used by the simulated scoring functions ("how exciting is this plot")
        and by the black-box LLM baseline.
        """
        words = content_words(text)
        if not words:
            return 0.0
        concept = self._concepts.get(concept_name)
        if concept is None:
            return 0.0
        hits = sum(1 for w in words if w in concept.terms)
        return hits / len(words)

    def matching_terms(self, text: str, concept_name: str) -> List[str]:
        """Which words of ``text`` belong to ``concept_name`` (deduplicated)."""
        concept = self._concepts.get(concept_name)
        if concept is None:
            return []
        seen: Set[str] = set()
        out: List[str] = []
        for word in tokenize(text):
            if word in concept.terms and word not in seen:
                seen.add(word)
                out.append(word)
        return out

    def best_concept(self, term: str) -> Optional[str]:
        """The first concept (alphabetically) containing ``term``, if any."""
        concepts = self.concepts_of_term(term)
        return concepts[0] if concepts else None


# ---------------------------------------------------------------------------
# The default lexicon
# ---------------------------------------------------------------------------
def _default_concepts() -> List[Concept]:
    return [
        Concept(
            "excitement",
            {
                "gun", "guns", "gunfight", "shootout", "murder", "kill", "killed", "killing",
                "weapon", "weapons", "knife", "bomb", "explosion", "explode", "chase", "chased",
                "fight", "fighting", "battle", "war", "attack", "attacked", "threat", "threatened",
                "danger", "dangerous", "death", "dead", "die", "dies", "escape", "escapes",
                "heist", "robbery", "hostage", "crash", "crashes", "conspiracy", "betrayal",
                "spy", "assassin", "motorcycle", "stunt", "violent", "violence", "terror",
                "blackmail", "interrogation", "accused", "suspicion", "fugitive", "pursuit",
                "shooting", "shot", "criminal", "crime", "gangster", "uncommon",
            },
            description="Things that make a plot or scene exciting / dangerous / action-heavy.",
        ),
        Concept(
            "calm",
            {
                "quiet", "calm", "peaceful", "gentle", "walk", "walking", "garden", "tea",
                "conversation", "dinner", "routine", "ordinary", "everyday", "mundane",
                "meeting", "office", "paperwork", "slow", "serene", "nap", "reading",
                "friendship", "recovery", "healing", "support", "counseling", "sober",
            },
            description="Calm, everyday, low-stakes activities.",
        ),
        Concept(
            "boring_visual",
            {
                "plain", "blank", "empty", "monochrome", "gray", "grey", "beige", "dull",
                "minimal", "sparse", "text", "letters", "portrait", "face", "suit", "wall",
                "background", "still", "static", "muted",
            },
            description="Visual features of a boring poster: plain background, few objects, muted colors.",
        ),
        Concept(
            "vivid_visual",
            {
                "explosion", "fire", "flames", "neon", "colorful", "bright", "vibrant",
                "crowd", "cityscape", "helicopter", "car", "motorcycle", "gun", "weapon",
                "lightning", "spaceship", "monster", "robot", "burst", "action",
            },
            description="Visual features of a vivid, busy, action-heavy poster.",
        ),
        Concept(
            "recency",
            {"recent", "new", "newer", "latest", "modern", "current", "release", "released"},
            description="Terms about how recent something is.",
        ),
        Concept(
            "person",
            {
                "man", "woman", "person", "he", "she", "actor", "actress", "director",
                "detective", "agent", "doctor", "lawyer", "writer", "producer",
            },
            description="Person-like entity classes.",
        ),
        Concept(
            "romance",
            {
                "love", "romance", "romantic", "kiss", "wedding", "marriage", "heart",
                "relationship", "affair", "passion", "date", "dating",
            },
            description="Romantic themes.",
        ),
        Concept(
            "comedy",
            {
                "funny", "comedy", "laugh", "laughs", "joke", "jokes", "hilarious",
                "prank", "awkward", "silly",
            },
            description="Comedic themes.",
        ),
        Concept(
            "science",
            {
                "experiment", "laboratory", "research", "scientist", "data", "measurement",
                "hypothesis", "cell", "protein", "genome", "telescope", "quantum",
            },
            description="Scientific themes (extra domain for non-movie workloads).",
        ),
        Concept(
            "healthcare",
            {
                "patient", "hospital", "diagnosis", "treatment", "surgery", "nurse",
                "doctor", "clinic", "symptom", "therapy", "recovery", "medication",
            },
            description="Healthcare themes (extra domain for non-movie workloads).",
        ),
        Concept(
            "subjective",
            {
                "exciting", "boring", "interesting", "good", "best", "nice", "beautiful",
                "scary", "funny", "sad", "happy", "dramatic", "thrilling", "memorable",
                "notable", "cool", "great", "bad", "worst", "weird", "unusual",
            },
            description="Subjective / user-dependent terms that trigger clarification questions.",
        ),
        Concept(
            "award",
            {"award", "awards", "oscar", "winner", "winning", "nominated", "nomination", "prize"},
            description="Award-related terms (an alternative interpretation of 'exciting').",
        ),
    ]


DEFAULT_LEXICON = Lexicon(_default_concepts())


def default_lexicon() -> Lexicon:
    """A fresh copy of the default lexicon (mutating it will not affect others)."""
    return Lexicon(_default_concepts())

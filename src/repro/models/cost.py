"""Token and latency accounting for simulated model calls.

KathDB's optimizer "attaches cost and accuracy statistics to individual FAO
implementations and compares alternatives under a unified cost model".  The
:class:`CostMeter` is the ledger those statistics are drawn from: every
simulated model call reports its prompt/completion token counts and a
synthetic latency, tagged with the model name and a free-form *purpose*
(e.g. ``"sketch_generation"``, ``"classify_boring"``).

Two ledger shapes exist:

* :class:`ModelCall` — one serial invocation, charged as the model runs;
* :class:`BatchedModelCall` — one *batched* invocation (or one member's
  share of it): several logical calls executed together pay a single shared
  prompt/setup overhead plus per-item marginal cost, so the ledger shows
  batching as sub-linear token growth the way a real serving stack's bill
  does.  ``serial_tokens`` keeps what the covered calls would have cost one
  by one, making the savings auditable.

The meter is thread-safe: a batch leader records member shares on *other*
sessions' meters while those sessions may be summarizing their own.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional


#: Synthetic per-token latency (seconds) by model family; only relative
#: magnitudes matter for the benchmarks.
LATENCY_PER_TOKEN = {
    "llm": 0.00002,
    "vlm": 0.00004,
    "embedding": 0.000002,
    "ner": 0.000004,
    "detector": 0.00001,
    "ocr": 0.000003,
}


def family_latency(model: str, tokens: int) -> float:
    """The synthetic latency of ``tokens`` on a model (by its family prefix)."""
    family = model.split(":", 1)[0]
    return LATENCY_PER_TOKEN.get(family, 0.00002) * tokens


@dataclass
class ModelCall:
    """One recorded model invocation."""

    model: str
    purpose: str
    prompt_tokens: int
    completion_tokens: int
    latency_s: float = 0.0

    @property
    def total_tokens(self) -> int:
        """Prompt + completion tokens."""
        return self.prompt_tokens + self.completion_tokens


@dataclass
class BatchedModelCall(ModelCall):
    """One batched invocation, or one member's fair share of it.

    ``batch_size`` is how many logical calls shared the invocation.
    ``members`` is how many of them this record covers: the whole batch when
    a model's ``*_batch()`` entry point charges one meter, or 1 when the
    gateway splits the charge across the member sessions' meters.
    ``serial_tokens`` is what the covered calls would have cost serially, so
    ``tokens_saved`` is the sub-linear discount this record captures.
    """

    batch_size: int = 1
    members: int = 1
    serial_tokens: int = 0

    @property
    def tokens_saved(self) -> int:
        """Tokens the batch saved versus serial execution of these members."""
        return max(0, self.serial_tokens - self.total_tokens)


@dataclass
class CostSummary:
    """Aggregated view over a set of calls."""

    calls: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    latency_s: float = 0.0

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens

    def add(self, call: ModelCall) -> None:
        self.calls += 1
        self.prompt_tokens += call.prompt_tokens
        self.completion_tokens += call.completion_tokens
        self.latency_s += call.latency_s


class CostMeter:
    """Accumulates :class:`ModelCall` records and summarizes them."""

    #: Kept as a class attribute for backwards compatibility; the canonical
    #: table is module-level :data:`LATENCY_PER_TOKEN`.
    LATENCY_PER_TOKEN = LATENCY_PER_TOKEN

    # Thread-local capture frames: while a capture() is active on a thread,
    # *every* meter's record() on that thread diverts into the innermost
    # frame instead of any ledger.  Batched execution uses this to cost a
    # member's serial price without charging it.
    _capture = threading.local()

    def __init__(self, latency_scale: float = 0.0, max_sleep_s: float = 0.05):
        self._calls: List[ModelCall] = []
        self._lock = threading.Lock()
        # When > 0, every recorded call actually *sleeps* its synthetic latency
        # multiplied by this scale (capped per call).  Real model calls are
        # network-bound, so this is what makes the concurrency benchmarks
        # honest: sleeping releases the GIL exactly like an HTTP wait would.
        self.latency_scale = latency_scale
        self.max_sleep_s = max_sleep_s

    # -- capture ------------------------------------------------------------
    @classmethod
    @contextmanager
    def capture(cls) -> Iterator[List[ModelCall]]:
        """Divert this thread's charges into the yielded list.

        Calls recorded while the context is active are appended to the list
        instead of any meter's ledger, and never sleep their latency — the
        caller is pricing work, not performing it.
        """
        frames = getattr(cls._capture, "frames", None)
        if frames is None:
            frames = cls._capture.frames = []
        buffer: List[ModelCall] = []
        frames.append(buffer)
        try:
            yield buffer
        finally:
            frames.pop()

    @classmethod
    def _capture_frame(cls) -> Optional[List[ModelCall]]:
        frames = getattr(cls._capture, "frames", None)
        return frames[-1] if frames else None

    def _append(self, call: ModelCall) -> ModelCall:
        frame = self._capture_frame()
        if frame is not None:
            frame.append(call)
            return call
        with self._lock:
            self._calls.append(call)
        if self.latency_scale > 0.0 and call.latency_s > 0.0:
            time.sleep(min(call.latency_s * self.latency_scale, self.max_sleep_s))
        return call

    # -- recording ------------------------------------------------------------
    def record(self, model: str, purpose: str, prompt_tokens: int,
               completion_tokens: int, latency_s: Optional[float] = None) -> ModelCall:
        """Record one call and return it."""
        if latency_s is None:
            latency_s = family_latency(model, prompt_tokens + completion_tokens)
        call = ModelCall(model=model, purpose=purpose,
                         prompt_tokens=max(0, int(prompt_tokens)),
                         completion_tokens=max(0, int(completion_tokens)),
                         latency_s=latency_s)
        return self._append(call)

    def record_batched(self, model: str, purpose: str, prompt_tokens: int,
                       completion_tokens: int, *, batch_size: int,
                       serial_tokens: int, members: int = 1,
                       latency_s: Optional[float] = None) -> BatchedModelCall:
        """Record one batched invocation (or one member's share of it)."""
        if latency_s is None:
            latency_s = family_latency(model, prompt_tokens + completion_tokens)
        call = BatchedModelCall(model=model, purpose=purpose,
                                prompt_tokens=max(0, int(prompt_tokens)),
                                completion_tokens=max(0, int(completion_tokens)),
                                latency_s=latency_s,
                                batch_size=max(1, int(batch_size)),
                                members=max(1, int(members)),
                                serial_tokens=max(0, int(serial_tokens)))
        self._append(call)
        return call

    def reset(self) -> None:
        """Forget all recorded calls."""
        with self._lock:
            self._calls = []

    # -- inspection -------------------------------------------------------------
    @property
    def calls(self) -> List[ModelCall]:
        """All recorded calls, in order."""
        with self._lock:
            return list(self._calls)

    def __len__(self) -> int:
        with self._lock:
            return len(self._calls)

    @property
    def total_tokens(self) -> int:
        """Total tokens across all calls."""
        return sum(c.total_tokens for c in self.calls)

    @property
    def total_latency_s(self) -> float:
        """Total synthetic latency across all calls."""
        return sum(c.latency_s for c in self.calls)

    @property
    def batch_tokens_saved(self) -> int:
        """Tokens batched invocations saved versus serial execution."""
        return sum(c.tokens_saved for c in self.calls
                   if isinstance(c, BatchedModelCall))

    def summary(self) -> CostSummary:
        """Aggregate over every call."""
        summary = CostSummary()
        for call in self.calls:
            summary.add(call)
        return summary

    def by_model(self) -> Dict[str, CostSummary]:
        """Aggregate per model name."""
        out: Dict[str, CostSummary] = {}
        for call in self.calls:
            out.setdefault(call.model, CostSummary()).add(call)
        return out

    def by_purpose(self) -> Dict[str, CostSummary]:
        """Aggregate per purpose tag."""
        out: Dict[str, CostSummary] = {}
        for call in self.calls:
            out.setdefault(call.purpose, CostSummary()).add(call)
        return out

    def tokens_for_purpose(self, purpose: str) -> int:
        """Total tokens charged against one purpose tag."""
        return sum(c.total_tokens for c in self.calls if c.purpose == purpose)

    def snapshot(self) -> int:
        """Return a marker (call count) for later :meth:`tokens_since`."""
        with self._lock:
            return len(self._calls)

    def tokens_since(self, marker: int) -> int:
        """Tokens recorded after a :meth:`snapshot` marker."""
        with self._lock:
            tail = self._calls[marker:]
        return sum(c.total_tokens for c in tail)

    def report(self) -> str:
        """Human-readable multi-line cost report."""
        lines = ["model call cost report", "----------------------"]
        for model, summary in sorted(self.by_model().items()):
            lines.append(
                f"{model:<24} calls={summary.calls:<4} tokens={summary.total_tokens:<8}"
                f" latency={summary.latency_s:.3f}s"
            )
        total = self.summary()
        lines.append(f"{'TOTAL':<24} calls={total.calls:<4} tokens={total.total_tokens:<8}"
                     f" latency={total.latency_s:.3f}s")
        return "\n".join(lines)

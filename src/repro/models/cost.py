"""Token and latency accounting for simulated model calls.

KathDB's optimizer "attaches cost and accuracy statistics to individual FAO
implementations and compares alternatives under a unified cost model".  The
:class:`CostMeter` is the ledger those statistics are drawn from: every
simulated model call reports its prompt/completion token counts and a
synthetic latency, tagged with the model name and a free-form *purpose*
(e.g. ``"sketch_generation"``, ``"classify_boring"``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class ModelCall:
    """One recorded model invocation."""

    model: str
    purpose: str
    prompt_tokens: int
    completion_tokens: int
    latency_s: float = 0.0

    @property
    def total_tokens(self) -> int:
        """Prompt + completion tokens."""
        return self.prompt_tokens + self.completion_tokens


@dataclass
class CostSummary:
    """Aggregated view over a set of calls."""

    calls: int = 0
    prompt_tokens: int = 0
    completion_tokens: int = 0
    latency_s: float = 0.0

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens

    def add(self, call: ModelCall) -> None:
        self.calls += 1
        self.prompt_tokens += call.prompt_tokens
        self.completion_tokens += call.completion_tokens
        self.latency_s += call.latency_s


class CostMeter:
    """Accumulates :class:`ModelCall` records and summarizes them."""

    # Synthetic per-token latency (seconds) by model family; only relative
    # magnitudes matter for the benchmarks.
    LATENCY_PER_TOKEN = {
        "llm": 0.00002,
        "vlm": 0.00004,
        "embedding": 0.000002,
        "ner": 0.000004,
        "detector": 0.00001,
        "ocr": 0.000003,
    }

    def __init__(self, latency_scale: float = 0.0, max_sleep_s: float = 0.05):
        self._calls: List[ModelCall] = []
        # When > 0, every recorded call actually *sleeps* its synthetic latency
        # multiplied by this scale (capped per call).  Real model calls are
        # network-bound, so this is what makes the concurrency benchmarks
        # honest: sleeping releases the GIL exactly like an HTTP wait would.
        self.latency_scale = latency_scale
        self.max_sleep_s = max_sleep_s

    # -- recording ------------------------------------------------------------
    def record(self, model: str, purpose: str, prompt_tokens: int,
               completion_tokens: int, latency_s: Optional[float] = None) -> ModelCall:
        """Record one call and return it."""
        if latency_s is None:
            family = model.split(":", 1)[0]
            per_token = self.LATENCY_PER_TOKEN.get(family, 0.00002)
            latency_s = per_token * (prompt_tokens + completion_tokens)
        call = ModelCall(model=model, purpose=purpose,
                         prompt_tokens=max(0, int(prompt_tokens)),
                         completion_tokens=max(0, int(completion_tokens)),
                         latency_s=latency_s)
        self._calls.append(call)
        if self.latency_scale > 0.0 and call.latency_s > 0.0:
            time.sleep(min(call.latency_s * self.latency_scale, self.max_sleep_s))
        return call

    def reset(self) -> None:
        """Forget all recorded calls."""
        self._calls = []

    # -- inspection -------------------------------------------------------------
    @property
    def calls(self) -> List[ModelCall]:
        """All recorded calls, in order."""
        return list(self._calls)

    def __len__(self) -> int:
        return len(self._calls)

    @property
    def total_tokens(self) -> int:
        """Total tokens across all calls."""
        return sum(c.total_tokens for c in self._calls)

    @property
    def total_latency_s(self) -> float:
        """Total synthetic latency across all calls."""
        return sum(c.latency_s for c in self._calls)

    def summary(self) -> CostSummary:
        """Aggregate over every call."""
        summary = CostSummary()
        for call in self._calls:
            summary.add(call)
        return summary

    def by_model(self) -> Dict[str, CostSummary]:
        """Aggregate per model name."""
        out: Dict[str, CostSummary] = {}
        for call in self._calls:
            out.setdefault(call.model, CostSummary()).add(call)
        return out

    def by_purpose(self) -> Dict[str, CostSummary]:
        """Aggregate per purpose tag."""
        out: Dict[str, CostSummary] = {}
        for call in self._calls:
            out.setdefault(call.purpose, CostSummary()).add(call)
        return out

    def tokens_for_purpose(self, purpose: str) -> int:
        """Total tokens charged against one purpose tag."""
        return sum(c.total_tokens for c in self._calls if c.purpose == purpose)

    def snapshot(self) -> int:
        """Return a marker (call count) for later :meth:`tokens_since`."""
        return len(self._calls)

    def tokens_since(self, marker: int) -> int:
        """Tokens recorded after a :meth:`snapshot` marker."""
        return sum(c.total_tokens for c in self._calls[marker:])

    def report(self) -> str:
        """Human-readable multi-line cost report."""
        lines = ["model call cost report", "----------------------"]
        for model, summary in sorted(self.by_model().items()):
            lines.append(
                f"{model:<24} calls={summary.calls:<4} tokens={summary.total_tokens:<8}"
                f" latency={summary.latency_s:.3f}s"
            )
        total = self.summary()
        lines.append(f"{'TOTAL':<24} calls={total.calls:<4} tokens={total.total_tokens:<8}"
                     f" latency={total.latency_s:.3f}s")
        return "\n".join(lines)

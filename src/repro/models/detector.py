"""A cheap pixel-statistics object detector.

This is the second *physical implementation* of image analysis (the paper's
example contrasts a VLM-based implementation with an OCR/classic-CV one).  It
only looks at rendered pixels: it finds uniformly colored rectangular regions
that differ from the background and reports them as class-less "region"
objects, plus poster-level color statistics.  It is much cheaper than the VLM
but knows nothing about object classes, so classification functions built on
it are less accurate -- exactly the cost/accuracy spread the optimizer needs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.data.images import SyntheticImage
from repro.models.cost import CostMeter

DETECTOR_CALL_TOKENS = 40


class PixelObjectDetector:
    """Detects colored regions in synthetic poster pixels."""

    #: Prompt/setup tokens one serial request embeds (detector configuration
    #: a batched invocation pays once); DETECTOR_CALL_TOKENS is 40, so most
    #: of a call's prompt is shareable setup — like a real vision backend.
    BATCH_OVERHEAD_TOKENS = 32

    def __init__(self, cost_meter: Optional[CostMeter] = None, name: str = "detector:pixel-stats",
                 min_region_fraction: float = 0.005):
        self.cost_meter = cost_meter
        self.name = name
        self.min_region_fraction = min_region_fraction

    def _charge(self, purpose: str) -> None:
        if self.cost_meter is not None:
            self.cost_meter.record(self.name, purpose,
                                   prompt_tokens=DETECTOR_CALL_TOKENS, completion_tokens=20)

    def detect_batch(self, images: Sequence[SyntheticImage],
                     purpose: str = "pixel_detection") -> List[Dict[str, Any]]:
        """Detect over many posters as one batched invocation.

        Element-wise identical to serial :meth:`detect` calls; charged as a
        single :class:`~repro.models.cost.BatchedModelCall` (shared setup +
        per-image marginal cost).
        """
        from repro.models.batching import run_model_batch
        return run_model_batch(self, "detect",
                               [((image,), {"purpose": purpose}) for image in images])

    def detect(self, image: SyntheticImage, purpose: str = "pixel_detection") -> Dict[str, Any]:
        """Detect colored regions and compute poster-level statistics."""
        pixels = image.render_pixels()
        height, width = pixels.shape[:2]
        background = np.array(image.background_color, dtype=int)
        diff = np.abs(pixels.astype(int) - background).sum(axis=2)
        foreground = diff > 30

        regions: List[Dict[str, Any]] = []
        visited = np.zeros_like(foreground, dtype=bool)
        min_pixels = max(4, int(self.min_region_fraction * width * height))
        # Simple flood-fill over a coarse grid: sufficient for rectangles.
        for y in range(0, height, 4):
            for x in range(0, width, 4):
                if not foreground[y, x] or visited[y, x]:
                    continue
                # Bounding box of connected color: approximate by the color of
                # the seed pixel.
                seed_color = pixels[y, x]
                same_color = np.all(pixels == seed_color, axis=2) & foreground & (~visited)
                if same_color.sum() < min_pixels:
                    visited |= same_color
                    continue
                region_ys, region_xs = np.where(same_color)
                bbox = (int(region_xs.min()), int(region_ys.min()),
                        int(region_xs.max()) + 1, int(region_ys.max()) + 1)
                regions.append({
                    "class_name": "region",
                    "bbox": list(bbox),
                    "attributes": {"color_rgb": [int(c) for c in seed_color]},
                })
                visited |= same_color

        result = {
            "objects": regions,
            "relationships": [],
            "color_variance": image.color_variance(),
            "saturation": image.saturation(),
            "coverage": float(foreground.mean()),
            "text_overlay": "",
        }
        self._charge(purpose)
        return result

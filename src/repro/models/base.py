"""The model suite: one object bundling every simulated model.

KathDB's agents need an LLM, a VLM, an embedding model, an entity extractor,
and the cheaper physical alternatives (pixel detector, OCR), all sharing one
cost meter and one lexicon.  :class:`ModelSuite` wires them together so the
rest of the system takes a single dependency.

The batchable members (``embeddings``, ``ner``, ``detector``, ``ocr``)
expose true ``*_batch()`` entry points with sub-linear token cost (see
:mod:`repro.models.batching`); the gateway's micro-batcher dispatches
through the same machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.models.cost import CostMeter
from repro.models.detector import PixelObjectDetector
from repro.models.embeddings import EmbeddingModel
from repro.models.lexicon import Lexicon, default_lexicon
from repro.models.llm import SimulatedLLM
from repro.models.ner import EntityExtractor
from repro.models.ocr import OCRTextExtractor
from repro.models.vlm import SimulatedVLM


@dataclass
class ModelSuite:
    """All simulated models plus the shared cost meter and lexicon."""

    cost_meter: CostMeter
    lexicon: Lexicon
    llm: SimulatedLLM
    vlm: SimulatedVLM
    embeddings: EmbeddingModel
    ner: EntityExtractor
    detector: PixelObjectDetector
    ocr: OCRTextExtractor
    # Creation parameters, retained so sessions can fork seed-identical suites.
    seed: object = 0
    vlm_error_rate: float = 0.05
    ocr_error_rate: float = 0.02
    # Set on gateway-routed views of a suite (see :meth:`routed`): the
    # session's handle on the shared model gateway, or None for direct suites.
    gateway_client: Optional[object] = None

    @classmethod
    def create(cls, seed: object = 0, vlm_error_rate: float = 0.05,
               ocr_error_rate: float = 0.02, lexicon: Optional[Lexicon] = None,
               cost_meter: Optional[CostMeter] = None) -> "ModelSuite":
        """Build a fully wired model suite.

        Parameters
        ----------
        seed:
            Seed shared (after forking) by every stochastic component.
        vlm_error_rate / ocr_error_rate:
            Noise levels of the perception models; the defaults keep accuracy
            high but imperfect.
        lexicon:
            A custom lexicon; user clarifications may extend it at runtime, so
            every suite gets its own copy by default.
        cost_meter:
            A shared cost meter; a fresh one is created when omitted.
        """
        # CostMeter is sized (a fresh one is falsy), so test for None explicitly.
        meter = cost_meter if cost_meter is not None else CostMeter()
        lex = lexicon or default_lexicon()
        return cls(
            cost_meter=meter,
            lexicon=lex,
            llm=SimulatedLLM(cost_meter=meter, lexicon=lex, seed=seed),
            vlm=SimulatedVLM(cost_meter=meter, lexicon=lex, seed=seed, error_rate=vlm_error_rate),
            embeddings=EmbeddingModel(lexicon=lex, cost_meter=meter),
            ner=EntityExtractor(cost_meter=meter, lexicon=lex),
            detector=PixelObjectDetector(cost_meter=meter),
            ocr=OCRTextExtractor(cost_meter=meter, seed=seed, error_rate=ocr_error_rate),
            seed=seed,
            vlm_error_rate=vlm_error_rate,
            ocr_error_rate=ocr_error_rate,
        )

    def fork(self, cost_meter: Optional[CostMeter] = None,
             lexicon: Optional[Lexicon] = None) -> "ModelSuite":
        """A session-scoped suite: same seeds and noise levels as this one, but
        a fresh cost meter and a private copy of the lexicon.

        Because every simulated model derives its randomness per input (the
        RNGs fork on the item being processed, not on call order), a forked
        suite produces bit-identical outputs to its parent; only the ledgers
        and the mutable lexicon are isolated.
        """
        meter = cost_meter if cost_meter is not None else \
            CostMeter(latency_scale=self.cost_meter.latency_scale,
                      max_sleep_s=self.cost_meter.max_sleep_s)
        return ModelSuite.create(seed=self.seed,
                                 vlm_error_rate=self.vlm_error_rate,
                                 ocr_error_rate=self.ocr_error_rate,
                                 lexicon=lexicon or self.lexicon.copy(),
                                 cost_meter=meter)

    def routed(self, gateway, session_id: str,
               tenant_id: Optional[str] = None) -> "ModelSuite":
        """A view of this suite whose models call through a shared gateway.

        The view shares this suite's cost meter and lexicon — accounting and
        clarifications are unchanged — but every charged model entry point is
        wrapped in a gateway proxy, so identical requests from concurrent
        sessions are cached, coalesced, and micro-batched service-wide.
        ``tenant_id`` keys the gateway quota ledger (default: the session
        id).  Routing an already-routed suite returns it unchanged.
        """
        return gateway.route(self, session_id, tenant_id=tenant_id)

    def reset_costs(self) -> None:
        """Clear the shared cost meter."""
        self.cost_meter.reset()

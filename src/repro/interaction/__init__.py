"""Human-AI interaction channels (paper Section 5).

KathDB keeps users in the loop at three stages: query interpretation
(proactive clarification + reactive correction), execution (semantic-anomaly
escalation), and result explanation.  This package provides the channel
abstraction, several user implementations (scripted, simulated-policy,
console, silent), and a transcript that records every exchange.
"""

from repro.interaction.channel import InteractionChannel, Interaction, Transcript
from repro.interaction.user import (
    ConsoleUser,
    ScriptedUser,
    SilentUser,
    UserAgent,
)

__all__ = [
    "InteractionChannel",
    "Interaction",
    "Transcript",
    "UserAgent",
    "ScriptedUser",
    "SilentUser",
    "ConsoleUser",
]

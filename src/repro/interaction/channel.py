"""Interaction transcripts and the channel wrapper.

Every question KathDB asks and every answer the user gives flows through an
:class:`InteractionChannel`, which pairs a user agent with a
:class:`Transcript`.  The transcript is what the Figure 4 benchmark replays
and what the effort metrics (number of user turns) are computed from.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import InteractionError


class InteractionKind(enum.Enum):
    """Which stage of the pipeline an interaction belongs to."""

    CLARIFICATION = "clarification"          # proactive, during parsing
    SKETCH_REVIEW = "sketch_review"          # reactive correction, during parsing
    SEMANTIC_ANOMALY = "semantic_anomaly"    # during execution
    EXPLANATION_REQUEST = "explanation"      # after execution
    NOTICE = "notice"                        # system -> user, no reply expected


@dataclass
class Interaction:
    """One system/user exchange."""

    kind: InteractionKind
    system_message: str
    user_reply: Optional[str] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        reply = self.user_reply if self.user_reply is not None else "<no reply>"
        return f"[{self.kind.value}] system: {self.system_message}\n  user: {reply}"


@dataclass
class Transcript:
    """An ordered record of all interactions in one query session."""

    interactions: List[Interaction] = field(default_factory=list)

    def add(self, interaction: Interaction) -> Interaction:
        self.interactions.append(interaction)
        return interaction

    def __len__(self) -> int:
        return len(self.interactions)

    def __iter__(self):
        return iter(self.interactions)

    def of_kind(self, kind: InteractionKind) -> List[Interaction]:
        """All interactions of one kind."""
        return [i for i in self.interactions if i.kind == kind]

    def user_turns(self) -> int:
        """How many times the user actually replied (the effort metric)."""
        return sum(1 for i in self.interactions if i.user_reply not in (None, ""))

    def describe(self) -> str:
        """Multi-line rendering of the whole conversation."""
        if not self.interactions:
            return "(no interactions)"
        return "\n".join(i.describe() for i in self.interactions)


class InteractionChannel:
    """Pairs a user agent with a transcript and exposes typed ask/notify calls."""

    def __init__(self, user: "UserAgent", transcript: Optional[Transcript] = None):
        from repro.interaction.user import UserAgent  # local import to avoid a cycle

        if not isinstance(user, UserAgent):
            raise InteractionError(f"expected a UserAgent, got {type(user).__name__}")
        self.user = user
        # ``or`` would discard an *empty* shared transcript (it is falsy), so
        # test for None explicitly.
        self.transcript = transcript if transcript is not None else Transcript()

    # -- parsing stage ---------------------------------------------------------
    def ask_clarification(self, question: str, term: str) -> str:
        """Ask a proactive clarification question about an ambiguous term."""
        reply = self.user.answer_clarification(question, term)
        self.transcript.add(Interaction(InteractionKind.CLARIFICATION, question, reply,
                                        metadata={"term": term}))
        return reply

    def review_sketch(self, sketch_text: str, version: int) -> str:
        """Show the query sketch to the user; returns a correction or "OK"."""
        reply = self.user.review_sketch(sketch_text, version)
        self.transcript.add(Interaction(InteractionKind.SKETCH_REVIEW,
                                        f"(sketch v{version})\n{sketch_text}", reply,
                                        metadata={"version": version}))
        return reply

    # -- execution stage -----------------------------------------------------------
    def escalate_anomaly(self, message: str, options: List[str]) -> str:
        """Report a suspected semantic anomaly; returns the chosen option."""
        reply = self.user.resolve_anomaly(message, options)
        self.transcript.add(Interaction(InteractionKind.SEMANTIC_ANOMALY, message, reply,
                                        metadata={"options": options}))
        return reply

    # -- explanation stage -----------------------------------------------------------
    def record_explanation_request(self, question: str, answer: str) -> None:
        """Log an explanation question and the produced answer."""
        self.transcript.add(Interaction(InteractionKind.EXPLANATION_REQUEST, question, answer))

    def notify(self, message: str) -> None:
        """One-way notice to the user (e.g. on-the-fly repair reports)."""
        self.user.notify(message)
        self.transcript.add(Interaction(InteractionKind.NOTICE, message, None))

"""User agents: the humans (real or simulated) on the other end of the channel.

The paper itself simulates user replies in its Section 6 walk-through; the
:class:`ScriptedUser` reproduces exactly that behaviour (fixed clarification
answers, a fixed list of corrections issued one at a time, then "OK").  The
:class:`SilentUser` never engages (it accepts defaults), which is the no-
interaction arm of the clarification ablation.  :class:`ConsoleUser` asks a
real person at the terminal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


class UserAgent:
    """Base class: default behaviour is a silent, accepting user."""

    def answer_clarification(self, question: str, term: str) -> str:
        """Answer a proactive clarification question (empty = no answer)."""
        return ""

    def review_sketch(self, sketch_text: str, version: int) -> str:
        """React to a query sketch: a correction, or "OK" to accept."""
        return "OK"

    def resolve_anomaly(self, message: str, options: Sequence[str]) -> str:
        """Choose how to handle a reported semantic anomaly."""
        return options[0] if options else "accept"

    def notify(self, message: str) -> None:
        """Receive a one-way notice (default: ignore)."""

    def interaction_fingerprint(self) -> Optional[str]:
        """A stable digest of every reply this agent could give.

        Two agents with the same fingerprint drive parsing to the same query
        sketch, so their prepared plans are interchangeable.  The safe default
        is ``None`` (uncacheable): a subclass must opt in by returning a
        digest that really captures all of its replies.
        """
        return None

    def clone(self) -> "UserAgent":
        """An agent equivalent to this one for a *separate* query.

        The service fans batches out to worker threads; a stateful agent
        (one whose replies depend on what it has already been asked) must
        return an independent copy here so concurrent queries don't race its
        internal cursor.  Stateless agents simply return themselves.
        """
        return self


class SilentUser(UserAgent):
    """A user who never answers anything; KathDB proceeds with defaults."""

    def interaction_fingerprint(self) -> Optional[str]:
        # Exact type only: a subclass overriding reply behaviour must opt in
        # itself, or it would share cached plans with plain silent users.
        return "silent" if type(self) is SilentUser else None


class ScriptedUser(UserAgent):
    """A user following a fixed script (the paper's simulated user).

    Parameters
    ----------
    clarification_answers:
        Mapping from ambiguous term to the reply ("exciting" -> "the movie plot
        contains scenes that are uncommon ...").  Terms not in the mapping get
        an empty reply.
    corrections:
        Replies to successive sketch reviews; once exhausted the user answers
        "OK".  (The paper's user adds the recency preference after seeing v1.)
    anomaly_choice:
        Which option to pick when the monitor escalates an anomaly
        ("adjust" by default, matching the paper's example).
    """

    def __init__(self, clarification_answers: Optional[Dict[str, str]] = None,
                 corrections: Optional[Sequence[str]] = None,
                 anomaly_choice: str = "adjust"):
        self.clarification_answers = dict(clarification_answers or {})
        self._corrections = list(corrections or [])
        self._correction_index = 0
        self.anomaly_choice = anomaly_choice
        self.notices: List[str] = []

    def answer_clarification(self, question: str, term: str) -> str:
        return self.clarification_answers.get(term, "")

    def review_sketch(self, sketch_text: str, version: int) -> str:
        if self._correction_index < len(self._corrections):
            correction = self._corrections[self._correction_index]
            self._correction_index += 1
            return correction
        return "OK"

    def resolve_anomaly(self, message: str, options: Sequence[str]) -> str:
        for option in options:
            if option == self.anomaly_choice:
                return option
        return options[0] if options else self.anomaly_choice

    def notify(self, message: str) -> None:
        self.notices.append(message)

    def interaction_fingerprint(self) -> Optional[str]:
        from repro.utils.seed import stable_hash
        if type(self) is not ScriptedUser:
            return None  # a subclass's overridden replies aren't in the hash
        # Only the corrections *not yet consumed* steer future parses: a
        # partially-replayed user must not share cached plans with a fresh one.
        script = (tuple(sorted(self.clarification_answers.items())),
                  tuple(self._corrections[self._correction_index:]),
                  self.anomaly_choice)
        return f"scripted:{stable_hash(script):016x}"

    def clone(self) -> "ScriptedUser":
        """An independent user continuing from this one's current state."""
        return ScriptedUser(self.clarification_answers,
                            self._corrections[self._correction_index:],
                            self.anomaly_choice)


class ConsoleUser(UserAgent):
    """A real user at a terminal (used by the interactive example script)."""

    def answer_clarification(self, question: str, term: str) -> str:
        print(f"\nKathDB asks: {question}")
        return input("your answer (enter to skip): ").strip()

    def review_sketch(self, sketch_text: str, version: int) -> str:
        print(f"\nKathDB drafted this query sketch (v{version}):\n{sketch_text}")
        reply = input("corrections? (enter or OK to accept): ").strip()
        return reply or "OK"

    def resolve_anomaly(self, message: str, options: Sequence[str]) -> str:
        print(f"\nKathDB flagged a possible issue: {message}")
        print("options: " + ", ".join(options))
        reply = input("your choice: ").strip()
        return reply or (options[0] if options else "accept")

    def notify(self, message: str) -> None:
        print(f"[KathDB] {message}")

    def interaction_fingerprint(self) -> Optional[str]:
        return None  # a human's replies cannot be fingerprinted ahead of time

"""The execution engine: runs physical plans with lineage, repair, and monitoring."""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.datamodel.lineage import LineageStore
from repro.errors import FunctionExecutionError, RepairFailedError
from repro.executor.context import ExecutionContext
from repro.executor.monitor import ANOMALY_OPTIONS, ExecutionMonitor
from repro.executor.result import ExecutionRecord, QueryResult
from repro.fao.codegen import Coder
from repro.fao.function import FunctionContext, GeneratedFunction
from repro.fao.registry import FunctionRegistry
from repro.interaction.channel import InteractionChannel
from repro.models.base import ModelSuite
from repro.obs.trace import span as obs_span
from repro.optimizer.physical_plan import PhysicalOperator, PhysicalPlan
from repro.relational.catalog import Catalog
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import DataType
from repro.utils.timer import Timer

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.skills.store import SkillStore

#: Hidden per-row lineage column name.
LID_COLUMN = "lid"


class ExecutionEngine:
    """Executes physical plans operator by operator."""

    def __init__(self, models: ModelSuite, catalog: Catalog, lineage: LineageStore,
                 registry: FunctionRegistry, coder: Optional[Coder] = None,
                 monitor: Optional[ExecutionMonitor] = None,
                 max_repair_rounds: int = 3,
                 skill_store: Optional["SkillStore"] = None):
        self.models = models
        self.catalog = catalog
        self.lineage = lineage
        self.registry = registry
        self.coder = coder or Coder(models)
        self.monitor = monitor or ExecutionMonitor(models)
        self.max_repair_rounds = max_repair_rounds
        # Production failures demote the stored skill behind a function so
        # the next prepare regenerates through the critic instead of reusing
        # an implementation that just failed on real data.
        self.skill_store = skill_store

    # -- public API -----------------------------------------------------------------
    def execute(self, plan: PhysicalPlan, channel: InteractionChannel,
                nl_query: str = "",
                context: Optional[ExecutionContext] = None) -> QueryResult:
        """Execute one physical plan and return the full query result.

        ``context`` carries the intermediates namespace, the table-lid map,
        and the lineage scope.  When omitted (the legacy single-user path) an
        ephemeral context over the engine's own lineage store is used.  The
        catalog is never written to during execution.
        """
        if context is None:
            context = ExecutionContext.for_catalog(self.catalog, lineage=self.lineage)
        if context.lineage is None:
            context.lineage = self.lineage
        result = QueryResult(nl_query=nl_query, final_table=Table("empty", Schema([])),
                             physical_plan=plan, logical_plan=plan.logical_plan,
                             lineage=context.lineage, transcript=channel.transcript)

        total_timer = Timer()
        marker = self.models.cost_meter.snapshot()
        produced: List[str] = []
        with total_timer:
            for operator in plan.operators:
                # Operator boundaries are the engine's cancellation points:
                # a scheduled request whose deadline lapsed mid-execution
                # stops here instead of paying for the next operator.
                if context.cancel is not None:
                    context.cancel.check()
                record = self._execute_operator(operator, context, channel, result)
                result.records.append(record)
                produced.append(operator.node.output)

        # The result carries exactly this execution's outputs; the context may
        # hold more (a session's namespace accumulates across queries).
        result.intermediates = {name: context.intermediates[name] for name in produced
                                if name in context.intermediates}
        result.table_lids = dict(context.table_lids)
        final_name = plan.final_output()
        result.final_table = context.intermediates.get(final_name,
                                                       Table(final_name, Schema([])))
        result.total_tokens = self.models.cost_meter.tokens_since(marker)
        result.total_runtime_s = total_timer.elapsed
        return result

    # -- per-operator execution ---------------------------------------------------------
    def _resolve_inputs(self, operator: PhysicalOperator,
                        intermediates: Dict[str, Table]) -> Dict[str, Table]:
        inputs: Dict[str, Table] = {}
        for name in operator.node.inputs:
            if name in intermediates:
                inputs[name] = intermediates[name]
            elif self.catalog.has_table(name):
                # Hand function bodies a copy-on-write fork, not the live
                # catalog table: the fork is O(columns), and any stray write
                # a generated body makes copies only the touched column
                # instead of corrupting shared catalog state.
                inputs[name] = self.catalog.table(name).fork()
            else:
                inputs[name] = Table(name, Schema([]))
        return inputs

    def _execute_operator(self, operator: PhysicalOperator, context: ExecutionContext,
                          channel: InteractionChannel,
                          result: QueryResult) -> ExecutionRecord:
        node = operator.node
        function = operator.function
        inputs = self._resolve_inputs(operator, context.intermediates)
        # The optimizer's vectorization hint rides on the operator; batchable
        # bodies chunk their per-row model inputs accordingly (bit-identical
        # rows, sub-linear token cost).
        fn_context = FunctionContext(
            models=self.models, catalog=self.catalog,
            batch_size=operator.batch_size if operator.batchable else 0)
        primary = inputs.get(node.inputs[0]) if node.inputs else None
        rows_in = len(primary) if primary is not None else 0

        record = ExecutionRecord(
            operator_name=node.name, function_variant=function.variant,
            function_version=function.version, rows_in=rows_in, rows_out=0,
            runtime_s=0.0, tokens=0, lineage_data_type="off", output_table=node.output)

        # Per-operator gateway delta: the suite's client counters are
        # session-private, and a session executes one operator at a time.
        gateway_client = getattr(self.models, "gateway_client", None)
        gateway_marker = gateway_client.counters.snapshot() if gateway_client else None

        # One ``operator`` span per physical operator; model-call spans the
        # gateway records during the body nest under it.
        with obs_span(node.name, kind="operator", output=node.output,
                      rows_in=rows_in) as op_sp:
            marker = self.models.cost_meter.snapshot()
            timer = Timer()
            with timer:
                output, function = self._run_with_repair(node, function, inputs, fn_context,
                                                         channel, record)
                operator.function = function

                # Semantic monitoring: escalate anomalies to the user and, when asked,
                # adjust the implementation and reprocess the operator.
                anomalies = self.monitor.inspect(node, function, inputs, output)
                for anomaly in anomalies:
                    decision = channel.escalate_anomaly(
                        anomaly.describe() + " How should KathDB proceed?", ANOMALY_OPTIONS)
                    anomaly.decision = decision
                    record.anomalies.append(anomaly.describe())
                    if decision in ("adjust", "rewrite"):
                        hint = anomaly.likely_cause or anomaly.message
                        if self.skill_store is not None:
                            self.skill_store.record_production_failure(function, hint)
                        with obs_span("repair", kind="stage", operator=node.name,
                                      reason="anomaly"):
                            function = self.coder.repair(node, function, hint)
                        self.registry.register(function)
                        operator.function = function
                        record.repairs.append(f"adjusted after anomaly: {hint}")
                        output, function = self._run_with_repair(node, function, inputs,
                                                                 fn_context, channel, record)
                        operator.function = function

            record.runtime_s = timer.elapsed
            record.tokens = self.models.cost_meter.tokens_since(marker)
            record.function_version = function.version
            record.function_variant = function.variant
            if gateway_client is not None:
                delta = gateway_client.counters.delta(gateway_marker)
                record.gateway_hits = (delta["hits"] + delta["coalesced"]
                                       + delta["semantic_hits"])
                record.gateway_tokens_saved = delta["tokens_saved"]
                record.gateway_batch_tokens_saved = delta["batch_tokens_saved"]
                record.batch_calls = delta["batch_calls"]
                # The audit list is bounded (old entries are trimmed), so read
                # this operator's batches as a count-sized suffix, not by index.
                record.batch_sizes = (
                    list(gateway_client.counters.batch_sizes[-record.batch_calls:])
                    if record.batch_calls else [])

            # Lineage recording.
            record.lineage_data_type = self._record_lineage(node, function, inputs, output,
                                                            context, record)
            record.rows_out = len(output)
            record.span_id = op_sp.span_id or None
            op_sp.tag(rows_out=record.rows_out, tokens=record.tokens,
                      variant=record.function_variant,
                      repairs=len(record.repairs),
                      anomalies=len(record.anomalies))

        # Intermediates live in the execution context (session namespace); the
        # shared catalog is never mutated during execution.
        context.intermediates[node.output] = output
        return record

    def _run_with_repair(self, node, function: GeneratedFunction, inputs, context,
                         channel: InteractionChannel, record: ExecutionRecord):
        """Run a function, self-repairing syntactic faults (reviewer/rewriter loop)."""
        attempts = 0
        current = function
        while True:
            try:
                return current.execute(inputs, context), current
            except FunctionExecutionError as error:
                attempts += 1
                if attempts > self.max_repair_rounds:
                    raise RepairFailedError(
                        f"operator {node.name!r} still fails after "
                        f"{self.max_repair_rounds} repair attempts: {error}") from error
                hint = str(error)
                if self.skill_store is not None:
                    self.skill_store.record_production_failure(current, hint)
                channel.notify(
                    f"runtime error in {node.name!r} (v{current.version}): {hint}; "
                    f"KathDB is generating a patched implementation and resuming.")
                try:
                    with obs_span("repair", kind="stage", operator=node.name,
                                  attempt=attempts, reason="runtime-error"):
                        current = self.coder.repair(node, current, hint)
                except Exception as generation_error:  # noqa: BLE001 - surface as repair failure
                    raise RepairFailedError(
                        f"operator {node.name!r} could not be regenerated after a runtime "
                        f"error: {generation_error}") from generation_error
                self.registry.register(current)
                record.repairs.append(f"syntactic repair v{current.version}: {hint}")

    # -- lineage ------------------------------------------------------------------------
    def _record_lineage(self, node, function: GeneratedFunction, inputs, output: Table,
                        context: ExecutionContext, record: ExecutionRecord) -> str:
        """Record lineage for one operator; returns the data_type recorded."""
        lineage = context.lineage
        table_lids = context.table_lids
        if not lineage.enabled:
            return "off"
        input_lids = [table_lids.get(name.lower()) for name in node.inputs]
        narrow = function.dependency_pattern.is_narrow and lineage.row_tracking_enabled

        if narrow:
            primary_name = node.inputs[0] if node.inputs else None
            primary_lid = table_lids.get(primary_name.lower()) if primary_name else None
            if not output.schema.has_column(LID_COLUMN):
                # The schema setter materializes the new column as NULLs.
                output.schema = output.schema.add(Column(LID_COLUMN, DataType.INTEGER))
            # Whole-column lid stamping: read the inherited vector once,
            # mint new lids, and write the column back in one shot.
            inherited_lids = output.column_values(LID_COLUMN)
            new_lids = []
            for inherited in inherited_lids:
                parent = inherited if inherited is not None else primary_lid
                new_lids.append(lineage.record_row(function.func_id, function.version,
                                                   parent))
            output.set_column(LID_COLUMN, new_lids)
            # The output table itself also gets a table-level handle so later
            # wide operators can reference it as a parent.
            table_lid = lineage.record_table(function.func_id, function.version,
                                             input_lids)
            table_lids[node.output.lower()] = table_lid
            return "row"

        table_lid = lineage.record_table(function.func_id, function.version, input_lids)
        table_lids[node.output.lower()] = table_lid
        return "table"

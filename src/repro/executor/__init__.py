"""The execution engine (paper Sections 2.3 and 5).

Executes a physical plan operator by operator while:

* recording lineage (row-level for narrow functions, table-level for wide
  ones) through the :class:`~repro.datamodel.lineage.LineageStore`;
* catching *syntactic* faults and repairing them on the fly with the
  reviewer/rewriter loop (a new function version is registered and execution
  resumes from the failed operator);
* watching for *semantic anomalies* with the agentic monitor and escalating
  them to the user over the interaction channel.
"""

from repro.executor.result import ExecutionRecord, QueryResult
from repro.executor.monitor import Anomaly, ExecutionMonitor
from repro.executor.context import ExecutionContext
from repro.executor.engine import ExecutionEngine

__all__ = [
    "ExecutionRecord",
    "QueryResult",
    "Anomaly",
    "ExecutionMonitor",
    "ExecutionContext",
    "ExecutionEngine",
]

"""The agentic execution monitor.

During execution a function that cleared the optimizer's checks may still
misbehave on the full data.  The monitor samples every operator's output and
looks for *semantic anomalies* -- results that run without error but plausibly
do not match user intent.  Detected anomalies are escalated to the user over
the interaction channel with three options (accept / adjust / rewrite),
mirroring the paper's example of a vector join that links one poster to
several movies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.fao.function import GeneratedFunction
from repro.models.base import ModelSuite
from repro.parser.logical_plan import LogicalPlanNode
from repro.relational.table import Table

ANOMALY_OPTIONS = ["accept", "adjust", "rewrite"]


@dataclass
class Anomaly:
    """One detected semantic anomaly."""

    operator_name: str
    message: str
    likely_cause: str = ""
    decision: str = ""

    def describe(self) -> str:
        cause = f" (likely cause: {self.likely_cause})" if self.likely_cause else ""
        decision = f" -> user chose {self.decision!r}" if self.decision else ""
        return f"{self.operator_name}: {self.message}{cause}{decision}"


class ExecutionMonitor:
    """Samples operator outputs and flags suspected semantic anomalies."""

    def __init__(self, models: ModelSuite, sample_size: int = 5, enabled: bool = True):
        self.models = models
        self.sample_size = sample_size
        self.enabled = enabled

    def inspect(self, node: LogicalPlanNode, function: GeneratedFunction,
                inputs: Dict[str, Table], output: Table) -> List[Anomaly]:
        """Inspect one operator's output; returns detected anomalies (possibly none)."""
        if not self.enabled:
            return []
        anomalies: List[Anomaly] = []
        primary = inputs.get(node.inputs[0]) if node.inputs else None
        input_sample = primary.head(self.sample_size) if primary is not None else []
        output_sample = output.head(self.sample_size)

        # 1. LLM-style plausibility judgement on the sampled rows.
        ok, hint = self.models.llm.judge_output(node.description, input_sample, output_sample,
                                                purpose="monitor_semantic_check")
        if not ok:
            anomalies.append(Anomaly(
                operator_name=node.name,
                message=f"The output of {node.name!r} looks inconsistent with its intent: {hint}",
                likely_cause=hint,
            ))

        # 2. Join fan-out check: one entity matched to several rows (the paper's
        #    poster-linked-to-multiple-movies example).
        if "join" in node.name.lower():
            for key_column in ("image_uri", "movie_id"):
                if output.schema.has_column(key_column):
                    counts: Dict[object, int] = {}
                    for value in output.column_values(key_column):
                        if value is None:
                            continue
                        counts[value] = counts.get(value, 0) + 1
                    duplicated = [value for value, count in counts.items() if count > 1]
                    if duplicated and key_column == "image_uri":
                        anomalies.append(Anomaly(
                            operator_name=node.name,
                            message=(f"{len(duplicated)} poster image(s) are linked to multiple "
                                     f"movies by {node.name!r}; this is unlikely to match the "
                                     f"user's intent."),
                            likely_cause=("the generated join may have assumed a one-to-one "
                                          "correspondence between posters and movie_table rows "
                                          "that does not hold"),
                        ))
                    break

        # 3. Empty result from a non-empty input is suspicious for non-filter nodes.
        if primary is not None and len(primary) > 0 and len(output) == 0 \
                and not node.name.startswith("filter_"):
            anomalies.append(Anomaly(
                operator_name=node.name,
                message=f"{node.name!r} produced an empty table from {len(primary)} input rows.",
                likely_cause="the implementation may be dropping every row",
            ))
        return anomalies

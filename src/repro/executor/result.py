"""Execution records and query results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.datamodel.lineage import LineageStore
from repro.interaction.channel import Transcript
from repro.models.llm import QueryIntent
from repro.optimizer.physical_plan import PhysicalPlan
from repro.parser.logical_plan import LogicalPlan
from repro.parser.sketch import QuerySketch
from repro.relational.table import Table


@dataclass
class ExecutionRecord:
    """What happened while executing one physical operator."""

    operator_name: str
    function_variant: str
    function_version: int
    rows_in: int
    rows_out: int
    runtime_s: float
    tokens: int
    lineage_data_type: str            # "row", "table", or "off"
    output_table: str
    table_lid: Optional[int] = None
    repairs: List[str] = field(default_factory=list)
    anomalies: List[str] = field(default_factory=list)
    # Model-gateway activity while this operator ran (0 when no gateway
    # routes the executing suite): calls answered without executing a model,
    # the tokens those answers would have cost, and the discount
    # micro-batched misses received off their serial price.
    gateway_hits: int = 0
    gateway_tokens_saved: int = 0
    gateway_batch_tokens_saved: int = 0
    # Vectorized execution: batched invocations this operator issued itself
    # (through the gateway batch client) and their sizes, in issue order.
    batch_calls: int = 0
    batch_sizes: List[int] = field(default_factory=list)
    # The operator's trace span (repro.obs), linking this record to the
    # query's trace tree; None when tracing is off.
    span_id: Optional[str] = None

    def describe(self) -> str:
        extras = []
        if self.repairs:
            extras.append(f"repairs={len(self.repairs)}")
        if self.anomalies:
            extras.append(f"anomalies={len(self.anomalies)}")
        if self.gateway_hits:
            extras.append(f"gateway_hits={self.gateway_hits}")
        if self.batch_calls:
            extras.append(f"batched={self.batch_calls}x"
                          f"{max(self.batch_sizes, default=0)}")
        if self.gateway_batch_tokens_saved:
            extras.append(f"batch_saved={self.gateway_batch_tokens_saved}")
        suffix = (" [" + ", ".join(extras) + "]") if extras else ""
        return (f"{self.operator_name} v{self.function_version} ({self.function_variant}): "
                f"{self.rows_in}->{self.rows_out} rows, {self.runtime_s * 1000:.1f} ms, "
                f"{self.tokens} tokens, lineage={self.lineage_data_type}{suffix}")


@dataclass
class QueryResult:
    """Everything produced by one KathDB query."""

    nl_query: str
    final_table: Table
    intermediates: Dict[str, Table] = field(default_factory=dict)
    records: List[ExecutionRecord] = field(default_factory=list)
    sketch: Optional[QuerySketch] = None
    intent: Optional[QueryIntent] = None
    logical_plan: Optional[LogicalPlan] = None
    physical_plan: Optional[PhysicalPlan] = None
    transcript: Optional[Transcript] = None
    lineage: Optional[LineageStore] = None
    table_lids: Dict[str, int] = field(default_factory=dict)
    total_tokens: int = 0
    total_runtime_s: float = 0.0

    # -- conveniences ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.final_table)

    def rows(self) -> List[Dict[str, Any]]:
        """Rows of the final result table."""
        return [dict(row) for row in self.final_table]

    def titles(self) -> List[str]:
        """Title column of the result, in result order (empty if absent)."""
        if not self.final_table.schema.has_column("title"):
            return []
        return [row.get("title") for row in self.final_table]

    def top(self, n: int = 5) -> List[Dict[str, Any]]:
        """The first ``n`` result rows."""
        return self.final_table.head(n)

    def record_for(self, operator_name: str) -> Optional[ExecutionRecord]:
        """The execution record of one operator, if it ran."""
        for record in self.records:
            if record.operator_name == operator_name:
                return record
        return None

    def repairs_performed(self) -> int:
        """Total on-the-fly repairs across all operators."""
        return sum(len(record.repairs) for record in self.records)

    def anomalies_raised(self) -> int:
        """Total semantic anomalies escalated across all operators."""
        return sum(len(record.anomalies) for record in self.records)

    def describe(self, limit: int = 10) -> str:
        """A human-readable summary: result head plus per-operator records."""
        lines = [f"query: {self.nl_query}",
                 f"result rows: {len(self.final_table)} "
                 f"(tokens={self.total_tokens}, runtime={self.total_runtime_s * 1000:.1f} ms)",
                 self.final_table.pretty(limit=limit), "", "execution records:"]
        lines.extend("  " + record.describe() for record in self.records)
        return "\n".join(lines)

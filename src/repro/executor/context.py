"""Per-execution state for the engine.

Historically the engine wrote every intermediate table into the shared
:class:`~repro.relational.catalog.Catalog` (with ``replace=True``!) and every
provenance edge into one global lineage store, so two in-flight queries
corrupted each other.  An :class:`ExecutionContext` carries that state
explicitly instead: the intermediates namespace, the table-lid map, and the
lineage scope all belong to the caller (a session), and the catalog stays
read-only for the whole execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.datamodel.lineage import LineageStore
from repro.relational.catalog import Catalog
from repro.relational.table import Table


@dataclass
class ExecutionContext:
    """Everything one plan execution reads and writes besides the catalog.

    ``intermediates`` maps output-table names to materialized tables; passing
    the same dict across executions gives a session a persistent namespace in
    which later queries can reference earlier results.  ``table_lids`` maps
    lowercase table names to their lineage ids.  ``lineage`` is the store new
    provenance edges are recorded into (a session passes its scoped store).
    """

    intermediates: Dict[str, Table] = field(default_factory=dict)
    table_lids: Dict[str, int] = field(default_factory=dict)
    lineage: Optional[LineageStore] = None
    # The active query trace (repro.obs.span.Trace), when tracing is on.
    # Spans normally propagate through a contextvar on the query's own
    # thread; carrying the trace here lets work handed to *other* threads
    # (parallel compile, a future async scheduler) re-attach via
    # ``repro.obs.trace.attach(context.trace)``.
    trace: Optional[Any] = None
    # The scheduler's CancelToken (repro.sched.cancel) for this request, or
    # None when unscheduled.  The engine checks it at operator boundaries
    # and the gateway before each model call, so a lapsed deadline stops
    # in-flight work cooperatively at the next safe point.
    cancel: Optional[Any] = None

    @classmethod
    def for_catalog(cls, catalog: Catalog, lineage: Optional[LineageStore] = None,
                    intermediates: Optional[Dict[str, Table]] = None,
                    table_lids: Optional[Dict[str, int]] = None) -> "ExecutionContext":
        """A context seeded with the lineage ids of the catalog's tables.

        Passing persistent ``intermediates`` *and* ``table_lids`` dicts gives
        a session a namespace whose cross-query references keep their lineage
        parents; catalog lids are merged in without clobbering them.
        """
        context = cls(intermediates=intermediates if intermediates is not None else {},
                      table_lids=table_lids if table_lids is not None else {},
                      lineage=lineage)
        for name in catalog.table_names():
            entry = catalog.entry(name)
            if entry.lineage_id is not None:
                context.table_lids.setdefault(name.lower(), entry.lineage_id)
        return context

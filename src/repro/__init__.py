"""KathDB reproduction: an explainable multimodal DBMS with human-AI collaboration.

This package reproduces the system described in the CIDR 2026 vision paper
*KathDB: Explainable Multimodal Database Management System with Human-AI
Collaboration* (Xiao, Zhang, Sullivan, Hansen, Balazinska; University of
Washington), built entirely on local, deterministic substrates (an embedded
relational engine, simulated foundation models, and a synthetic MMQA-style
corpus).  See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduced figures.

Quick start::

    from repro import KathDB, KathDBConfig, build_movie_corpus, ScriptedUser

    db = KathDB(KathDBConfig(seed=7))
    db.load_corpus(build_movie_corpus(size=20, seed=7))
    user = ScriptedUser(
        {"exciting": "the movie plot contains scenes that are uncommon in real life"},
        ["I prefer more recent movies as well when scoring"])
    result = db.query("Sort the films in the table by how exciting they are, "
                      "but the poster should be 'boring'.", user=user)
    print(result.final_table.pretty())
"""

from repro.api import (
    KathDBService,
    QueryOptions,
    QueryRequest,
    QueryResponse,
    Session,
)
from repro.core.config import KathDBConfig
from repro.core.kathdb import KathDB
from repro.data.mmqa import MovieCorpus, build_movie_corpus
from repro.data.workloads import Workload, build_default_workload
from repro.interaction.user import ConsoleUser, ScriptedUser, SilentUser

__version__ = "0.2.0"

__all__ = [
    "KathDB",
    "KathDBConfig",
    "KathDBService",
    "Session",
    "QueryOptions",
    "QueryRequest",
    "QueryResponse",
    "MovieCorpus",
    "build_movie_corpus",
    "Workload",
    "build_default_workload",
    "ScriptedUser",
    "SilentUser",
    "ConsoleUser",
    "__version__",
]

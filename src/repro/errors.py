"""Exception hierarchy for the KathDB reproduction.

The paper distinguishes *syntactic* runtime errors (exceptions raised while a
generated function runs -- KathDB self-repairs these) from *semantic* anomalies
(the code runs but the output plausibly does not match user intent -- KathDB
escalates these to the user).  That distinction is encoded here so the
execution monitor can dispatch on exception type.
"""

from __future__ import annotations


class KathDBError(Exception):
    """Base class for every error raised by the reproduction."""


# --------------------------------------------------------------------------
# Relational engine errors
# --------------------------------------------------------------------------
class RelationalError(KathDBError):
    """Base class for relational-engine errors."""


class SchemaError(RelationalError):
    """A schema is malformed or a value does not match its column type."""


class UnknownTableError(RelationalError):
    """A referenced table or view does not exist in the catalog."""


class UnknownColumnError(RelationalError):
    """A referenced column does not exist in a table's schema."""


class DuplicateTableError(RelationalError):
    """Attempted to register a table name that already exists."""


class ExpressionError(RelationalError):
    """An expression could not be evaluated (bad operand types, etc.)."""


class SQLSyntaxError(RelationalError):
    """The mini-SQL parser could not parse a statement."""


class StorageError(RelationalError):
    """Persisting or loading a table from disk failed."""


# --------------------------------------------------------------------------
# Parsing / planning errors
# --------------------------------------------------------------------------
class ParseError(KathDBError):
    """The NL parser could not produce a query sketch."""


class AmbiguousQueryError(ParseError):
    """The NL parser needs a clarification from the user before proceeding."""

    def __init__(self, question: str, term: str = ""):
        super().__init__(question)
        self.question = question
        self.term = term


class PlanError(KathDBError):
    """A logical or physical plan is structurally invalid."""


class PlanVerificationError(PlanError):
    """The plan verifier rejected a draft logical plan."""


# --------------------------------------------------------------------------
# FAO / execution errors
# --------------------------------------------------------------------------
class FunctionGenerationError(KathDBError):
    """The coder agent could not produce an executable function body."""


class FunctionExecutionError(KathDBError):
    """A *syntactic* runtime fault inside a generated function.

    The execution monitor catches these, invokes the reviewer/rewriter loop,
    and resumes from the failed operator (paper Section 5).
    """

    def __init__(self, message: str, function_name: str = "", cause: Exception = None):
        super().__init__(message)
        self.function_name = function_name
        self.cause = cause


class SemanticAnomalyError(KathDBError):
    """A *semantic* anomaly: the code ran but the output looks wrong.

    The execution monitor escalates these to the user rather than silently
    repairing them (paper Section 5).
    """

    def __init__(self, message: str, function_name: str = "", evidence: object = None):
        super().__init__(message)
        self.function_name = function_name
        self.evidence = evidence


class RepairFailedError(KathDBError):
    """The reviewer/rewriter loop exhausted its repair budget."""


# --------------------------------------------------------------------------
# Lineage / explanation errors
# --------------------------------------------------------------------------
class LineageError(KathDBError):
    """Lineage bookkeeping failed (unknown lid, broken parent chain, ...)."""


class ExplanationError(KathDBError):
    """A requested explanation could not be produced."""


# --------------------------------------------------------------------------
# Interaction errors
# --------------------------------------------------------------------------
class InteractionError(KathDBError):
    """A user-interaction channel failed (e.g. no user attached)."""


class UserAbortError(InteractionError):
    """The user explicitly aborted the current query."""


# --------------------------------------------------------------------------
# Model-gateway errors
# --------------------------------------------------------------------------
class GatewayError(KathDBError):
    """Base class for model-gateway failures."""


class SessionQuotaExceededError(GatewayError):
    """A session hit its model-token quota; the gateway refused the call.

    Admission control checks the quota *before* executing a miss, so a
    session may overshoot by at most one call's cost.
    """

    def __init__(self, session_id: str, spent: int, quota: int):
        super().__init__(
            f"tenant {session_id!r} exceeded its model-token quota "
            f"({spent} tokens spent, quota {quota})")
        self.session_id = session_id
        self.spent = spent
        self.quota = quota


# --------------------------------------------------------------------------
# Admission-scheduler errors
# --------------------------------------------------------------------------
class SchedulerError(KathDBError):
    """Base class for admission-scheduler failures."""


class SchedulerRejection(SchedulerError):
    """The scheduler shed a request instead of queueing it.

    Shedding is structured backpressure: the caller gets this exception (or
    an ``ok=False`` response with ``shed_reason`` set) immediately rather
    than blocking behind a full queue.  ``reason`` is a stable
    machine-readable string: ``"backpressure"`` (the tenant's class queue is
    full), ``"deadline"`` (the deadline lapsed before dispatch), or
    ``"shutdown"`` (the scheduler is draining).
    """

    def __init__(self, reason: str, tenant_id: str = "", sched_class: str = "",
                 queue_depth: int = 0):
        super().__init__(
            f"scheduler shed request for tenant {tenant_id!r} "
            f"(class {sched_class!r}, depth {queue_depth}): {reason}")
        self.reason = reason
        self.tenant_id = tenant_id
        self.sched_class = sched_class
        self.queue_depth = queue_depth


class QueryCancelledError(SchedulerError):
    """Cooperative cancellation observed mid-flight.

    Raised by :meth:`repro.sched.cancel.CancelToken.check` at operator
    boundaries and gateway call sites.  Deliberately *not* a
    :class:`FunctionExecutionError`: cancellation must unwind the query, not
    trigger the self-repair loop.
    """

    def __init__(self, reason: str = "cancelled"):
        super().__init__(f"query cancelled: {reason}")
        self.reason = reason

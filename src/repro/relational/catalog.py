"""The system catalog: table/view registry plus lightweight statistics.

The catalog plays two roles in KathDB: it is the classic DBMS metadata store,
and it is the *context provider* for the LLM agents (plan writer, verifier,
coder), which receive schemas, sample rows, and statistics drawn from here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import DuplicateTableError, UnknownTableError
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.utils.seed import stable_hash


@dataclass
class TableStats:
    """Per-table statistics used by the cost model and the plan verifier."""

    row_count: int = 0
    column_cardinality: Dict[str, int] = field(default_factory=dict)
    null_fraction: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def compute(cls, table: Table) -> "TableStats":
        """Compute statistics for a table (full scan; tables are small)."""
        stats = cls(row_count=len(table))
        for column in table.column_names():
            stats.column_cardinality[column] = table.cardinality(column)
            stats.null_fraction[column] = table.null_fraction(column)
        return stats


@dataclass
class CatalogEntry:
    """One catalog record: a table (base or derived) with metadata."""

    table: Table
    kind: str = "base"  # "base", "view", "intermediate"
    stats: Optional[TableStats] = None
    lineage_id: Optional[int] = None
    source_uri: Optional[str] = None

    @property
    def name(self) -> str:
        return self.table.name


class Catalog:
    """A registry of named tables, views, and intermediate results."""

    def __init__(self):
        self._entries: Dict[str, CatalogEntry] = {}

    # -- registration ---------------------------------------------------------
    def register(self, table: Table, kind: str = "base", *, replace: bool = False,
                 lineage_id: Optional[int] = None, source_uri: Optional[str] = None,
                 compute_stats: bool = True) -> CatalogEntry:
        """Register a table.

        Raises :class:`DuplicateTableError` unless ``replace=True``.
        """
        key = table.name.lower()
        if key in self._entries and not replace:
            raise DuplicateTableError(f"table {table.name!r} already registered")
        entry = CatalogEntry(
            table=table,
            kind=kind,
            stats=TableStats.compute(table) if compute_stats else None,
            lineage_id=lineage_id,
            source_uri=source_uri,
        )
        self._entries[key] = entry
        return entry

    def unregister(self, name: str) -> None:
        """Remove a table from the catalog."""
        key = name.lower()
        if key not in self._entries:
            raise UnknownTableError(f"unknown table: {name!r}")
        del self._entries[key]

    def refresh_stats(self, name: str) -> TableStats:
        """Recompute statistics for a table."""
        entry = self.entry(name)
        entry.stats = TableStats.compute(entry.table)
        return entry.stats

    # -- lookup -----------------------------------------------------------------
    def has_table(self, name: str) -> bool:
        """Whether a table with this name is registered."""
        return name.lower() in self._entries

    def entry(self, name: str) -> CatalogEntry:
        """The catalog entry for ``name``."""
        key = name.lower()
        if key not in self._entries:
            raise UnknownTableError(
                f"unknown table: {name!r} (registered: {sorted(self.table_names())})"
            )
        return self._entries[key]

    def table(self, name: str) -> Table:
        """The table object for ``name``."""
        return self.entry(name).table

    def schema(self, name: str) -> Schema:
        """The schema for ``name``."""
        return self.table(name).schema

    def table_names(self, kind: Optional[str] = None) -> List[str]:
        """All registered table names (optionally filtered by kind)."""
        return [e.table.name for e in self._entries.values() if kind is None or e.kind == kind]

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.has_table(name)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterable[CatalogEntry]:
        return iter(self._entries.values())

    def fingerprint(self) -> str:
        """A process-stable digest of the catalog's registered contents.

        Covers table names, kinds, row counts, and column names — everything
        that determines how a query parses, plans, and optimizes.  Prepared
        queries are keyed on this, so reloading or altering the corpus
        invalidates cached plans.
        """
        parts = []
        for key in sorted(self._entries):
            entry = self._entries[key]
            parts.append((entry.table.name, entry.kind, len(entry.table),
                          tuple(entry.table.schema.column_names())))
        return f"{stable_hash(tuple(parts), bits=64):016x}"

    # -- agent context ------------------------------------------------------------
    def sample_rows(self, name: str, n: int = 3) -> List[Dict[str, Any]]:
        """Sample rows handed to the agentic plan verifier / coder."""
        return self.table(name).head(n)

    def describe_table(self, name: str, sample_rows: int = 2) -> str:
        """A textual description of one table: schema, stats, sample rows."""
        entry = self.entry(name)
        table = entry.table
        lines = [f"table {table.name} ({entry.kind}, {len(table)} rows)"]
        if table.description:
            lines.append(f"  description: {table.description}")
        for column in table.schema:
            cardinality = entry.stats.column_cardinality.get(column.name) if entry.stats else None
            extra = f", {cardinality} distinct" if cardinality is not None else ""
            desc = f" -- {column.description}" if column.description else ""
            lines.append(f"  {column.name}: {column.data_type.value}{extra}{desc}")
        if sample_rows and len(table):
            lines.append("  sample rows:")
            for row in table.head(sample_rows):
                rendered = {k: (str(v)[:40] if v is not None else None) for k, v in row.items()}
                lines.append(f"    {rendered}")
        return "\n".join(lines)

    def describe(self, sample_rows: int = 2, kinds: Optional[Iterable[str]] = None) -> str:
        """Describe every registered table (the LLM 'system catalog' context)."""
        wanted = set(kinds) if kinds else None
        parts = []
        for entry in self._entries.values():
            if wanted is not None and entry.kind not in wanted:
                continue
            parts.append(self.describe_table(entry.table.name, sample_rows=sample_rows))
        return "\n\n".join(parts)

    def joinable_columns(self, left: str, right: str) -> List[str]:
        """Columns that appear (by name) in both tables — the 'joinability
        tester' database utility owned by the plan verifier's tool user."""
        left_cols = {c.lower() for c in self.schema(left).column_names()}
        right_cols = {c.lower() for c in self.schema(right).column_names()}
        return sorted(left_cols & right_cols)

"""Simple secondary indexes for the relational engine."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import UnknownColumnError
from repro.relational.table import Table


class HashIndex:
    """A hash index mapping one column's values to row positions.

    KathDB's lineage queries repeatedly look up tuples by ``lid``; a hash
    index keeps those lookups constant-time even when lineage tables grow.
    """

    def __init__(self, table: Table, column: str):
        if not table.schema.has_column(column):
            raise UnknownColumnError(f"cannot index unknown column {column!r} on {table.name!r}")
        self.table = table
        self.column = table.schema.column(column).name
        self._positions: Dict[Any, List[int]] = {}
        self._built_size = 0
        self._built_version = -1
        self.rebuild()

    def _column_vector(self) -> List[Any]:
        """The indexed column's raw vector (read-only, possibly shared)."""
        store = self.table._store
        resolved = store.resolve(self.column)
        if resolved is None:
            return [None] * len(store)
        return store.column(resolved)

    def rebuild(self) -> None:
        """Recompute the index from scratch (one pass over the column vector)."""
        self._positions = {}
        for position, value in enumerate(self._column_vector()):
            self._positions.setdefault(self._key(value), []).append(position)
        self._built_size = len(self.table)
        self._built_version = getattr(self.table, "non_append_version", 0)

    def _key(self, value: Any) -> Any:
        try:
            hash(value)
            return value
        except TypeError:
            return repr(value)

    def _maybe_refresh(self) -> None:
        """Bring the index up to date with the backing table.

        Pure appends (the common case: insert/insert_many) are indexed
        incrementally by walking only the new suffix of the column vector.
        Any non-append mutation — ``update_where``, ``delete_where``,
        ``truncate``, ``add_column``, and (since the columnar store) even
        in-place cell writes through row proxies
        (``table.rows[i][col] = x``) — bumps the table's
        ``non_append_version`` and forces a full rebuild here.  That closes
        the last staleness hole the row-dict layout had: mutations that
        kept the row count constant used to serve stale positions.
        """
        if getattr(self.table, "non_append_version", 0) != self._built_version \
                or len(self.table) < self._built_size:
            self.rebuild()
            return
        vector = self._column_vector()
        for position in range(self._built_size, len(self.table)):
            self._positions.setdefault(self._key(vector[position]), []).append(position)
        self._built_size = len(self.table)

    def lookup(self, value: Any) -> List[Dict[str, Any]]:
        """All rows whose indexed column equals ``value``."""
        self._maybe_refresh()
        positions = self._positions.get(self._key(value), [])
        return [self.table.rows[p] for p in positions]

    def lookup_one(self, value: Any) -> Optional[Dict[str, Any]]:
        """The first matching row, or None."""
        rows = self.lookup(value)
        return rows[0] if rows else None

    def __contains__(self, value: object) -> bool:
        self._maybe_refresh()
        return self._key(value) in self._positions

    def __len__(self) -> int:
        self._maybe_refresh()
        return len(self._positions)

"""Column data types and value coercion for the relational engine."""

from __future__ import annotations

import enum
from typing import Any, Optional

from repro.errors import SchemaError


class DataType(enum.Enum):
    """The column types supported by the engine.

    ``BLOB`` is used for opaque payloads such as raw image pixel arrays, and
    ``JSON`` for nested structures (lists/dicts) such as keyword lists or
    scene-graph fragments carried through intermediate tables.
    """

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    BOOLEAN = "boolean"
    BLOB = "blob"
    JSON = "json"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @classmethod
    def from_string(cls, name: str) -> "DataType":
        """Parse a type name (``"int"``, ``"integer"``, ``"text"``, ...)."""
        normalized = (name or "").strip().lower()
        aliases = {
            "int": cls.INTEGER,
            "integer": cls.INTEGER,
            "bigint": cls.INTEGER,
            "float": cls.FLOAT,
            "double": cls.FLOAT,
            "real": cls.FLOAT,
            "numeric": cls.FLOAT,
            "str": cls.TEXT,
            "string": cls.TEXT,
            "text": cls.TEXT,
            "varchar": cls.TEXT,
            "bool": cls.BOOLEAN,
            "boolean": cls.BOOLEAN,
            "blob": cls.BLOB,
            "bytes": cls.BLOB,
            "json": cls.JSON,
            "object": cls.JSON,
        }
        if normalized not in aliases:
            raise SchemaError(f"unknown data type: {name!r}")
        return aliases[normalized]

    @classmethod
    def infer(cls, value: Any) -> "DataType":
        """Infer the most specific type for a Python value."""
        if isinstance(value, bool):
            return cls.BOOLEAN
        if isinstance(value, int):
            return cls.INTEGER
        if isinstance(value, float):
            return cls.FLOAT
        if isinstance(value, str):
            return cls.TEXT
        if isinstance(value, (bytes, bytearray)):
            return cls.BLOB
        return cls.JSON


def coerce_value(value: Any, data_type: DataType, *, strict: bool = False) -> Any:
    """Coerce ``value`` to ``data_type``.

    ``None`` is always allowed (SQL NULL).  With ``strict=True`` a value whose
    type does not match raises :class:`SchemaError` instead of being converted.
    """
    if value is None:
        return None

    if data_type is DataType.INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if strict:
            raise SchemaError(f"expected INTEGER, got {type(value).__name__}: {value!r}")
        try:
            return int(value)
        except (TypeError, ValueError) as error:
            raise SchemaError(f"cannot coerce {value!r} to INTEGER") from error

    if data_type is DataType.FLOAT:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        if strict:
            raise SchemaError(f"expected FLOAT, got {type(value).__name__}: {value!r}")
        try:
            return float(value)
        except (TypeError, ValueError) as error:
            raise SchemaError(f"cannot coerce {value!r} to FLOAT") from error

    if data_type is DataType.TEXT:
        if isinstance(value, str):
            return value
        if strict:
            raise SchemaError(f"expected TEXT, got {type(value).__name__}: {value!r}")
        return str(value)

    if data_type is DataType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if strict:
            raise SchemaError(f"expected BOOLEAN, got {type(value).__name__}: {value!r}")
        if isinstance(value, (int, float)):
            return bool(value)
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("true", "t", "1", "yes"):
                return True
            if lowered in ("false", "f", "0", "no"):
                return False
        raise SchemaError(f"cannot coerce {value!r} to BOOLEAN")

    if data_type is DataType.BLOB:
        return value

    if data_type is DataType.JSON:
        return value

    raise SchemaError(f"unsupported data type: {data_type}")  # pragma: no cover


def is_compatible(value: Any, data_type: DataType) -> bool:
    """Return True if ``value`` can be stored in a column of ``data_type``."""
    if value is None:
        return True
    try:
        coerce_value(value, data_type, strict=True)
        return True
    except SchemaError:
        return False


def compare_values(left: Any, right: Any) -> Optional[int]:
    """Three-way comparison that treats ``None`` as smaller than everything.

    Returns -1, 0, or 1; or ``None`` if the two values are not comparable
    (e.g. string vs dict), so callers can decide how to handle type mismatch.
    """
    if left is None and right is None:
        return 0
    if left is None:
        return -1
    if right is None:
        return 1
    if isinstance(left, bool) or isinstance(right, bool):
        left, right = bool(left), bool(right)
    try:
        if left < right:
            return -1
        if left > right:
            return 1
        return 0
    except TypeError:
        return None

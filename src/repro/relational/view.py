"""Views and materialized views.

KathDB's unified semantic layer is a layer of *views over data*: the scene
graph and text graph tables are populated views derived from raw images and
documents.  A :class:`View` wraps a compute function; a
:class:`MaterializedView` caches the result and records which function
version populated it, matching the paper's versioned view population.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.relational.table import Table


class View:
    """A virtual table computed on demand by a population function."""

    def __init__(self, name: str, populate: Callable[[], Table], description: str = ""):
        self.name = name
        self.description = description
        self._populate = populate

    def compute(self) -> Table:
        """Run the population function and return the resulting table."""
        table = self._populate()
        table.name = self.name
        if self.description and not table.description:
            table.description = self.description
        return table


class MaterializedView(View):
    """A view whose result is cached after the first computation."""

    def __init__(self, name: str, populate: Callable[[], Table], description: str = "",
                 populated_by: str = "", version: int = 1):
        super().__init__(name, populate, description)
        self.populated_by = populated_by
        self.version = version
        self._cache: Optional[Table] = None

    @property
    def is_populated(self) -> bool:
        """Whether the view has been computed at least once."""
        return self._cache is not None

    def compute(self) -> Table:
        """Return the cached table, computing it on first access."""
        if self._cache is None:
            self._cache = super().compute()
        return self._cache

    def refresh(self, populate: Optional[Callable[[], Table]] = None,
                populated_by: str = "", bump_version: bool = True) -> Table:
        """Recompute the view, optionally with a new population function.

        Each refresh bumps the view's version, mirroring the FAO versioning of
        the function that populated it.
        """
        if populate is not None:
            self._populate = populate
        if populated_by:
            self.populated_by = populated_by
        if bump_version:
            self.version += 1
        self._cache = None
        return self.compute()

    def invalidate(self) -> None:
        """Drop the cached result without recomputing."""
        self._cache = None

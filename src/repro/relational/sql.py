"""A small SQL front end for the embedded relational engine.

Generated FAO function bodies frequently contain "a SQL query over a table"
(paper Section 2.2), so the engine ships a compact SELECT dialect:

.. code-block:: sql

    SELECT [DISTINCT] <cols | aggregates | *>
    FROM <table> [JOIN <table> ON a = b]...
    [WHERE <predicate>]
    [GROUP BY <cols>]
    [ORDER BY <col> [ASC|DESC], ...]
    [LIMIT n [OFFSET m]]

The parser is a hand-written recursive-descent parser over a simple tokenizer;
the output is an :class:`~repro.relational.operators.Operator` tree that can
be executed against a :class:`~repro.relational.catalog.Catalog`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import SQLSyntaxError
from repro.relational.catalog import Catalog
from repro.relational.expressions import (
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
)
from repro.relational.operators import (
    Aggregate,
    AggregateSpec,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    Operator,
    Project,
    Sort,
    TableScan,
)
from repro.relational.table import Table


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<number>\d+\.\d+|\d+)
  | (?P<op><>|!=|<=|>=|=|<|>|\(|\)|,|\*|\+|-|/|%|\.)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "distinct", "from", "join", "inner", "left", "outer", "on", "where",
    "group", "by", "order", "asc", "desc", "limit", "offset", "and", "or", "not",
    "in", "is", "null", "like", "as", "count", "sum", "avg", "min", "max",
}


@dataclass
class Token:
    kind: str  # "string", "number", "op", "name", "keyword"
    value: str

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r})"


def tokenize_sql(text: str) -> List[Token]:
    """Tokenize a SQL string."""
    tokens: List[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise SQLSyntaxError(f"unexpected character {text[position]!r} at position {position}")
        position = match.end()
        if match.lastgroup == "ws":
            continue
        value = match.group()
        kind = match.lastgroup
        if kind == "name" and value.lower() in _KEYWORDS:
            tokens.append(Token("keyword", value.lower()))
        else:
            tokens.append(Token(kind, value))
    return tokens


# ---------------------------------------------------------------------------
# Parsed statement representation
# ---------------------------------------------------------------------------
@dataclass
class SelectItem:
    """One item of the SELECT list."""

    expression: Optional[Expression] = None
    aggregate: Optional[AggregateSpec] = None
    alias: Optional[str] = None
    star: bool = False


@dataclass
class JoinClause:
    """One JOIN ... ON a = b clause."""

    table: str
    left_key: str
    right_key: str
    how: str = "inner"


@dataclass
class SelectStatement:
    """A parsed SELECT statement."""

    items: List[SelectItem] = field(default_factory=list)
    distinct: bool = False
    from_table: str = ""
    joins: List[JoinClause] = field(default_factory=list)
    where: Optional[Expression] = None
    group_by: List[str] = field(default_factory=list)
    order_by: List[Tuple[str, bool]] = field(default_factory=list)
    limit: Optional[int] = None
    offset: int = 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------
class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token helpers --------------------------------------------------------
    def peek(self, offset: int = 0) -> Optional[Token]:
        index = self.position + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def advance(self) -> Token:
        token = self.peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of statement")
        self.position += 1
        return token

    def accept_keyword(self, *keywords: str) -> Optional[str]:
        token = self.peek()
        if token and token.kind == "keyword" and token.value in keywords:
            self.advance()
            return token.value
        return None

    def expect_keyword(self, keyword: str) -> None:
        if not self.accept_keyword(keyword):
            raise SQLSyntaxError(f"expected {keyword.upper()!r} near {self.peek()}")

    def accept_op(self, op: str) -> bool:
        token = self.peek()
        if token and token.kind == "op" and token.value == op:
            self.advance()
            return True
        return False

    def expect_op(self, op: str) -> None:
        if not self.accept_op(op):
            raise SQLSyntaxError(f"expected {op!r} near {self.peek()}")

    def expect_name(self) -> str:
        token = self.advance()
        if token.kind not in ("name", "keyword"):
            raise SQLSyntaxError(f"expected identifier, got {token}")
        return token.value

    # -- grammar ------------------------------------------------------------------
    def parse_select(self) -> SelectStatement:
        self.expect_keyword("select")
        statement = SelectStatement()
        statement.distinct = bool(self.accept_keyword("distinct"))
        statement.items = self._parse_select_list()
        self.expect_keyword("from")
        statement.from_table = self.expect_name()
        while True:
            how = "inner"
            if self.accept_keyword("left"):
                self.accept_keyword("outer")
                how = "left"
                self.expect_keyword("join")
            elif self.accept_keyword("inner"):
                self.expect_keyword("join")
            elif self.accept_keyword("join"):
                pass
            else:
                break
            table = self.expect_name()
            self.expect_keyword("on")
            left = self._parse_qualified_name()
            self.expect_op("=")
            right = self._parse_qualified_name()
            statement.joins.append(JoinClause(table=table, left_key=left, right_key=right, how=how))
        if self.accept_keyword("where"):
            statement.where = self._parse_or()
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            statement.group_by = [self._parse_qualified_name()]
            while self.accept_op(","):
                statement.group_by.append(self._parse_qualified_name())
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            statement.order_by = [self._parse_order_key()]
            while self.accept_op(","):
                statement.order_by.append(self._parse_order_key())
        if self.accept_keyword("limit"):
            statement.limit = int(self.advance().value)
            if self.accept_keyword("offset"):
                statement.offset = int(self.advance().value)
        if self.peek() is not None:
            raise SQLSyntaxError(f"unexpected trailing tokens near {self.peek()}")
        return statement

    def _parse_order_key(self) -> Tuple[str, bool]:
        name = self._parse_qualified_name()
        descending = False
        if self.accept_keyword("desc"):
            descending = True
        else:
            self.accept_keyword("asc")
        return name, descending

    def _parse_qualified_name(self) -> str:
        name = self.expect_name()
        # Accept "table.column" but keep only the column part: the engine's
        # joined tables use flat (possibly suffixed) column names.
        if self.accept_op("."):
            name = self.expect_name()
        return name

    def _parse_select_list(self) -> List[SelectItem]:
        items = [self._parse_select_item()]
        while self.accept_op(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> SelectItem:
        if self.accept_op("*"):
            return SelectItem(star=True)
        token = self.peek()
        if token and token.kind == "keyword" and token.value in ("count", "sum", "avg", "min", "max"):
            self.advance()
            self.expect_op("(")
            column: Optional[str] = None
            if self.accept_op("*"):
                pass
            else:
                column = self._parse_qualified_name()
            self.expect_op(")")
            alias = f"{token.value}_{column or 'all'}"
            if self.accept_keyword("as"):
                alias = self.expect_name()
            return SelectItem(aggregate=AggregateSpec(token.value, column, alias), alias=alias)
        expression = self._parse_additive()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_name()
        return SelectItem(expression=expression, alias=alias)

    # expression grammar: or -> and -> not -> comparison -> additive -> term
    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self.accept_keyword("or"):
            left = BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self.accept_keyword("and"):
            left = BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> Expression:
        if self.accept_keyword("not"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        left = self._parse_additive()
        token = self.peek()
        if token and token.kind == "op" and token.value in ("=", "!=", "<>", "<", "<=", ">", ">="):
            op = self.advance().value
            return BinaryOp(op, left, self._parse_additive())
        if token and token.kind == "keyword" and token.value == "is":
            self.advance()
            negated = bool(self.accept_keyword("not"))
            self.expect_keyword("null")
            return IsNull(left, negated=negated)
        negated = False
        if token and token.kind == "keyword" and token.value == "not":
            following = self.peek(1)
            if following and following.kind == "keyword" and following.value in ("like", "in"):
                self.advance()
                negated = True
                token = self.peek()
        if token and token.kind == "keyword" and token.value == "like":
            self.advance()
            pattern_token = self.advance()
            if pattern_token.kind != "string":
                raise SQLSyntaxError("LIKE pattern must be a string literal")
            return Like(left, pattern_token.value[1:-1].replace("''", "'"), negated=negated)
        if token and token.kind == "keyword" and token.value == "in":
            self.advance()
            self.expect_op("(")
            options = [self._parse_additive()]
            while self.accept_op(","):
                options.append(self._parse_additive())
            self.expect_op(")")
            return InList(left, options, negated=negated)
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            token = self.peek()
            if token and token.kind == "op" and token.value in ("+", "-"):
                op = self.advance().value
                left = BinaryOp(op, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_term()
        while True:
            token = self.peek()
            if token and token.kind == "op" and token.value in ("*", "/", "%"):
                op = self.advance().value
                left = BinaryOp(op, left, self._parse_term())
            else:
                return left

    def _parse_term(self) -> Expression:
        token = self.advance()
        if token.kind == "string":
            return Literal(token.value[1:-1].replace("''", "'"))
        if token.kind == "number":
            if "." in token.value:
                return Literal(float(token.value))
            return Literal(int(token.value))
        if token.kind == "op" and token.value == "(":
            inner = self._parse_or()
            self.expect_op(")")
            return inner
        if token.kind == "op" and token.value == "-":
            return UnaryOp("-", self._parse_term())
        if token.kind in ("name", "keyword"):
            name = token.value
            if token.kind == "keyword" and name == "null":
                return Literal(None)
            # function call?
            if self.peek() and self.peek().kind == "op" and self.peek().value == "(":
                self.advance()
                args: List[Expression] = []
                if not self.accept_op(")"):
                    args.append(self._parse_additive())
                    while self.accept_op(","):
                        args.append(self._parse_additive())
                    self.expect_op(")")
                return FunctionCall(name, args)
            if self.accept_op("."):
                name = self.expect_name()
            return ColumnRef(name)
        raise SQLSyntaxError(f"unexpected token {token}")


def parse_sql(sql: str) -> SelectStatement:
    """Parse a SELECT statement into a :class:`SelectStatement`."""
    tokens = tokenize_sql(sql)
    if not tokens:
        raise SQLSyntaxError("empty statement")
    return _Parser(tokens).parse_select()


# ---------------------------------------------------------------------------
# Planner: SelectStatement -> Operator tree -> Table
# ---------------------------------------------------------------------------
def build_plan(statement: SelectStatement, catalog: Catalog) -> Operator:
    """Build an operator tree from a parsed statement against a catalog."""
    plan: Operator = TableScan(catalog.table(statement.from_table))
    current_columns = list(catalog.table(statement.from_table).column_names())
    for join in statement.joins:
        right_table = catalog.table(join.table)
        # Decide which key belongs to which side by looking at available names.
        left_key, right_key = join.left_key, join.right_key
        lowered = {c.lower() for c in current_columns}
        if left_key.lower() not in lowered and right_key.lower() in lowered:
            left_key, right_key = right_key, left_key
        plan = HashJoin(plan, TableScan(right_table), left_key, right_key, how=join.how)
        merged = Schema_merge_names(current_columns, right_table.column_names())
        current_columns = merged
    if statement.where is not None:
        plan = Filter(plan, statement.where)
    aggregates = [item.aggregate for item in statement.items if item.aggregate is not None]
    projection: Optional[List[str]] = None
    if aggregates or statement.group_by:
        plan = Aggregate(plan, statement.group_by, aggregates)
    else:
        star = any(item.star for item in statement.items)
        if not star:
            projection = []
            for item in statement.items:
                if isinstance(item.expression, ColumnRef) and item.alias is None:
                    projection.append(item.expression.name)
                else:
                    projection.append(item.alias or item.expression.describe())
            # Computed items need Extend nodes before projection (and before
            # the sort, so ORDER BY can reference their aliases).
            needs_extend = [
                item for item in statement.items
                if not (isinstance(item.expression, ColumnRef) and item.alias is None)
            ]
            if needs_extend:
                from repro.relational.operators import Extend
                for item in needs_extend:
                    alias = item.alias or item.expression.describe()
                    plan = Extend(plan, alias, item.expression)
    # ORDER BY may reference columns that are not part of the SELECT list, so
    # sorting happens before the final projection.
    if statement.order_by:
        plan = Sort(plan, statement.order_by)
    if projection is not None:
        plan = Project(plan, projection)
    if statement.distinct:
        plan = Distinct(plan)
    if statement.limit is not None:
        plan = Limit(plan, statement.limit, statement.offset)
    return plan


def Schema_merge_names(left: List[str], right: List[str]) -> List[str]:
    """Column names produced by merging two schemas (mirrors Schema.merge)."""
    merged = list(left)
    lowered = {c.lower() for c in left}
    for name in right:
        out = name
        if out.lower() in lowered:
            out = out + "_right"
        while out.lower() in {c.lower() for c in merged}:
            out = out + "_"
        merged.append(out)
    return merged


def execute_sql(sql: str, catalog: Catalog, result_name: Optional[str] = None) -> Table:
    """Parse, plan, and execute a SELECT statement against a catalog."""
    statement = parse_sql(sql)
    plan = build_plan(statement, catalog)
    result = plan.execute()
    if result_name:
        result = result.copy(result_name)
    return result

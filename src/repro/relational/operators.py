"""Relational-algebra operators over :class:`~repro.relational.table.Table`.

Each operator is a small class with an ``execute()`` method returning a new
table; they can be composed into trees.  Plain functions (``filter_rows``,
``hash_join``, ...) are also provided because the generated FAO function
bodies call them directly.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import RelationalError, UnknownColumnError
from repro.relational.expressions import Expression
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import DataType, compare_values


# ---------------------------------------------------------------------------
# Functional API
# ---------------------------------------------------------------------------
def filter_rows(table: Table, predicate: Expression, name: Optional[str] = None) -> Table:
    """Selection: keep rows where ``predicate`` evaluates truthy."""
    result = table.empty_like(name or f"{table.name}_filtered")
    for row in table:
        if predicate.evaluate(row):
            result.rows.append(dict(row))
    return result


def project(table: Table, columns: Sequence[str], name: Optional[str] = None) -> Table:
    """Projection: keep (and reorder) the given columns."""
    missing = [c for c in columns if not table.schema.has_column(c)]
    if missing:
        raise UnknownColumnError(f"projection references unknown columns {missing} on {table.name!r}")
    return table.select_columns(list(columns), name=name or f"{table.name}_projected")


def extend(table: Table, column_name: str, expression: Expression,
           data_type: Optional[DataType] = None, name: Optional[str] = None) -> Table:
    """Extended projection: add a computed column."""
    values = [expression.evaluate(row) for row in table]
    if data_type is None:
        data_type = DataType.JSON
        for value in values:
            if value is not None:
                data_type = DataType.infer(value)
                break
    result_schema = table.schema.add(Column(column_name, data_type))
    result = Table(name or f"{table.name}_extended", result_schema)
    for row, value in zip(table, values):
        new_row = dict(row)
        new_row[column_name] = value
        result.rows.append(result_schema.validate_row(new_row))
    return result


def rename_columns(table: Table, mapping: Dict[str, str], name: Optional[str] = None) -> Table:
    """Rename columns according to ``mapping``."""
    schema = table.schema.rename(mapping)
    result = Table(name or table.name, schema)
    lowered = {k.lower(): v for k, v in mapping.items()}
    for row in table:
        new_row = {}
        for key, value in row.items():
            new_row[lowered.get(key.lower(), key)] = value
        result.rows.append(schema.validate_row(new_row))
    return result


def distinct(table: Table, columns: Optional[Sequence[str]] = None, name: Optional[str] = None) -> Table:
    """Duplicate elimination over all columns or a subset."""
    keys = list(columns) if columns else table.column_names()
    seen = set()
    result = table.empty_like(name or f"{table.name}_distinct")
    for row in table:
        key = tuple(repr(row.get(k)) for k in keys)
        if key not in seen:
            seen.add(key)
            result.rows.append(dict(row))
    return result


def sort(table: Table, keys: Sequence[Tuple[str, bool]], name: Optional[str] = None) -> Table:
    """Sort by multiple ``(column, descending)`` keys, NULLs first ascending."""
    for column, _ in keys:
        table.schema.column(column)

    def cmp(a: Dict[str, Any], b: Dict[str, Any]) -> int:
        for column, descending in keys:
            result = compare_values(a.get(column), b.get(column))
            if result is None:
                result = compare_values(repr(a.get(column)), repr(b.get(column))) or 0
            if result != 0:
                return -result if descending else result
        return 0

    ordered = sorted(table.rows, key=functools.cmp_to_key(cmp))
    result = table.empty_like(name or f"{table.name}_sorted")
    result.rows.extend(dict(row) for row in ordered)
    return result


def limit(table: Table, count: int, offset: int = 0, name: Optional[str] = None) -> Table:
    """LIMIT/OFFSET."""
    result = table.empty_like(name or f"{table.name}_limited")
    result.rows.extend(dict(row) for row in table.rows[offset:offset + count])
    return result


def union_all(left: Table, right: Table, name: Optional[str] = None) -> Table:
    """UNION ALL of two union-compatible tables."""
    if [c.lower() for c in left.column_names()] != [c.lower() for c in right.column_names()]:
        raise RelationalError(
            f"union of incompatible schemas: {left.column_names()} vs {right.column_names()}"
        )
    result = left.empty_like(name or f"{left.name}_union")
    result.rows.extend(dict(row) for row in left)
    for row in right:
        result.rows.append({left_col: row.get(right_col)
                            for left_col, right_col in zip(left.column_names(), right.column_names())})
    return result


def cross_product(left: Table, right: Table, name: Optional[str] = None) -> Table:
    """Cartesian product (right-hand colliding names get a ``_right`` suffix)."""
    schema = left.schema.merge(right.schema)
    result = Table(name or f"{left.name}_x_{right.name}", schema)
    left_names = left.column_names()
    merged_names = schema.column_names()
    right_out_names = merged_names[len(left_names):]
    for lrow in left:
        for rrow in right:
            row = {n: lrow.get(n) for n in left_names}
            for out_name, in_name in zip(right_out_names, right.column_names()):
                row[out_name] = rrow.get(in_name)
            result.rows.append(row)
    return result


def hash_join(left: Table, right: Table, left_key: str, right_key: str,
              how: str = "inner", name: Optional[str] = None) -> Table:
    """Equi-join using a hash table on the right input.

    ``how`` is ``"inner"`` or ``"left"`` (left outer).  Colliding right-hand
    column names are suffixed with ``_right``.
    """
    left.schema.column(left_key)
    right.schema.column(right_key)
    if how not in ("inner", "left"):
        raise RelationalError(f"unsupported join type: {how!r}")

    schema = left.schema.merge(right.schema)
    result = Table(name or f"{left.name}_join_{right.name}", schema)
    left_names = left.column_names()
    merged_names = schema.column_names()
    right_out_names = merged_names[len(left_names):]
    right_in_names = right.column_names()

    index: Dict[Any, List[Dict[str, Any]]] = {}
    for row in right:
        key = row.get(right_key)
        if key is None:
            continue
        index.setdefault(_hashable(key), []).append(row)

    for lrow in left:
        key = lrow.get(left_key)
        matches = index.get(_hashable(key), []) if key is not None else []
        if matches:
            for rrow in matches:
                row = {n: lrow.get(n) for n in left_names}
                for out_name, in_name in zip(right_out_names, right_in_names):
                    row[out_name] = rrow.get(in_name)
                result.rows.append(row)
        elif how == "left":
            row = {n: lrow.get(n) for n in left_names}
            for out_name in right_out_names:
                row[out_name] = None
            result.rows.append(row)
    return result


def _hashable(value: Any) -> Any:
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------
def _agg_count(values: List[Any]) -> int:
    return sum(1 for v in values if v is not None)


def _agg_sum(values: List[Any]) -> Any:
    present = [v for v in values if v is not None]
    return sum(present) if present else None


def _agg_avg(values: List[Any]) -> Any:
    present = [v for v in values if v is not None]
    return sum(present) / len(present) if present else None


def _agg_min(values: List[Any]) -> Any:
    present = [v for v in values if v is not None]
    return min(present) if present else None


def _agg_max(values: List[Any]) -> Any:
    present = [v for v in values if v is not None]
    return max(present) if present else None


def _agg_collect(values: List[Any]) -> List[Any]:
    return [v for v in values if v is not None]


AGGREGATES: Dict[str, Callable[[List[Any]], Any]] = {
    "count": _agg_count,
    "sum": _agg_sum,
    "avg": _agg_avg,
    "mean": _agg_avg,
    "min": _agg_min,
    "max": _agg_max,
    "collect": _agg_collect,
}


@dataclass
class AggregateSpec:
    """One aggregate to compute: ``function(column) AS alias``."""

    function: str
    column: Optional[str]  # None means COUNT(*)
    alias: str

    def compute(self, rows: List[Dict[str, Any]]) -> Any:
        """Apply the aggregate over the rows of one group."""
        fn_name = self.function.lower()
        if fn_name == "count" and self.column is None:
            return len(rows)
        fn = AGGREGATES.get(fn_name)
        if fn is None:
            raise RelationalError(f"unknown aggregate function: {self.function!r}")
        values = [row.get(self.column) for row in rows]
        return fn(values)


def aggregate(table: Table, group_by: Sequence[str], aggregates: Sequence[AggregateSpec],
              name: Optional[str] = None) -> Table:
    """GROUP BY with aggregates (empty ``group_by`` = global aggregation)."""
    for column in group_by:
        table.schema.column(column)
    for spec in aggregates:
        if spec.column is not None:
            table.schema.column(spec.column)

    groups: Dict[Tuple, List[Dict[str, Any]]] = {}
    order: List[Tuple] = []
    for row in table:
        key = tuple(_hashable(row.get(c)) for c in group_by)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    if not group_by and not groups:
        groups[()] = []
        order.append(())

    columns = [table.schema.column(c) for c in group_by]
    for spec in aggregates:
        if spec.function.lower() == "count":
            columns.append(Column(spec.alias, DataType.INTEGER))
        elif spec.function.lower() == "collect":
            columns.append(Column(spec.alias, DataType.JSON))
        elif spec.column is not None and table.schema.column(spec.column).data_type is DataType.INTEGER \
                and spec.function.lower() in ("sum", "min", "max"):
            columns.append(Column(spec.alias, DataType.INTEGER))
        else:
            columns.append(Column(spec.alias, DataType.FLOAT))
    schema = Schema(columns)

    result = Table(name or f"{table.name}_agg", schema)
    for key in order:
        rows = groups[key]
        out: Dict[str, Any] = {}
        for column_name, value in zip(group_by, key):
            out[table.schema.column(column_name).name] = value
        for spec in aggregates:
            out[spec.alias] = spec.compute(rows)
        result.insert(out)
    return result


# ---------------------------------------------------------------------------
# Operator tree (used by the physical plans and by the SQL front end)
# ---------------------------------------------------------------------------
class Operator:
    """Base class for composable relational operators."""

    def execute(self) -> Table:
        """Produce the operator's output table."""
        raise NotImplementedError

    def children(self) -> List["Operator"]:
        """Child operators, if any."""
        return []

    def describe(self) -> str:
        """One-line human-readable description (used in explanations)."""
        raise NotImplementedError

    def explain_tree(self, indent: int = 0) -> str:
        """Multi-line indented rendering of the operator tree."""
        lines = ["  " * indent + self.describe()]
        for child in self.children():
            lines.append(child.explain_tree(indent + 1))
        return "\n".join(lines)


@dataclass
class TableScan(Operator):
    """Leaf: scan an existing table."""

    table: Table

    def execute(self) -> Table:
        return self.table

    def describe(self) -> str:
        return f"Scan({self.table.name}, rows={len(self.table)})"


@dataclass
class Filter(Operator):
    """Selection node."""

    child: Operator
    predicate: Expression

    def execute(self) -> Table:
        return filter_rows(self.child.execute(), self.predicate)

    def children(self) -> List[Operator]:
        return [self.child]

    def describe(self) -> str:
        return f"Filter({self.predicate.describe()})"


@dataclass
class Project(Operator):
    """Projection node."""

    child: Operator
    columns: List[str]

    def execute(self) -> Table:
        return project(self.child.execute(), self.columns)

    def children(self) -> List[Operator]:
        return [self.child]

    def describe(self) -> str:
        return f"Project({', '.join(self.columns)})"


@dataclass
class Extend(Operator):
    """Extended-projection node (adds one computed column)."""

    child: Operator
    column_name: str
    expression: Expression

    def execute(self) -> Table:
        return extend(self.child.execute(), self.column_name, self.expression)

    def children(self) -> List[Operator]:
        return [self.child]

    def describe(self) -> str:
        return f"Extend({self.column_name} := {self.expression.describe()})"


@dataclass
class HashJoin(Operator):
    """Equi-join node."""

    left: Operator
    right: Operator
    left_key: str
    right_key: str
    how: str = "inner"

    def execute(self) -> Table:
        return hash_join(self.left.execute(), self.right.execute(),
                         self.left_key, self.right_key, how=self.how)

    def children(self) -> List[Operator]:
        return [self.left, self.right]

    def describe(self) -> str:
        return f"HashJoin({self.left_key} = {self.right_key}, how={self.how})"


@dataclass
class Aggregate(Operator):
    """GROUP BY node."""

    child: Operator
    group_by: List[str]
    aggregates: List[AggregateSpec]

    def execute(self) -> Table:
        return aggregate(self.child.execute(), self.group_by, self.aggregates)

    def children(self) -> List[Operator]:
        return [self.child]

    def describe(self) -> str:
        aggs = ", ".join(f"{a.function}({a.column or '*'}) AS {a.alias}" for a in self.aggregates)
        by = ", ".join(self.group_by) if self.group_by else "<global>"
        return f"Aggregate(group_by=[{by}], aggs=[{aggs}])"


@dataclass
class Sort(Operator):
    """ORDER BY node."""

    child: Operator
    keys: List[Tuple[str, bool]]

    def execute(self) -> Table:
        return sort(self.child.execute(), self.keys)

    def children(self) -> List[Operator]:
        return [self.child]

    def describe(self) -> str:
        keys = ", ".join(f"{c} {'DESC' if d else 'ASC'}" for c, d in self.keys)
        return f"Sort({keys})"


@dataclass
class Limit(Operator):
    """LIMIT node."""

    child: Operator
    count: int
    offset: int = 0

    def execute(self) -> Table:
        return limit(self.child.execute(), self.count, self.offset)

    def children(self) -> List[Operator]:
        return [self.child]

    def describe(self) -> str:
        return f"Limit({self.count}, offset={self.offset})"


@dataclass
class Distinct(Operator):
    """DISTINCT node."""

    child: Operator
    columns: Optional[List[str]] = None

    def execute(self) -> Table:
        return distinct(self.child.execute(), self.columns)

    def children(self) -> List[Operator]:
        return [self.child]

    def describe(self) -> str:
        cols = ", ".join(self.columns) if self.columns else "*"
        return f"Distinct({cols})"

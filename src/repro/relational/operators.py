"""Relational-algebra operators over :class:`~repro.relational.table.Table`.

Each operator is a small class with an ``execute()`` method returning a new
table; they can be composed into trees.  Plain functions (``filter_rows``,
``hash_join``, ...) are also provided because the generated FAO function
bodies call them directly.

All pure-relational operators here work **column-at-a-time** over the
table's shared vectors: predicates and computed columns vectorize through
:meth:`Expression.evaluate_column` (falling back to row-at-a-time only for
impure expressions, which must keep their short-circuit/side-effect order),
and row construction is replaced by position gathers and vector concats.
Projection and rename stay zero-copy: the output shares the input's column
vectors under copy-on-write.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import RelationalError, UnknownColumnError
from repro.relational.expressions import Expression
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import DataType, compare_values


# ---------------------------------------------------------------------------
# Functional API (columnar)
# ---------------------------------------------------------------------------
def _vector(table: Table, name: str) -> List[Any]:
    """The raw vector for ``name`` (case-insensitive), NULLs when absent.

    Mirrors the historical ``row.get(name)`` semantics: a name that resolves
    to no stored column reads as all-NULL rather than raising.
    """
    store = table._store
    resolved = store.resolve(name)
    if resolved is None:
        return [None] * len(store)
    return store.column(resolved)


def _evaluate_vector(table: Table, expression: Expression) -> List[Any]:
    """Vectorized expression evaluation with a semantics-preserving fallback."""
    if expression.is_pure():
        return expression.evaluate_column(table)
    return [expression.evaluate(row) for row in table.rows]


def filter_rows(table: Table, predicate: Expression, name: Optional[str] = None) -> Table:
    """Selection: keep rows where ``predicate`` evaluates truthy."""
    mask = _evaluate_vector(table, predicate)
    positions = [i for i, keep in enumerate(mask) if keep]
    result = table.empty_like(name or f"{table.name}_filtered")
    result._store = table._store.gather(positions)
    return result


def project(table: Table, columns: Sequence[str], name: Optional[str] = None) -> Table:
    """Projection: keep (and reorder) the given columns (vectors shared)."""
    missing = [c for c in columns if not table.schema.has_column(c)]
    if missing:
        raise UnknownColumnError(f"projection references unknown columns {missing} on {table.name!r}")
    return table.select_columns(list(columns), name=name or f"{table.name}_projected")


def extend(table: Table, column_name: str, expression: Expression,
           data_type: Optional[DataType] = None, name: Optional[str] = None) -> Table:
    """Extended projection: add a computed column (input vectors shared)."""
    values = _evaluate_vector(table, expression)
    if data_type is None:
        data_type = DataType.JSON
        for value in values:
            if value is not None:
                data_type = DataType.infer(value)
                break
    column = Column(column_name, data_type)
    result_schema = table.schema.add(column)
    store = table._store.fork()
    store.set_column(column.name, [column.validate(v) for v in values])
    return Table._adopt(name or f"{table.name}_extended", result_schema, store,
                        description=table.description,
                        lossy_columns=table.lossy_columns)


def rename_columns(table: Table, mapping: Dict[str, str], name: Optional[str] = None) -> Table:
    """Rename columns according to ``mapping`` (vectors shared)."""
    schema = table.schema.rename(mapping)
    lowered = {k.lower(): v for k, v in mapping.items()}
    pairs = [(new.name, old.name) for old, new in zip(table.schema.columns, schema.columns)]
    store = table._store.fork_projection(pairs)
    lossy = [lowered.get(c.lower(), c) for c in table.lossy_columns]
    return Table._adopt(name or table.name, schema, store,
                        description=table.description, lossy_columns=lossy)


def distinct(table: Table, columns: Optional[Sequence[str]] = None, name: Optional[str] = None) -> Table:
    """Duplicate elimination over all columns or a subset."""
    keys = list(columns) if columns else table.column_names()
    vectors = [_vector(table, k) for k in keys]
    seen = set()
    positions: List[int] = []
    for i in range(len(table)):
        key = tuple(repr(vec[i]) for vec in vectors)
        if key not in seen:
            seen.add(key)
            positions.append(i)
    result = table.empty_like(name or f"{table.name}_distinct")
    result._store = table._store.gather(positions)
    return result


#: Non-None value-type sets a column may hold for the native key-sort fast
#: path to order exactly like ``compare_values`` (NULLs first ascending).
#: Mixed bool/number columns are excluded: ``compare_values`` collapses both
#: sides to bool there, which native comparison would not.
_NATIVE_SORT_TYPES = ({int}, {float}, {int, float}, {str}, {bool})


def _native_sortable(vector: List[Any]) -> bool:
    types = {type(v) for v in vector if v is not None}
    return not types or types in _NATIVE_SORT_TYPES


def sort(table: Table, keys: Sequence[Tuple[str, bool]], name: Optional[str] = None) -> Table:
    """Sort by multiple ``(column, descending)`` keys, NULLs first ascending."""
    for column, _ in keys:
        table.schema.column(column)
    vectors = [(_vector(table, column), descending) for column, descending in keys]

    if all(_native_sortable(vector) for vector, _ in vectors):
        # Homogeneous scalar keys: one C-level stable key-sort per key,
        # last key first (LSD), reproduces the lexicographic cmp order at a
        # fraction of the per-comparison cost.
        order = list(range(len(table)))
        for vector, descending in reversed(vectors):
            order.sort(key=lambda i, vec=vector: (0, 0) if vec[i] is None
                       else (1, vec[i]), reverse=descending)
    else:
        def cmp(a: int, b: int) -> int:
            for vector, descending in vectors:
                result = compare_values(vector[a], vector[b])
                if result is None:
                    result = compare_values(repr(vector[a]), repr(vector[b])) or 0
                if result != 0:
                    return -result if descending else result
            return 0

        order = sorted(range(len(table)), key=functools.cmp_to_key(cmp))
    result = table.empty_like(name or f"{table.name}_sorted")
    result._store = table._store.gather(order)
    return result


def limit(table: Table, count: int, offset: int = 0, name: Optional[str] = None) -> Table:
    """LIMIT/OFFSET (column slices)."""
    result = table.empty_like(name or f"{table.name}_limited")
    result._store = table._store.slice(offset, offset + count)
    return result


def union_all(left: Table, right: Table, name: Optional[str] = None) -> Table:
    """UNION ALL of two union-compatible tables (vector concatenation)."""
    if [c.lower() for c in left.column_names()] != [c.lower() for c in right.column_names()]:
        raise RelationalError(
            f"union of incompatible schemas: {left.column_names()} vs {right.column_names()}"
        )
    positional = dict(zip(left.column_names(), right.column_names()))
    columns: Dict[str, List[Any]] = {}
    for column_name in left._store.column_names():
        left_vector = left._store.column(column_name)
        right_name = positional.get(column_name)
        if right_name is not None:
            columns[column_name] = list(left_vector) + list(_vector(right, right_name))
        else:
            # Columns outside the schema (hidden/extra) have no right-hand
            # counterpart; the right half reads as NULL, as it always did.
            columns[column_name] = list(left_vector) + [None] * len(right)
    result = left.empty_like(name or f"{left.name}_union")
    result._store.replace_all(columns, len(left) + len(right))
    return result


def cross_product(left: Table, right: Table, name: Optional[str] = None) -> Table:
    """Cartesian product (right-hand colliding names get a ``_right`` suffix)."""
    schema = left.schema.merge(right.schema)
    left_names = left.column_names()
    merged_names = schema.column_names()
    right_out_names = merged_names[len(left_names):]
    n_right = len(right)
    columns: Dict[str, List[Any]] = {}
    for column_name in left_names:
        vector = _vector(left, column_name)
        columns[column_name] = [value for value in vector for _ in range(n_right)]
    for out_name, in_name in zip(right_out_names, right.column_names()):
        columns[out_name] = list(_vector(right, in_name)) * len(left)
    result = Table(name or f"{left.name}_x_{right.name}", schema)
    result._store.replace_all(columns, len(left) * n_right)
    return result


def hash_join(left: Table, right: Table, left_key: str, right_key: str,
              how: str = "inner", name: Optional[str] = None) -> Table:
    """Equi-join using a hash index on the right key vector.

    ``how`` is ``"inner"`` or ``"left"`` (left outer).  Colliding right-hand
    column names are suffixed with ``_right``.  Matching works over key
    vectors; output columns are built by position gathers.
    """
    left.schema.column(left_key)
    right.schema.column(right_key)
    if how not in ("inner", "left"):
        raise RelationalError(f"unsupported join type: {how!r}")

    schema = left.schema.merge(right.schema)
    left_names = left.column_names()
    merged_names = schema.column_names()
    right_out_names = merged_names[len(left_names):]
    right_in_names = right.column_names()

    index: Dict[Any, List[int]] = {}
    for position, key in enumerate(right.column(right_key)):
        if key is None:
            continue
        index.setdefault(_hashable(key), []).append(position)

    left_positions: List[int] = []
    right_positions: List[Optional[int]] = []
    for i, key in enumerate(left.column(left_key)):
        matches = index.get(_hashable(key)) if key is not None else None
        if matches:
            for position in matches:
                left_positions.append(i)
                right_positions.append(position)
        elif how == "left":
            left_positions.append(i)
            right_positions.append(None)

    columns: Dict[str, List[Any]] = {}
    for column_name in left_names:
        vector = _vector(left, column_name)
        columns[column_name] = [vector[i] for i in left_positions]
    for out_name, in_name in zip(right_out_names, right_in_names):
        vector = _vector(right, in_name)
        columns[out_name] = [vector[p] if p is not None else None
                             for p in right_positions]
    result = Table(name or f"{left.name}_join_{right.name}", schema)
    result._store.replace_all(columns, len(left_positions))
    return result


def _hashable(value: Any) -> Any:
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------
def _agg_count(values: List[Any]) -> int:
    return sum(1 for v in values if v is not None)


def _agg_sum(values: List[Any]) -> Any:
    present = [v for v in values if v is not None]
    return sum(present) if present else None


def _agg_avg(values: List[Any]) -> Any:
    present = [v for v in values if v is not None]
    return sum(present) / len(present) if present else None


def _agg_min(values: List[Any]) -> Any:
    present = [v for v in values if v is not None]
    return min(present) if present else None


def _agg_max(values: List[Any]) -> Any:
    present = [v for v in values if v is not None]
    return max(present) if present else None


def _agg_collect(values: List[Any]) -> List[Any]:
    return [v for v in values if v is not None]


AGGREGATES: Dict[str, Callable[[List[Any]], Any]] = {
    "count": _agg_count,
    "sum": _agg_sum,
    "avg": _agg_avg,
    "mean": _agg_avg,
    "min": _agg_min,
    "max": _agg_max,
    "collect": _agg_collect,
}


@dataclass
class AggregateSpec:
    """One aggregate to compute: ``function(column) AS alias``."""

    function: str
    column: Optional[str]  # None means COUNT(*)
    alias: str

    def compute(self, rows: List[Dict[str, Any]]) -> Any:
        """Apply the aggregate over the rows of one group."""
        fn_name = self.function.lower()
        if fn_name == "count" and self.column is None:
            return len(rows)
        fn = AGGREGATES.get(fn_name)
        if fn is None:
            raise RelationalError(f"unknown aggregate function: {self.function!r}")
        values = [row.get(self.column) for row in rows]
        return fn(values)

    def compute_positions(self, table: Table, positions: Sequence[int]) -> Any:
        """Columnar twin of :meth:`compute`: aggregate over row positions."""
        fn_name = self.function.lower()
        if fn_name == "count" and self.column is None:
            return len(positions)
        fn = AGGREGATES.get(fn_name)
        if fn is None:
            raise RelationalError(f"unknown aggregate function: {self.function!r}")
        vector = _vector(table, self.column) if self.column is not None else []
        return fn([vector[p] for p in positions])


def aggregate(table: Table, group_by: Sequence[str], aggregates: Sequence[AggregateSpec],
              name: Optional[str] = None) -> Table:
    """GROUP BY with aggregates (empty ``group_by`` = global aggregation)."""
    for column in group_by:
        table.schema.column(column)
    for spec in aggregates:
        if spec.column is not None:
            table.schema.column(spec.column)

    key_vectors = [_vector(table, c) for c in group_by]
    groups: Dict[Tuple, List[int]] = {}
    order: List[Tuple] = []
    scalar_done = False
    if len(key_vectors) == 1:
        # Single-key fast path: group on the raw value (no per-row tuple
        # construction, no per-value hashability probe).  Falls back to the
        # general path the moment a value turns out unhashable.
        scalar_groups: Dict[Any, List[int]] = {}
        scalar_order: List[Any] = []
        try:
            for i, value in enumerate(key_vectors[0]):
                bucket = scalar_groups.get(value)
                if bucket is None:
                    scalar_groups[value] = [i]
                    scalar_order.append(value)
                else:
                    bucket.append(i)
            scalar_done = True
        except TypeError:
            pass
        if scalar_done:
            groups = {(key,): positions for key, positions in scalar_groups.items()}
            order = [(key,) for key in scalar_order]
    if not scalar_done:
        for i in range(len(table)):
            key = tuple(_hashable(vec[i]) for vec in key_vectors)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(i)
    if not group_by and not groups:
        groups[()] = []
        order.append(())

    columns = [table.schema.column(c) for c in group_by]
    for spec in aggregates:
        if spec.function.lower() == "count":
            columns.append(Column(spec.alias, DataType.INTEGER))
        elif spec.function.lower() == "collect":
            columns.append(Column(spec.alias, DataType.JSON))
        elif spec.column is not None and table.schema.column(spec.column).data_type is DataType.INTEGER \
                and spec.function.lower() in ("sum", "min", "max"):
            columns.append(Column(spec.alias, DataType.INTEGER))
        else:
            columns.append(Column(spec.alias, DataType.FLOAT))
    schema = Schema(columns)

    result = Table(name or f"{table.name}_agg", schema)
    for key in order:
        positions = groups[key]
        out: Dict[str, Any] = {}
        for column_name, value in zip(group_by, key):
            out[table.schema.column(column_name).name] = value
        for spec in aggregates:
            out[spec.alias] = spec.compute_positions(table, positions)
        result.insert(out)
    return result


# ---------------------------------------------------------------------------
# Operator tree (used by the physical plans and by the SQL front end)
# ---------------------------------------------------------------------------
class Operator:
    """Base class for composable relational operators."""

    def execute(self) -> Table:
        """Produce the operator's output table."""
        raise NotImplementedError

    def children(self) -> List["Operator"]:
        """Child operators, if any."""
        return []

    def describe(self) -> str:
        """One-line human-readable description (used in explanations)."""
        raise NotImplementedError

    def explain_tree(self, indent: int = 0) -> str:
        """Multi-line indented rendering of the operator tree."""
        lines = ["  " * indent + self.describe()]
        for child in self.children():
            lines.append(child.explain_tree(indent + 1))
        return "\n".join(lines)


@dataclass
class TableScan(Operator):
    """Leaf: scan an existing table."""

    table: Table

    def execute(self) -> Table:
        return self.table

    def describe(self) -> str:
        return f"Scan({self.table.name}, rows={len(self.table)})"


@dataclass
class Filter(Operator):
    """Selection node."""

    child: Operator
    predicate: Expression

    def execute(self) -> Table:
        return filter_rows(self.child.execute(), self.predicate)

    def children(self) -> List[Operator]:
        return [self.child]

    def describe(self) -> str:
        return f"Filter({self.predicate.describe()})"


@dataclass
class Project(Operator):
    """Projection node."""

    child: Operator
    columns: List[str]

    def execute(self) -> Table:
        return project(self.child.execute(), self.columns)

    def children(self) -> List[Operator]:
        return [self.child]

    def describe(self) -> str:
        return f"Project({', '.join(self.columns)})"


@dataclass
class Extend(Operator):
    """Extended-projection node (adds one computed column)."""

    child: Operator
    column_name: str
    expression: Expression

    def execute(self) -> Table:
        return extend(self.child.execute(), self.column_name, self.expression)

    def children(self) -> List[Operator]:
        return [self.child]

    def describe(self) -> str:
        return f"Extend({self.column_name} := {self.expression.describe()})"


@dataclass
class HashJoin(Operator):
    """Equi-join node."""

    left: Operator
    right: Operator
    left_key: str
    right_key: str
    how: str = "inner"

    def execute(self) -> Table:
        return hash_join(self.left.execute(), self.right.execute(),
                         self.left_key, self.right_key, how=self.how)

    def children(self) -> List[Operator]:
        return [self.left, self.right]

    def describe(self) -> str:
        return f"HashJoin({self.left_key} = {self.right_key}, how={self.how})"


@dataclass
class Aggregate(Operator):
    """GROUP BY node."""

    child: Operator
    group_by: List[str]
    aggregates: List[AggregateSpec]

    def execute(self) -> Table:
        return aggregate(self.child.execute(), self.group_by, self.aggregates)

    def children(self) -> List[Operator]:
        return [self.child]

    def describe(self) -> str:
        aggs = ", ".join(f"{a.function}({a.column or '*'}) AS {a.alias}" for a in self.aggregates)
        by = ", ".join(self.group_by) if self.group_by else "<global>"
        return f"Aggregate(group_by=[{by}], aggs=[{aggs}])"


@dataclass
class Sort(Operator):
    """ORDER BY node."""

    child: Operator
    keys: List[Tuple[str, bool]]

    def execute(self) -> Table:
        return sort(self.child.execute(), self.keys)

    def children(self) -> List[Operator]:
        return [self.child]

    def describe(self) -> str:
        keys = ", ".join(f"{c} {'DESC' if d else 'ASC'}" for c, d in self.keys)
        return f"Sort({keys})"


@dataclass
class Limit(Operator):
    """LIMIT node."""

    child: Operator
    count: int
    offset: int = 0

    def execute(self) -> Table:
        return limit(self.child.execute(), self.count, self.offset)

    def children(self) -> List[Operator]:
        return [self.child]

    def describe(self) -> str:
        return f"Limit({self.count}, offset={self.offset})"


@dataclass
class Distinct(Operator):
    """DISTINCT node."""

    child: Operator
    columns: Optional[List[str]] = None

    def execute(self) -> Table:
        return distinct(self.child.execute(), self.columns)

    def children(self) -> List[Operator]:
        return [self.child]

    def describe(self) -> str:
        cols = ", ".join(self.columns) if self.columns else "*"
        return f"Distinct({cols})"

"""Columnar storage core: shared column vectors with copy-on-write overlays.

``ColumnStore`` keeps one Python list per column.  ``fork()`` is O(columns):
the child shares every vector with the parent and *both* sides drop ownership,
so the first write to a column — on either side — copies just that column.
Untouched columns stay physically shared for the lifetime of the fork, which
is what makes session overlays and ``Table.copy()`` effectively free.

``RowView`` is the compatibility shim that keeps the historical row-dict API
alive on top of the columnar layout: it is a ``MutableMapping`` proxy over one
row index whose writes go through the owning :class:`~repro.relational.table.Table`,
so in-place mutation (``table.rows[0]["col"] = x``) participates in index
staleness tracking instead of bypassing it.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, MutableMapping, Optional, Sequence, Tuple

__all__ = ["ColumnStore", "RowView"]


class ColumnStore:
    """One typed value vector per column, with copy-on-write sharing.

    The store tracks which vectors it *owns*; a vector that is not owned may
    be shared with a forked sibling and must be copied before the first
    mutation (``_own``).  Length is tracked explicitly so zero-column tables
    can still hold rows.
    """

    __slots__ = ("_columns", "_owned", "_length")

    def __init__(self, names: Iterable[str] = ()):  # noqa: D107 - short init
        self._columns: Dict[str, List[Any]] = {name: [] for name in names}
        self._owned = set(self._columns)
        self._length = 0

    # -- introspection ------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    def column_names(self) -> List[str]:
        return list(self._columns)

    def resolve(self, name: str) -> Optional[str]:
        """Resolve ``name`` to the stored column key (case-insensitive fallback)."""
        if name in self._columns:
            return name
        lowered = name.lower()
        for key in self._columns:
            if key.lower() == lowered:
                return key
        return None

    def column(self, name: str) -> List[Any]:
        """The raw vector for ``name``.  Treat as read-only: it may be shared."""
        resolved = self.resolve(name)
        if resolved is None:
            raise KeyError(name)
        return self._columns[resolved]

    def owns(self, name: str) -> bool:
        return name in self._owned

    def shares_column_with(self, other: "ColumnStore", name: str) -> bool:
        """True when both stores reference the *same* vector object (zero-copy)."""
        mine = self.resolve(name)
        theirs = other.resolve(name)
        if mine is None or theirs is None:
            return False
        return self._columns[mine] is other._columns[theirs]

    # -- copy-on-write ------------------------------------------------------------
    def fork(self) -> "ColumnStore":
        """O(columns) fork: share every vector; both sides copy-before-write."""
        child = ColumnStore.__new__(ColumnStore)
        child._columns = dict(self._columns)
        child._length = self._length
        child._owned = set()
        # The parent's next write must also copy: the vectors are now shared.
        self._owned = set()
        return child

    def fork_projection(self, mapping: Sequence[Tuple[str, str]]) -> "ColumnStore":
        """Fork holding only ``(out_name, source_name)`` columns, vectors shared."""
        child = ColumnStore.__new__(ColumnStore)
        child._columns = {}
        for out_name, source_name in mapping:
            resolved = self.resolve(source_name)
            if resolved is None:
                raise KeyError(source_name)
            child._columns[out_name] = self._columns[resolved]
            self._owned.discard(resolved)
        child._owned = set()
        child._length = self._length
        return child

    def _own(self, name: str) -> List[Any]:
        """Copy ``name``'s vector if shared; return the now-private vector."""
        vector = self._columns[name]
        if name not in self._owned:
            vector = list(vector)
            self._columns[name] = vector
            self._owned.add(name)
        return vector

    def _own_all(self) -> None:
        if len(self._owned) == len(self._columns):
            return
        for name in self._columns:
            self._own(name)

    # -- reads --------------------------------------------------------------------
    def get(self, index: int, name: str, default: Any = None) -> Any:
        resolved = self.resolve(name)
        if resolved is None:
            return default
        return self._columns[resolved][index]

    def row_dict(self, index: int) -> Dict[str, Any]:
        return {name: vector[index] for name, vector in self._columns.items()}

    def iter_rows(self) -> Iterator[Dict[str, Any]]:
        names = list(self._columns)
        vectors = [self._columns[name] for name in names]
        for index in range(self._length):
            yield {name: vector[index] for name, vector in zip(names, vectors)}

    # -- writes -------------------------------------------------------------------
    def set_value(self, index: int, name: str, value: Any) -> None:
        """Set one cell, creating the column (``None``-filled) when missing."""
        resolved = self.resolve(name)
        if resolved is None:
            self._columns[name] = [None] * self._length
            self._owned.add(name)
            resolved = name
        self._own(resolved)[index] = value

    def append_row(self, row: Mapping[str, Any]) -> None:
        self._own_all()
        columns = self._columns
        for name, vector in columns.items():
            vector.append(row[name] if name in row else None)
        self._length += 1
        for key in row:
            if key in columns:
                continue
            resolved = self.resolve(key)
            if resolved is not None:
                columns[resolved][-1] = row[key]
            else:
                columns[key] = [None] * (self._length - 1) + [row[key]]
                self._owned.add(key)

    def insert_row(self, index: int, row: Mapping[str, Any]) -> None:
        self._own_all()
        columns = self._columns
        for name, vector in columns.items():
            vector.insert(index, row[name] if name in row else None)
        self._length += 1
        position = index if index >= 0 else max(0, self._length + index - 1)
        position = min(position, self._length - 1)
        for key in row:
            if key in columns:
                continue
            resolved = self.resolve(key)
            if resolved is not None:
                columns[resolved][position] = row[key]
            else:
                fresh: List[Any] = [None] * self._length
                fresh[position] = row[key]
                columns[key] = fresh
                self._owned.add(key)

    def set_row(self, index: int, row: Mapping[str, Any]) -> None:
        """Replace one row wholesale (missing keys become ``None``)."""
        self._own_all()
        columns = self._columns
        for name, vector in columns.items():
            vector[index] = row[name] if name in row else None
        for key in row:
            if key in columns:
                continue
            resolved = self.resolve(key)
            if resolved is not None:
                columns[resolved][index] = row[key]
            else:
                position = index if index >= 0 else self._length + index
                fresh = [None] * self._length
                fresh[position] = row[key]
                columns[key] = fresh
                self._owned.add(key)

    def delete_rows(self, index: Any) -> None:
        """Delete by int index or slice, mirroring ``list.__delitem__``."""
        self._own_all()
        for vector in self._columns.values():
            del vector[index]
        self._length = (len(next(iter(self._columns.values())))
                        if self._columns else self._deleted_length(index))

    def _deleted_length(self, index: Any) -> int:
        # Zero-column stores: emulate list deletion on a phantom list.
        phantom = [None] * self._length
        del phantom[index]
        return len(phantom)

    def keep_positions(self, positions: Sequence[int]) -> None:
        """Compress in place to only ``positions`` (ascending)."""
        columns = self._columns
        self._columns = {name: [vector[p] for p in positions]
                         for name, vector in columns.items()}
        self._owned = set(self._columns)
        self._length = len(positions)

    def clear(self) -> None:
        self._columns = {name: [] for name in self._columns}
        self._owned = set(self._columns)
        self._length = 0

    def add_column(self, name: str, values: Optional[Sequence[Any]] = None,
                   fill: Any = None) -> None:
        if values is not None:
            if len(values) != self._length:
                raise ValueError(
                    f"column {name!r} has {len(values)} values for {self._length} rows")
            self._columns[name] = list(values)
        else:
            self._columns[name] = [fill] * self._length
        self._owned.add(name)

    def set_column(self, name: str, values: Sequence[Any]) -> None:
        """Replace (or create) one column's vector wholesale."""
        if len(values) != self._length:
            raise ValueError(
                f"column {name!r} has {len(values)} values for {self._length} rows")
        resolved = self.resolve(name) or name
        self._columns[resolved] = list(values)
        self._owned.add(resolved)

    def drop_column(self, name: str) -> None:
        resolved = self.resolve(name)
        if resolved is not None:
            del self._columns[resolved]
            self._owned.discard(resolved)

    # -- bulk layout transforms -----------------------------------------------------
    def gather(self, positions: Sequence[int]) -> "ColumnStore":
        """New store with rows at ``positions`` (copied vectors, fully owned)."""
        child = ColumnStore.__new__(ColumnStore)
        child._columns = {name: [vector[p] for p in positions]
                          for name, vector in self._columns.items()}
        child._owned = set(child._columns)
        child._length = len(positions)
        return child

    def slice(self, start: int, stop: int) -> "ColumnStore":
        child = ColumnStore.__new__(ColumnStore)
        child._columns = {name: vector[start:stop]
                          for name, vector in self._columns.items()}
        child._owned = set(child._columns)
        # Method bodies do not see class scope, so ``slice`` here is the builtin.
        child._length = len(range(*slice(start, stop).indices(self._length)))
        return child

    def apply_permutation(self, order: Sequence[int]) -> None:
        """Reorder rows in place so new row ``i`` is old row ``order[i]``."""
        self._columns = {name: [vector[p] for p in order]
                         for name, vector in self._columns.items()}
        self._owned = set(self._columns)

    def reverse(self) -> None:
        self._own_all()
        for vector in self._columns.values():
            vector.reverse()

    def replace_all(self, columns: Dict[str, List[Any]], length: int) -> None:
        """Swap in a freshly built column mapping (ownership transfers)."""
        self._columns = columns
        self._owned = set(columns)
        self._length = length


class RowView(MutableMapping):
    """A mutable-mapping proxy over one row of a columnar table.

    Reads come straight from the column vectors; writes go through the owning
    table so copy-on-write and ``non_append_version`` tracking both fire.
    Compares equal to the plain dict with the same items.
    """

    __slots__ = ("_table", "_index")

    def __init__(self, table: Any, index: int):  # noqa: D107 - trivial
        self._table = table
        self._index = index

    # -- mapping protocol ----------------------------------------------------------
    def __getitem__(self, key: str) -> Any:
        store = self._table._store
        resolved = store.resolve(key)
        if resolved is None:
            raise KeyError(key)
        return store._columns[resolved][self._index]

    def get(self, key: str, default: Any = None) -> Any:
        store = self._table._store
        resolved = store.resolve(key)
        if resolved is None:
            return default
        return store._columns[resolved][self._index]

    def __setitem__(self, key: str, value: Any) -> None:
        self._table._set_cell(self._index, key, value)

    def __delitem__(self, key: str) -> None:
        raise TypeError("cannot delete columns through a row view; "
                        "use Schema/Table column operations instead")

    def __iter__(self) -> Iterator[str]:
        return iter(self._table._store.column_names())

    def __len__(self) -> int:
        return len(self._table._store._columns)

    def __contains__(self, key: object) -> bool:
        return isinstance(key, str) and self._table._store.resolve(key) is not None

    # -- conversions / equality ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return self._table._store.row_dict(self._index)

    def copy(self) -> Dict[str, Any]:
        return self.to_dict()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RowView):
            if other._table is self._table and other._index == self._index:
                return True
            other = other.to_dict()
        if isinstance(other, Mapping):
            return self.to_dict() == dict(other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = None  # type: ignore[assignment] - mutable, like dict

    def __repr__(self) -> str:
        return f"RowView({self.to_dict()!r})"

"""Schemas and columns for relational tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Sequence, Union

from repro.errors import SchemaError, UnknownColumnError
from repro.relational.types import DataType, coerce_value


@dataclass(frozen=True)
class Column:
    """A single typed column.

    Attributes
    ----------
    name:
        Column name (case-sensitive, but lookups are case-insensitive).
    data_type:
        The column's :class:`DataType`.
    nullable:
        Whether NULL values are allowed.
    description:
        Optional human-readable description; surfaced to the plan verifier and
        the coder agent as catalog context.
    """

    name: str
    data_type: DataType
    nullable: bool = True
    description: str = ""

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"invalid column name: {self.name!r}")
        if not isinstance(self.data_type, DataType):
            object.__setattr__(self, "data_type", DataType.from_string(str(self.data_type)))

    def validate(self, value: Any) -> Any:
        """Coerce and validate a value for this column."""
        if value is None:
            if not self.nullable:
                raise SchemaError(f"column {self.name!r} is not nullable")
            return None
        return coerce_value(value, self.data_type)

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a plain dict (for the catalog and on-disk storage)."""
        return {
            "name": self.name,
            "data_type": self.data_type.value,
            "nullable": self.nullable,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Column":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=payload["name"],
            data_type=DataType.from_string(payload["data_type"]),
            nullable=payload.get("nullable", True),
            description=payload.get("description", ""),
        )


@dataclass
class Schema:
    """An ordered collection of columns."""

    columns: List[Column] = field(default_factory=list)

    def __post_init__(self):
        names = [c.name.lower() for c in self.columns]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SchemaError(f"duplicate column names: {sorted(duplicates)}")

    # -- construction helpers ------------------------------------------------
    @classmethod
    def of(cls, *specs: Union[Column, Sequence]) -> "Schema":
        """Build a schema from ``Column`` objects or ``(name, type)`` pairs.

        >>> Schema.of(("title", "text"), ("year", "integer")).column_names()
        ['title', 'year']
        """
        columns: List[Column] = []
        for spec in specs:
            if isinstance(spec, Column):
                columns.append(spec)
            else:
                name, type_name = spec[0], spec[1]
                nullable = spec[2] if len(spec) > 2 else True
                columns.append(
                    Column(name=name, data_type=DataType.from_string(str(type_name)), nullable=nullable)
                )
        return cls(columns)

    @classmethod
    def infer(cls, rows: Iterable[Dict[str, Any]]) -> "Schema":
        """Infer a schema from sample row dicts.

        The first non-NULL value seen for a column determines its type; columns
        never seen with a value default to TEXT.
        """
        order: List[str] = []
        types: Dict[str, DataType] = {}
        for row in rows:
            for key, value in row.items():
                if key not in types:
                    order.append(key)
                    types[key] = None
                if types[key] is None and value is not None:
                    types[key] = DataType.infer(value)
        columns = [Column(name, types[name] or DataType.TEXT) for name in order]
        return cls(columns)

    # -- lookups --------------------------------------------------------------
    def column_names(self) -> List[str]:
        """Names of all columns, in order."""
        return [c.name for c in self.columns]

    def has_column(self, name: str) -> bool:
        """Case-insensitive membership test."""
        lowered = name.lower()
        return any(c.name.lower() == lowered for c in self.columns)

    def column(self, name: str) -> Column:
        """Look up a column by (case-insensitive) name."""
        lowered = name.lower()
        for col in self.columns:
            if col.name.lower() == lowered:
                return col
        raise UnknownColumnError(f"unknown column: {name!r} (have {self.column_names()})")

    def index_of(self, name: str) -> int:
        """Positional index of a column."""
        lowered = name.lower()
        for i, col in enumerate(self.columns):
            if col.name.lower() == lowered:
                return i
        raise UnknownColumnError(f"unknown column: {name!r}")

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.has_column(name)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return [(c.name, c.data_type) for c in self.columns] == [
            (c.name, c.data_type) for c in other.columns
        ]

    # -- transformations ------------------------------------------------------
    def project(self, names: Sequence[str]) -> "Schema":
        """Schema restricted (and reordered) to ``names``."""
        return Schema([self.column(n) for n in names])

    def rename(self, mapping: Dict[str, str]) -> "Schema":
        """Schema with columns renamed according to ``mapping``."""
        lowered = {k.lower(): v for k, v in mapping.items()}
        columns = []
        for col in self.columns:
            new_name = lowered.get(col.name.lower(), col.name)
            columns.append(Column(new_name, col.data_type, col.nullable, col.description))
        return Schema(columns)

    def add(self, column: Column) -> "Schema":
        """Schema with one extra column appended."""
        return Schema(self.columns + [column])

    def drop(self, names: Sequence[str]) -> "Schema":
        """Schema without the given columns."""
        drop = {n.lower() for n in names}
        return Schema([c for c in self.columns if c.name.lower() not in drop])

    def merge(self, other: "Schema", *, prefix_left: str = "", prefix_right: str = "") -> "Schema":
        """Concatenate two schemas (used by joins).

        Colliding names are disambiguated with the provided prefixes; if no
        prefix is given the right column gets a ``_right`` suffix.
        """
        columns: List[Column] = []
        left_names = set()
        for col in self.columns:
            name = f"{prefix_left}{col.name}" if prefix_left else col.name
            left_names.add(name.lower())
            columns.append(Column(name, col.data_type, col.nullable, col.description))
        for col in other.columns:
            name = f"{prefix_right}{col.name}" if prefix_right else col.name
            if name.lower() in left_names:
                name = f"{name}_right" if not prefix_right else name
            while name.lower() in {c.name.lower() for c in columns}:
                name = name + "_"
            columns.append(Column(name, col.data_type, col.nullable, col.description))
        return Schema(columns)

    # -- validation / serialization -------------------------------------------
    def validate_row(self, row: Dict[str, Any], *, fill_missing: bool = True) -> Dict[str, Any]:
        """Validate (and coerce) one row against this schema.

        Unknown keys raise :class:`SchemaError`; missing keys become NULL when
        ``fill_missing`` is set, otherwise they raise.
        """
        known = {c.name.lower(): c for c in self.columns}
        cleaned: Dict[str, Any] = {}
        for key, value in row.items():
            col = known.get(key.lower())
            if col is None:
                raise SchemaError(f"row has unknown column {key!r} (schema: {self.column_names()})")
            cleaned[col.name] = col.validate(value)
        for col in self.columns:
            if col.name not in cleaned:
                if not fill_missing and not col.nullable:
                    raise SchemaError(f"row is missing non-nullable column {col.name!r}")
                cleaned.setdefault(col.name, col.validate(None) if col.nullable else None)
        return cleaned

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a plain dict."""
        return {"columns": [c.to_dict() for c in self.columns]}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Schema":
        """Inverse of :meth:`to_dict`."""
        return cls([Column.from_dict(c) for c in payload.get("columns", [])])

    def describe(self) -> str:
        """Human-readable one-line-per-column description (catalog context)."""
        lines = []
        for col in self.columns:
            null = "NULL" if col.nullable else "NOT NULL"
            desc = f" -- {col.description}" if col.description else ""
            lines.append(f"{col.name} {col.data_type.value.upper()} {null}{desc}")
        return "\n".join(lines)

"""Scalar expression AST evaluated over row dictionaries.

The mini-SQL front end and the relational operators both use this AST.  It is
deliberately small: column references, literals, comparison/boolean/arithmetic
operators, NULL tests, LIKE / IN, and a handful of scalar functions.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from repro.errors import ExpressionError
from repro.relational.types import compare_values

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.relational.table import Table


class Expression:
    """Base class for all scalar expressions."""

    def evaluate(self, row: Dict[str, Any]) -> Any:
        """Evaluate against one row dict."""
        raise NotImplementedError

    def evaluate_column(self, table: "Table") -> List[Any]:
        """Evaluate against every row of a columnar table, returning a vector.

        Subclasses override this to work column-at-a-time over the table's
        shared vectors; the base implementation falls back to row-at-a-time
        evaluation (row proxies), which is always semantically safe.  The
        returned list may be a live column vector — treat it as read-only.
        """
        return [self.evaluate(row) for row in table.rows]

    def is_pure(self) -> bool:
        """True when evaluation is side-effect free and order-independent.

        Only pure expressions are safe to vectorize through short-circuiting
        operators (``AND``/``OR``): the row-at-a-time evaluator skips the
        right operand when the left decides, while the columnar evaluator
        computes both sides for every row.  Unknown expression types are
        conservatively impure.
        """
        return False

    def referenced_columns(self) -> List[str]:
        """All column names referenced anywhere inside this expression."""
        return []

    def describe(self) -> str:
        """A SQL-ish rendering used in plan explanations."""
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.describe()


@dataclass
class Literal(Expression):
    """A constant value."""

    value: Any

    def evaluate(self, row: Dict[str, Any]) -> Any:
        return self.value

    def evaluate_column(self, table: "Table") -> List[Any]:
        return [self.value] * len(table)

    def is_pure(self) -> bool:
        return True

    def describe(self) -> str:
        if isinstance(self.value, str):
            return "'" + self.value.replace("'", "''") + "'"
        return repr(self.value)


@dataclass
class ColumnRef(Expression):
    """A reference to a column by name (case-insensitive lookup)."""

    name: str

    def evaluate(self, row: Dict[str, Any]) -> Any:
        if self.name in row:
            return row[self.name]
        lowered = self.name.lower()
        for key, value in row.items():
            if key.lower() == lowered:
                return value
        raise ExpressionError(f"row has no column {self.name!r} (keys: {sorted(row)})")

    def evaluate_column(self, table: "Table") -> List[Any]:
        store = table._store
        resolved = store.resolve(self.name)
        if resolved is None:
            raise ExpressionError(
                f"row has no column {self.name!r} (keys: {sorted(store.column_names())})")
        return store.column(resolved)

    def is_pure(self) -> bool:
        return True

    def referenced_columns(self) -> List[str]:
        return [self.name]

    def describe(self) -> str:
        return self.name


_COMPARISONS: Dict[str, Callable[[Optional[int]], bool]] = {
    "=": lambda c: c == 0,
    "==": lambda c: c == 0,
    "!=": lambda c: c is not None and c != 0,
    "<>": lambda c: c is not None and c != 0,
    "<": lambda c: c == -1,
    "<=": lambda c: c in (-1, 0),
    ">": lambda c: c == 1,
    ">=": lambda c: c in (0, 1),
}

_ARITHMETIC: Dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b if b not in (0, 0.0) else None,
    "%": lambda a, b: a % b if b not in (0, 0.0) else None,
}


@dataclass
class BinaryOp(Expression):
    """Binary comparison, arithmetic, or boolean operator."""

    op: str
    left: Expression
    right: Expression

    def evaluate(self, row: Dict[str, Any]) -> Any:
        op = self.op.upper() if self.op.isalpha() else self.op
        if op in ("AND", "OR"):
            left = bool(self.left.evaluate(row))
            if op == "AND":
                return left and bool(self.right.evaluate(row))
            return left or bool(self.right.evaluate(row))
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if self.op in _COMPARISONS:
            if left is None or right is None:
                return False
            comparison = compare_values(left, right)
            if comparison is None:
                comparison = compare_values(str(left), str(right))
            return _COMPARISONS[self.op](comparison)
        if self.op in _ARITHMETIC:
            if left is None or right is None:
                return None
            try:
                return _ARITHMETIC[self.op](left, right)
            except TypeError as error:
                raise ExpressionError(
                    f"cannot apply {self.op!r} to {type(left).__name__} and {type(right).__name__}"
                ) from error
        raise ExpressionError(f"unknown binary operator: {self.op!r}")

    def evaluate_column(self, table: "Table") -> List[Any]:
        op = self.op.upper() if self.op.isalpha() else self.op
        if op in ("AND", "OR"):
            # Vectorizing evaluates both sides for every row; only safe when
            # neither side can have effects the row path would short-circuit.
            if not self.is_pure():
                return super().evaluate_column(table)
            left = self.left.evaluate_column(table)
            right = self.right.evaluate_column(table)
            if op == "AND":
                return [bool(a) and bool(b) for a, b in zip(left, right)]
            return [bool(a) or bool(b) for a, b in zip(left, right)]
        left = self.left.evaluate_column(table)
        right = self.right.evaluate_column(table)
        if self.op in _COMPARISONS:
            check = _COMPARISONS[self.op]
            out: List[Any] = []
            for a, b in zip(left, right):
                if a is None or b is None:
                    out.append(False)
                    continue
                comparison = compare_values(a, b)
                if comparison is None:
                    comparison = compare_values(str(a), str(b))
                out.append(check(comparison))
            return out
        if self.op in _ARITHMETIC:
            fn = _ARITHMETIC[self.op]
            out = []
            for a, b in zip(left, right):
                if a is None or b is None:
                    out.append(None)
                    continue
                try:
                    out.append(fn(a, b))
                except TypeError as error:
                    raise ExpressionError(
                        f"cannot apply {self.op!r} to {type(a).__name__} "
                        f"and {type(b).__name__}") from error
            return out
        raise ExpressionError(f"unknown binary operator: {self.op!r}")

    def is_pure(self) -> bool:
        return self.left.is_pure() and self.right.is_pure()

    def referenced_columns(self) -> List[str]:
        return self.left.referenced_columns() + self.right.referenced_columns()

    def describe(self) -> str:
        return f"({self.left.describe()} {self.op} {self.right.describe()})"


@dataclass
class UnaryOp(Expression):
    """NOT and unary minus."""

    op: str
    operand: Expression

    def evaluate(self, row: Dict[str, Any]) -> Any:
        value = self.operand.evaluate(row)
        op = self.op.upper()
        if op == "NOT":
            return not bool(value)
        if self.op == "-":
            return -value if value is not None else None
        raise ExpressionError(f"unknown unary operator: {self.op!r}")

    def evaluate_column(self, table: "Table") -> List[Any]:
        values = self.operand.evaluate_column(table)
        op = self.op.upper()
        if op == "NOT":
            return [not bool(v) for v in values]
        if self.op == "-":
            return [-v if v is not None else None for v in values]
        raise ExpressionError(f"unknown unary operator: {self.op!r}")

    def is_pure(self) -> bool:
        return self.operand.is_pure()

    def referenced_columns(self) -> List[str]:
        return self.operand.referenced_columns()

    def describe(self) -> str:
        return f"({self.op} {self.operand.describe()})"


@dataclass
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def evaluate(self, row: Dict[str, Any]) -> bool:
        value = self.operand.evaluate(row)
        return (value is not None) if self.negated else (value is None)

    def evaluate_column(self, table: "Table") -> List[Any]:
        values = self.operand.evaluate_column(table)
        if self.negated:
            return [v is not None for v in values]
        return [v is None for v in values]

    def is_pure(self) -> bool:
        return self.operand.is_pure()

    def referenced_columns(self) -> List[str]:
        return self.operand.referenced_columns()

    def describe(self) -> str:
        return f"({self.operand.describe()} IS {'NOT ' if self.negated else ''}NULL)"


@dataclass
class Like(Expression):
    """SQL LIKE with ``%`` and ``_`` wildcards (case-insensitive)."""

    operand: Expression
    pattern: str
    negated: bool = False

    def _regex(self) -> "re.Pattern":
        parts = []
        for char in self.pattern:
            if char == "%":
                parts.append(".*")
            elif char == "_":
                parts.append(".")
            else:
                parts.append(re.escape(char))
        return re.compile("^" + "".join(parts) + "$", re.IGNORECASE)

    def evaluate(self, row: Dict[str, Any]) -> bool:
        value = self.operand.evaluate(row)
        if value is None:
            return False
        matched = bool(self._regex().match(str(value)))
        return (not matched) if self.negated else matched

    def evaluate_column(self, table: "Table") -> List[Any]:
        # The row path compiles the pattern per row; here it compiles once.
        regex = self._regex()
        values = self.operand.evaluate_column(table)
        out: List[Any] = []
        for value in values:
            if value is None:
                out.append(False)
                continue
            matched = bool(regex.match(str(value)))
            out.append((not matched) if self.negated else matched)
        return out

    def is_pure(self) -> bool:
        return self.operand.is_pure()

    def referenced_columns(self) -> List[str]:
        return self.operand.referenced_columns()

    def describe(self) -> str:
        return f"({self.operand.describe()} {'NOT ' if self.negated else ''}LIKE '{self.pattern}')"


@dataclass
class InList(Expression):
    """``expr IN (v1, v2, ...)``."""

    operand: Expression
    options: List[Expression]
    negated: bool = False

    def evaluate(self, row: Dict[str, Any]) -> bool:
        value = self.operand.evaluate(row)
        members = [opt.evaluate(row) for opt in self.options]
        found = any(compare_values(value, m) == 0 for m in members)
        return (not found) if self.negated else found

    def evaluate_column(self, table: "Table") -> List[Any]:
        values = self.operand.evaluate_column(table)
        member_vectors = [opt.evaluate_column(table) for opt in self.options]
        out: List[Any] = []
        for i, value in enumerate(values):
            found = any(compare_values(value, vec[i]) == 0 for vec in member_vectors)
            out.append((not found) if self.negated else found)
        return out

    def is_pure(self) -> bool:
        return self.operand.is_pure() and all(opt.is_pure() for opt in self.options)

    def referenced_columns(self) -> List[str]:
        cols = self.operand.referenced_columns()
        for opt in self.options:
            cols.extend(opt.referenced_columns())
        return cols

    def describe(self) -> str:
        inner = ", ".join(o.describe() for o in self.options)
        return f"({self.operand.describe()} {'NOT ' if self.negated else ''}IN ({inner}))"


def _fn_coalesce(*args: Any) -> Any:
    for arg in args:
        if arg is not None:
            return arg
    return None


_SCALAR_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "abs": lambda x: abs(x) if x is not None else None,
    "round": lambda x, digits=0: round(x, int(digits)) if x is not None else None,
    "floor": lambda x: math.floor(x) if x is not None else None,
    "ceil": lambda x: math.ceil(x) if x is not None else None,
    "sqrt": lambda x: math.sqrt(x) if x is not None and x >= 0 else None,
    "length": lambda x: len(x) if x is not None else None,
    "lower": lambda x: str(x).lower() if x is not None else None,
    "upper": lambda x: str(x).upper() if x is not None else None,
    "trim": lambda x: str(x).strip() if x is not None else None,
    "concat": lambda *xs: "".join(str(x) for x in xs if x is not None),
    "coalesce": _fn_coalesce,
    "min2": lambda a, b: min(a, b) if a is not None and b is not None else None,
    "max2": lambda a, b: max(a, b) if a is not None and b is not None else None,
}


@dataclass
class FunctionCall(Expression):
    """A scalar function call (``round(score, 2)``)."""

    name: str
    args: List[Expression] = field(default_factory=list)

    def evaluate(self, row: Dict[str, Any]) -> Any:
        fn = _SCALAR_FUNCTIONS.get(self.name.lower())
        if fn is None:
            raise ExpressionError(f"unknown scalar function: {self.name!r}")
        values = [arg.evaluate(row) for arg in self.args]
        try:
            return fn(*values)
        except (TypeError, ValueError) as error:
            raise ExpressionError(f"error evaluating {self.name}(...): {error}") from error

    def evaluate_column(self, table: "Table") -> List[Any]:
        fn = _SCALAR_FUNCTIONS.get(self.name.lower())
        if fn is None:
            raise ExpressionError(f"unknown scalar function: {self.name!r}")
        arg_vectors = [arg.evaluate_column(table) for arg in self.args]
        out: List[Any] = []
        for values in zip(*arg_vectors) if arg_vectors else ((),) * len(table):
            try:
                out.append(fn(*values))
            except (TypeError, ValueError) as error:
                raise ExpressionError(
                    f"error evaluating {self.name}(...): {error}") from error
        return out

    def is_pure(self) -> bool:
        # The built-in scalar functions are all pure; purity rides on args.
        return all(arg.is_pure() for arg in self.args)

    def referenced_columns(self) -> List[str]:
        cols: List[str] = []
        for arg in self.args:
            cols.extend(arg.referenced_columns())
        return cols

    def describe(self) -> str:
        return f"{self.name}({', '.join(a.describe() for a in self.args)})"


@dataclass
class Lambda(Expression):
    """Wrap an arbitrary Python callable as an expression.

    Generated FAO functions often need computations (vector similarity,
    model calls) that the SQL expression language does not cover; they use
    ``Lambda`` so that the result still flows through the same operator tree.
    """

    fn: Callable[[Dict[str, Any]], Any]
    label: str = "python_lambda"
    columns: List[str] = field(default_factory=list)

    def evaluate(self, row: Dict[str, Any]) -> Any:
        return self.fn(row)

    def referenced_columns(self) -> List[str]:
        return list(self.columns)

    def describe(self) -> str:
        return f"<{self.label}>"


# ---------------------------------------------------------------------------
# Convenience constructors used heavily by generated code and tests.
# ---------------------------------------------------------------------------
def col(name: str) -> ColumnRef:
    """Shorthand for :class:`ColumnRef`."""
    return ColumnRef(name)


def lit(value: Any) -> Literal:
    """Shorthand for :class:`Literal`."""
    return Literal(value)


def eq(left: Expression, right: Expression) -> BinaryOp:
    """``left = right``."""
    return BinaryOp("=", left, right)


def and_(*terms: Expression) -> Expression:
    """Conjunction of one or more terms."""
    if not terms:
        return Literal(True)
    result = terms[0]
    for term in terms[1:]:
        result = BinaryOp("AND", result, term)
    return result


def or_(*terms: Expression) -> Expression:
    """Disjunction of one or more terms."""
    if not terms:
        return Literal(False)
    result = terms[0]
    for term in terms[1:]:
        result = BinaryOp("OR", result, term)
    return result

"""Row-oriented in-memory tables."""

from __future__ import annotations

from collections.abc import MutableSequence
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.errors import SchemaError, UnknownColumnError
from repro.relational.schema import Column, Schema
from repro.relational.types import DataType, compare_values


class TrackedRows(MutableSequence):
    """A mutation-tracking view over a table's row list.

    ``Table.rows`` hands this out instead of the raw list so that *external*
    structural mutation cannot silently bypass index staleness tracking:
    appends (``append``/``extend``/``+=``) keep the append-only contract
    secondary indexes rely on (they index the suffix), while in-place
    replacement, deletion, insertion, and reordering bump the table's
    ``non_append_version`` exactly as the validated mutation API does — so a
    :class:`~repro.relational.indexes.HashIndex` rebuilds instead of serving
    stale positions.  Row *values* still bypass schema validation, as the
    raw-list escape hatch always has.
    """

    __slots__ = ("_table",)

    def __init__(self, table: "Table"):
        self._table = table

    # -- read access (no tracking needed) ---------------------------------------
    def __len__(self) -> int:
        return len(self._table._rows)

    def __getitem__(self, index):
        return self._table._rows[index]

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self._table._rows)

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, TrackedRows):
            return self._table._rows == other._table._rows
        return self._table._rows == other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return repr(self._table._rows)

    # -- append-like mutation (suffix-indexable, no version bump) ---------------
    def append(self, row: Dict[str, Any]) -> None:
        self._table._rows.append(row)

    def extend(self, rows: Iterable[Dict[str, Any]]) -> None:
        self._table._rows.extend(rows)

    # -- non-append mutation (bumps the staleness counter) ----------------------
    def __setitem__(self, index, value) -> None:
        self._table._rows[index] = value
        self._table._non_append_version += 1

    def __delitem__(self, index) -> None:
        del self._table._rows[index]
        self._table._non_append_version += 1

    def insert(self, index: int, value: Dict[str, Any]) -> None:
        self._table._rows.insert(index, value)
        self._table._non_append_version += 1

    def clear(self) -> None:
        self._table._rows.clear()
        self._table._non_append_version += 1

    def sort(self, **kwargs) -> None:
        self._table._rows.sort(**kwargs)
        self._table._non_append_version += 1

    def reverse(self) -> None:
        self._table._rows.reverse()
        self._table._non_append_version += 1


class Table:
    """A named, typed, row-oriented table.

    Rows are stored as plain dictionaries keyed by column name.  The table
    validates rows against its schema on insert and offers a handful of
    dataframe-style conveniences (``head``, ``order_by``, ``where``) used by
    the FAO implementation library.
    """

    def __init__(self, name: str, schema: Schema, rows: Optional[Iterable[Dict[str, Any]]] = None,
                 description: str = ""):
        if not name:
            raise SchemaError("table name must be non-empty")
        self.name = name
        self.schema = schema
        self.description = description
        self._rows: List[Dict[str, Any]] = []
        # One reusable rows view (it holds no state beyond the table
        # reference); per-row operator loops access ``.rows`` hotly.
        self._rows_view = TrackedRows(self)
        # Bumped by every mutation that is *not* a pure append (delete,
        # update, truncate, add_column): secondary indexes use it to tell
        # "new rows were appended" (index the suffix) from "existing rows
        # changed" (rebuild).  Direct ``rows`` mutation bypasses it, exactly
        # as it bypasses validation.
        self._non_append_version = 0
        # Column names whose values were lost in a serialization round-trip
        # (BLOBs come back as NULL); set by :meth:`from_dict`.
        self.lossy_columns: List[str] = []
        if rows:
            self.insert_many(rows)

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_rows(cls, name: str, rows: Sequence[Dict[str, Any]], schema: Optional[Schema] = None,
                  description: str = "") -> "Table":
        """Build a table from row dicts, inferring the schema when not given."""
        rows = list(rows)
        if schema is None:
            if not rows:
                raise SchemaError(f"cannot infer schema for empty table {name!r}")
            schema = Schema.infer(rows)
        return cls(name, schema, rows, description=description)

    def empty_like(self, name: Optional[str] = None) -> "Table":
        """A new empty table with the same schema."""
        return Table(name or self.name, Schema(list(self.schema.columns)), description=self.description)

    def copy(self, name: Optional[str] = None) -> "Table":
        """Deep copy (rows are copied; blob payloads are shared)."""
        clone = self.empty_like(name)
        clone._rows = [dict(row) for row in self._rows]
        return clone

    # -- basic protocol ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> Dict[str, Any]:
        return self._rows[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, columns={self.schema.column_names()}, rows={len(self)})"

    @property
    def rows(self) -> "TrackedRows":
        """A mutation-tracking view of the underlying rows.

        Reading (iteration, indexing, slicing) behaves exactly like the raw
        list.  Structural mutation through the view bypasses validation (as
        the raw list always did) but no longer bypasses index staleness
        tracking: non-append operations bump ``non_append_version`` so
        secondary indexes rebuild (see :class:`TrackedRows`).
        """
        return self._rows_view

    @rows.setter
    def rows(self, value: Iterable[Dict[str, Any]]) -> None:
        """Replace the row list wholesale (a non-append mutation)."""
        self._rows = list(value)
        self._non_append_version += 1

    @property
    def non_append_version(self) -> int:
        """Counter of non-append mutations (see ``__init__``)."""
        return self._non_append_version

    def column_names(self) -> List[str]:
        """Column names, in schema order."""
        return self.schema.column_names()

    # -- mutation ---------------------------------------------------------------
    def insert(self, row: Dict[str, Any]) -> Dict[str, Any]:
        """Validate and append one row; returns the stored (coerced) row."""
        cleaned = self.schema.validate_row(row)
        self._rows.append(cleaned)
        return cleaned

    def insert_many(self, rows: Iterable[Dict[str, Any]]) -> int:
        """Insert many rows; returns the number inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def delete_where(self, predicate: Callable[[Dict[str, Any]], bool]) -> int:
        """Delete rows matching ``predicate``; returns how many were removed."""
        before = len(self._rows)
        self._rows = [row for row in self._rows if not predicate(row)]
        removed = before - len(self._rows)
        if removed:
            self._non_append_version += 1
        return removed

    def update_where(self, predicate: Callable[[Dict[str, Any]], bool],
                     updates: Dict[str, Any]) -> int:
        """Apply ``updates`` to rows matching ``predicate``; returns the count."""
        for key in updates:
            if not self.schema.has_column(key):
                raise UnknownColumnError(f"unknown column in update: {key!r}")
        # Validate every value up front (validation is row-independent): a
        # bad value must raise before any row is touched, not mid-loop with
        # half the rows mutated.
        validated = {}
        for key, value in updates.items():
            col = self.schema.column(key)
            validated[col.name] = col.validate(value)
        count = 0
        try:
            for row in self._rows:
                if predicate(row):
                    row.update(validated)
                    count += 1
        finally:
            # A predicate that raises mid-scan has already mutated earlier
            # rows; indexes must still see the change.
            if count:
                self._non_append_version += 1
        return count

    def add_column(self, column: Column, default: Any = None,
                   compute: Optional[Callable[[Dict[str, Any]], Any]] = None) -> None:
        """Add a column, filling it with ``default`` or ``compute(row)``."""
        if self.schema.has_column(column.name):
            raise SchemaError(f"column {column.name!r} already exists on {self.name!r}")
        self.schema = self.schema.add(column)
        for row in self._rows:
            value = compute(row) if compute is not None else default
            row[column.name] = column.validate(value)
        self._non_append_version += 1

    def truncate(self) -> None:
        """Remove all rows."""
        self._rows = []
        self._non_append_version += 1

    # -- dataframe-style helpers --------------------------------------------------
    def head(self, n: int = 5) -> List[Dict[str, Any]]:
        """The first ``n`` rows (copies, safe to hand to agents as samples)."""
        return [dict(row) for row in self._rows[:n]]

    def column_values(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        col = self.schema.column(name)
        return [row.get(col.name) for row in self._rows]

    def distinct_values(self, name: str) -> List[Any]:
        """Distinct values of one column, preserving first-seen order."""
        seen = set()
        out: List[Any] = []
        for value in self.column_values(name):
            key = repr(value)
            if key not in seen:
                seen.add(key)
                out.append(value)
        return out

    def where(self, predicate: Callable[[Dict[str, Any]], bool], name: Optional[str] = None) -> "Table":
        """A new table holding rows matching ``predicate``."""
        result = self.empty_like(name or f"{self.name}_filtered")
        result._rows = [dict(row) for row in self._rows if predicate(row)]
        return result

    def order_by(self, column: str, descending: bool = False, name: Optional[str] = None) -> "Table":
        """A new table sorted by one column (NULLs first ascending)."""
        self.schema.column(column)
        import functools

        def cmp(a: Dict[str, Any], b: Dict[str, Any]) -> int:
            result = compare_values(a.get(column), b.get(column))
            if result is None:
                result = compare_values(repr(a.get(column)), repr(b.get(column))) or 0
            return result

        ordered = sorted(self._rows, key=functools.cmp_to_key(cmp), reverse=descending)
        result = self.empty_like(name or f"{self.name}_sorted")
        result._rows = [dict(row) for row in ordered]
        return result

    def select_columns(self, names: Sequence[str], name: Optional[str] = None) -> "Table":
        """A new table with only the given columns."""
        schema = self.schema.project(names)
        result = Table(name or f"{self.name}_projected", schema)
        for row in self._rows:
            result.insert({col: row.get(self.schema.column(col).name) for col in names})
        return result

    # -- statistics ---------------------------------------------------------------
    def null_fraction(self, column: str) -> float:
        """Fraction of rows whose value for ``column`` is NULL."""
        values = self.column_values(column)
        if not values:
            return 0.0
        return sum(1 for v in values if v is None) / len(values)

    def cardinality(self, column: str) -> int:
        """Number of distinct values in ``column``."""
        return len(self.distinct_values(column))

    # -- serialization --------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Serialize schema and rows (BLOB columns are replaced by a marker)."""
        rows = []
        for row in self._rows:
            encoded = {}
            for col in self.schema.columns:
                value = row.get(col.name)
                if col.data_type is DataType.BLOB and value is not None:
                    encoded[col.name] = {"__blob__": True, "repr": f"<blob:{type(value).__name__}>"}
                else:
                    encoded[col.name] = value
            rows.append(encoded)
        return {
            "name": self.name,
            "description": self.description,
            "schema": self.schema.to_dict(),
            "rows": rows,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Table":
        """Inverse of :meth:`to_dict` (blob markers become None).

        The restore is *lossy* for BLOB columns: their payloads were replaced
        by markers at save time and come back as NULL.  Affected column names
        are recorded on ``table.lossy_columns`` so callers can detect the
        loss instead of silently reading NULLs
        (:meth:`~repro.relational.storage.TableStorage.load` also emits a
        :class:`~repro.relational.storage.LossyBlobWarning`).
        """
        schema = Schema.from_dict(payload["schema"])
        table = cls(payload["name"], schema, description=payload.get("description", ""))
        lossy = set()
        for row in payload.get("rows", []):
            cleaned = {}
            for key, value in row.items():
                if isinstance(value, dict) and value.get("__blob__"):
                    cleaned[key] = None
                    lossy.add(key)
                else:
                    cleaned[key] = value
            table.insert(cleaned)
        table.lossy_columns = sorted(lossy)
        return table

    def pretty(self, limit: int = 10) -> str:
        """A fixed-width text rendering of the first ``limit`` rows."""
        names = self.column_names()
        shown = self._rows[:limit]

        def fmt(value: Any) -> str:
            if value is None:
                return "NULL"
            if isinstance(value, float):
                return f"{value:.4g}"
            text = str(value)
            return text if len(text) <= 28 else text[:25] + "..."

        widths = {n: len(n) for n in names}
        rendered = []
        for row in shown:
            cells = {n: fmt(row.get(n)) for n in names}
            for n in names:
                widths[n] = max(widths[n], len(cells[n]))
            rendered.append(cells)
        header = " | ".join(n.ljust(widths[n]) for n in names)
        sep = "-+-".join("-" * widths[n] for n in names)
        lines = [header, sep]
        for cells in rendered:
            lines.append(" | ".join(cells[n].ljust(widths[n]) for n in names))
        if len(self._rows) > limit:
            lines.append(f"... ({len(self._rows) - limit} more rows)")
        return "\n".join(lines)

"""Columnar in-memory tables behind the historical row-dict API.

Storage is one typed value vector per column (:class:`ColumnStore`); the
row-dict API every call site was written against survives as lightweight
:class:`RowView` proxies.  ``Table.fork()`` (and ``copy()``, now an alias)
is an O(columns) copy-on-write fork: both tables share every column vector
until one of them writes, at which point only the touched column is copied.
"""

from __future__ import annotations

import functools
from collections.abc import MutableSequence
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.errors import SchemaError, UnknownColumnError
from repro.relational.columns import ColumnStore, RowView
from repro.relational.schema import Column, Schema
from repro.relational.types import DataType, compare_values


class TrackedRows(MutableSequence):
    """A mutation-tracking row-proxy view over a table's columnar store.

    ``Table.rows`` hands this out instead of a raw list so that *external*
    structural mutation cannot silently bypass index staleness tracking:
    appends (``append``/``extend``/``+=``) keep the append-only contract
    secondary indexes rely on (they index the suffix), while in-place
    replacement, deletion, insertion, and reordering bump the table's
    ``non_append_version`` exactly as the validated mutation API does — so a
    :class:`~repro.relational.indexes.HashIndex` rebuilds instead of serving
    stale positions.  Indexing returns live :class:`RowView` proxies, and
    because their cell writes also route through the table, even
    ``table.rows[0]["col"] = x`` is tracked now (the hole the row-dict
    layout could not close).  Row *values* still bypass schema validation,
    as the raw-list escape hatch always has.
    """

    __slots__ = ("_table",)

    def __init__(self, table: "Table"):
        self._table = table

    # -- read access (no tracking needed) ---------------------------------------
    def __len__(self) -> int:
        return len(self._table._store)

    def _normalize(self, index: int) -> int:
        length = len(self._table._store)
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError("row index out of range")
        return index

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [RowView(self._table, i)
                    for i in range(*index.indices(len(self._table._store)))]
        return RowView(self._table, self._normalize(index))

    def __iter__(self) -> Iterator[RowView]:
        for i in range(len(self._table._store)):
            yield RowView(self._table, i)

    def _materialize(self) -> List[Dict[str, Any]]:
        return [self._table._store.row_dict(i)
                for i in range(len(self._table._store))]

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, TrackedRows):
            return self._materialize() == other._materialize()
        return self._materialize() == other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return repr(self._materialize())

    # -- append-like mutation (suffix-indexable, no version bump) ---------------
    def append(self, row: Dict[str, Any]) -> None:
        self._table._store.append_row(row)

    def extend(self, rows: Iterable[Dict[str, Any]]) -> None:
        store = self._table._store
        for row in rows:
            store.append_row(row)

    # -- non-append mutation (bumps the staleness counter) ----------------------
    def __setitem__(self, index, value) -> None:
        store = self._table._store
        if isinstance(index, slice):
            rows = self._materialize()
            rows[index] = [dict(row) for row in value]
            self._table._rebuild(rows)
        else:
            store.set_row(self._normalize(index), value)
        self._table._non_append_version += 1

    def __delitem__(self, index) -> None:
        if isinstance(index, slice):
            self._table._store.delete_rows(index)
        else:
            self._table._store.delete_rows(self._normalize(index))
        self._table._non_append_version += 1

    def insert(self, index: int, value: Dict[str, Any]) -> None:
        self._table._store.insert_row(index, value)
        self._table._non_append_version += 1

    def pop(self, index: int = -1) -> Dict[str, Any]:
        position = self._normalize(index)
        row = self._table._store.row_dict(position)
        self._table._store.delete_rows(position)
        self._table._non_append_version += 1
        return row

    def clear(self) -> None:
        self._table._store.clear()
        self._table._non_append_version += 1

    def sort(self, **kwargs) -> None:
        rows = self._materialize()
        rows.sort(**kwargs)
        self._table._rebuild(rows)
        self._table._non_append_version += 1

    def reverse(self) -> None:
        self._table._store.reverse()
        self._table._non_append_version += 1


class Table:
    """A named, typed, columnar table with a row-dict compatible API.

    Values live in per-column vectors; row access (iteration, indexing)
    yields :class:`RowView` mapping proxies that read and write through to
    the columns.  The table validates rows against its schema on insert and
    offers a handful of dataframe-style conveniences (``head``, ``order_by``,
    ``where``) used by the FAO implementation library, plus whole-column
    accessors the columnar operators build on.
    """

    def __init__(self, name: str, schema: Schema, rows: Optional[Iterable[Dict[str, Any]]] = None,
                 description: str = ""):
        if not name:
            raise SchemaError("table name must be non-empty")
        self.name = name
        self.description = description
        self._store = ColumnStore(schema.column_names())
        self._schema = schema
        # One reusable rows view (it holds no state beyond the table
        # reference); per-row compatibility loops access ``.rows`` hotly.
        self._rows_view = TrackedRows(self)
        # Bumped by every mutation that is *not* a pure append (delete,
        # update, truncate, add_column, in-place cell writes through row
        # views): secondary indexes use it to tell "new rows were appended"
        # (index the suffix) from "existing rows changed" (rebuild).
        self._non_append_version = 0
        # Column names whose values were lost in a serialization round-trip
        # (BLOBs come back as NULL); set by :meth:`from_dict` and propagated
        # through forks.
        self.lossy_columns: List[str] = []
        if rows:
            self.insert_many(rows)

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_rows(cls, name: str, rows: Sequence[Dict[str, Any]], schema: Optional[Schema] = None,
                  description: str = "") -> "Table":
        """Build a table from row dicts, inferring the schema when not given."""
        rows = list(rows)
        if schema is None:
            if not rows:
                raise SchemaError(f"cannot infer schema for empty table {name!r}")
            schema = Schema.infer(rows)
        return cls(name, schema, rows, description=description)

    @classmethod
    def _adopt(cls, name: str, schema: Schema, store: ColumnStore,
               description: str = "", lossy_columns: Iterable[str] = ()) -> "Table":
        """Internal: wrap an existing store without re-validating values."""
        table = cls(name, schema, description=description)
        table._store = store
        table.lossy_columns = list(lossy_columns)
        return table

    def empty_like(self, name: Optional[str] = None) -> "Table":
        """A new empty table with the same schema."""
        return Table(name or self.name, Schema(list(self.schema.columns)),
                     description=self.description)

    def fork(self, name: Optional[str] = None) -> "Table":
        """O(columns) copy-on-write fork.

        The fork shares every column vector with this table; the first write
        to a column — on either side — copies just that column.  Untouched
        columns stay physically shared (zero-copy), which is what makes
        session overlays and samples cheap.  ``lossy_columns`` propagates.
        """
        clone = self.empty_like(name)
        clone._store = self._store.fork()
        clone.lossy_columns = list(self.lossy_columns)
        return clone

    def copy(self, name: Optional[str] = None) -> "Table":
        """A logically independent copy (copy-on-write; alias of :meth:`fork`).

        Historically this deep-copied every row dict while *implicitly*
        sharing blob payloads.  Sharing is now explicit and column-granular:
        untouched columns (blob payloads included) stay shared until written.
        """
        return self.fork(name)

    # -- basic protocol ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[RowView]:
        for i in range(len(self._store)):
            yield RowView(self, i)

    def __getitem__(self, index):
        return self._rows_view[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, columns={self.schema.column_names()}, rows={len(self)})"

    @property
    def schema(self) -> Schema:
        return self._schema

    @schema.setter
    def schema(self, value: Schema) -> None:
        """Replace the schema, materializing any new columns as NULL vectors."""
        self._schema = value
        for column_name in value.column_names():
            if self._store.resolve(column_name) is None:
                self._store.add_column(column_name)

    @property
    def rows(self) -> "TrackedRows":
        """A mutation-tracking row-proxy view over the columnar store.

        Reading (iteration, indexing, slicing) yields :class:`RowView`
        proxies that behave like the row dicts did.  Structural mutation
        through the view bypasses validation (as the raw list always did)
        but no longer bypasses index staleness tracking: non-append
        operations — including in-place cell writes on the proxies — bump
        ``non_append_version`` so secondary indexes rebuild
        (see :class:`TrackedRows`).
        """
        return self._rows_view

    @rows.setter
    def rows(self, value: Iterable[Dict[str, Any]]) -> None:
        """Replace the rows wholesale (a non-append mutation)."""
        self._rebuild([dict(row) for row in value])
        self._non_append_version += 1

    @property
    def non_append_version(self) -> int:
        """Counter of non-append mutations (see ``__init__``)."""
        return self._non_append_version

    def column_names(self) -> List[str]:
        """Column names, in schema order."""
        return self.schema.column_names()

    # -- internal columnar plumbing ---------------------------------------------
    def _rebuild(self, rows: List[Dict[str, Any]]) -> None:
        """Swap in a fresh store built from materialized row dicts."""
        store = ColumnStore(self._store.column_names())
        for row in rows:
            store.append_row(row)
        self._store = store

    def _set_cell(self, index: int, key: str, value: Any) -> None:
        """Write-through for :class:`RowView`: tracked, unvalidated."""
        self._store.set_value(index, key, value)
        self._non_append_version += 1

    def column(self, name: str) -> List[Any]:
        """The raw (possibly shared) column vector for ``name``.

        This is the zero-copy read path the columnar operators use.  Treat
        the returned list as read-only; use :meth:`set_column` or the
        mutation API to write.
        """
        col = self.schema.column(name)
        return self._store.column(col.name)

    def set_column(self, name: str, values: Sequence[Any]) -> None:
        """Replace one column's values wholesale (validated, tracked)."""
        col = self.schema.column(name)
        self._store.set_column(col.name, [col.validate(v) for v in values])
        self._non_append_version += 1

    def shares_column(self, other: "Table", name: str) -> bool:
        """True when both tables still share ``name``'s vector (zero-copy)."""
        return self._store.shares_column_with(other._store, name)

    # -- mutation ---------------------------------------------------------------
    def insert(self, row: Dict[str, Any]) -> Dict[str, Any]:
        """Validate and append one row; returns the stored (coerced) row."""
        cleaned = self.schema.validate_row(row)
        self._store.append_row(cleaned)
        return cleaned

    def insert_many(self, rows: Iterable[Dict[str, Any]]) -> int:
        """Insert many rows; returns the number inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def delete_where(self, predicate: Callable[[Dict[str, Any]], bool]) -> int:
        """Delete rows matching ``predicate``; returns how many were removed."""
        keep = [i for i in range(len(self._store))
                if not predicate(RowView(self, i))]
        removed = len(self._store) - len(keep)
        if removed:
            self._store.keep_positions(keep)
            self._non_append_version += 1
        return removed

    def update_where(self, predicate: Callable[[Dict[str, Any]], bool],
                     updates: Dict[str, Any]) -> int:
        """Apply ``updates`` to rows matching ``predicate``; returns the count."""
        for key in updates:
            if not self.schema.has_column(key):
                raise UnknownColumnError(f"unknown column in update: {key!r}")
        # Validate every value up front (validation is row-independent): a
        # bad value must raise before any row is touched, not mid-loop with
        # half the rows mutated.
        validated = {}
        for key, value in updates.items():
            col = self.schema.column(key)
            validated[col.name] = col.validate(value)
        count = 0
        try:
            for i in range(len(self._store)):
                if predicate(RowView(self, i)):
                    for column_name, value in validated.items():
                        self._store.set_value(i, column_name, value)
                    count += 1
        finally:
            # A predicate that raises mid-scan has already mutated earlier
            # rows; indexes must still see the change.
            if count:
                self._non_append_version += 1
        return count

    def add_column(self, column: Column, default: Any = None,
                   compute: Optional[Callable[[Dict[str, Any]], Any]] = None) -> None:
        """Add a column, filling it with ``default`` or ``compute(row)``."""
        if self.schema.has_column(column.name):
            raise SchemaError(f"column {column.name!r} already exists on {self.name!r}")
        if compute is not None:
            values = [column.validate(compute(RowView(self, i)))
                      for i in range(len(self._store))]
        else:
            values = [column.validate(default)] * len(self._store)
        self._schema = self._schema.add(column)
        self._store.add_column(column.name, values)
        self._non_append_version += 1

    def truncate(self) -> None:
        """Remove all rows."""
        self._store.clear()
        self._non_append_version += 1

    # -- dataframe-style helpers --------------------------------------------------
    def head(self, n: int = 5) -> List[Dict[str, Any]]:
        """The first ``n`` rows (copies, safe to hand to agents as samples)."""
        return [self._store.row_dict(i)
                for i in range(min(max(n, 0), len(self._store)))]

    def head_table(self, n: int, name: Optional[str] = None) -> "Table":
        """A new table holding the first ``n`` rows (column-sliced copy)."""
        result = self.empty_like(name)
        result._store = self._store.slice(0, max(n, 0))
        result.lossy_columns = list(self.lossy_columns)
        return result

    def column_values(self, name: str) -> List[Any]:
        """All values of one column, in row order (a fresh list)."""
        return list(self.column(name))

    def distinct_values(self, name: str) -> List[Any]:
        """Distinct values of one column, preserving first-seen order."""
        seen = set()
        out: List[Any] = []
        for value in self.column(name):
            key = repr(value)
            if key not in seen:
                seen.add(key)
                out.append(value)
        return out

    def where(self, predicate: Callable[[Dict[str, Any]], bool], name: Optional[str] = None) -> "Table":
        """A new table holding rows matching ``predicate``."""
        positions = [i for i in range(len(self._store))
                     if predicate(RowView(self, i))]
        result = self.empty_like(name or f"{self.name}_filtered")
        result._store = self._store.gather(positions)
        return result

    def order_by(self, column: str, descending: bool = False, name: Optional[str] = None) -> "Table":
        """A new table sorted by one column (NULLs first ascending)."""
        col = self.schema.column(column)
        vector = self._store.column(col.name)

        def cmp(a: int, b: int) -> int:
            result = compare_values(vector[a], vector[b])
            if result is None:
                result = compare_values(repr(vector[a]), repr(vector[b])) or 0
            return result

        order = sorted(range(len(self._store)), key=functools.cmp_to_key(cmp),
                       reverse=descending)
        result = self.empty_like(name or f"{self.name}_sorted")
        result._store = self._store.gather(order)
        return result

    def select_columns(self, names: Sequence[str], name: Optional[str] = None) -> "Table":
        """A new table with only the given columns (vectors stay shared)."""
        schema = self.schema.project(names)
        store = self._store.fork_projection(
            [(col.name, col.name) for col in schema.columns])
        return Table._adopt(name or f"{self.name}_projected", schema, store,
                            lossy_columns=[c for c in self.lossy_columns
                                           if schema.has_column(c)])

    # -- statistics ---------------------------------------------------------------
    def null_fraction(self, column: str) -> float:
        """Fraction of rows whose value for ``column`` is NULL."""
        values = self.column(column)
        if not values:
            return 0.0
        return sum(1 for v in values if v is None) / len(values)

    def cardinality(self, column: str) -> int:
        """Number of distinct values in ``column``."""
        return len(self.distinct_values(column))

    # -- serialization --------------------------------------------------------------
    def _encode_value(self, col: Column, value: Any) -> Any:
        if col.data_type is DataType.BLOB and value is not None:
            return {"__blob__": True, "repr": f"<blob:{type(value).__name__}>"}
        return value

    def to_dict(self, orient: str = "rows") -> Dict[str, Any]:
        """Serialize schema and data (BLOB values are replaced by a marker).

        ``orient="rows"`` (the default) keeps the historical row-major
        payload; ``orient="columnar"`` emits one value vector per column —
        the on-disk format :class:`~repro.relational.storage.TableStorage`
        writes.  Both restore through :meth:`from_dict`.
        """
        payload: Dict[str, Any] = {
            "name": self.name,
            "description": self.description,
            "schema": self.schema.to_dict(),
        }
        if orient == "columnar":
            payload["format"] = "columnar"
            payload["row_count"] = len(self._store)
            payload["lossy_columns"] = list(self.lossy_columns)
            payload["columns"] = {
                col.name: [self._encode_value(col, v)
                           for v in self._store.column(col.name)]
                for col in self.schema.columns
            }
            return payload
        if orient != "rows":
            raise ValueError(f"unknown to_dict orient: {orient!r}")
        rows = []
        for i in range(len(self._store)):
            rows.append({col.name: self._encode_value(col, self._store.get(i, col.name))
                         for col in self.schema.columns})
        payload["rows"] = rows
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Table":
        """Inverse of :meth:`to_dict`; accepts row-major and columnar payloads.

        The restore is *lossy* for BLOB columns: their payloads were replaced
        by markers at save time and come back as NULL.  Affected column names
        are recorded on ``table.lossy_columns`` so callers can detect the
        loss instead of silently reading NULLs
        (:meth:`~repro.relational.storage.TableStorage.load` also emits a
        :class:`~repro.relational.storage.LossyBlobWarning`).  Columnar
        payloads additionally carry ``lossy_columns`` forward, so a table
        that was already lossy stays marked across further round-trips.
        """
        schema = Schema.from_dict(payload["schema"])
        table = cls(payload["name"], schema, description=payload.get("description", ""))
        lossy = set()
        if payload.get("format") == "columnar" or "columns" in payload:
            lossy.update(payload.get("lossy_columns", []))
            count = int(payload.get("row_count", 0))
            encoded_columns = payload.get("columns", {})
            columns: Dict[str, List[Any]] = {}
            for col in schema.columns:
                raw = encoded_columns.get(col.name)
                if raw is None:
                    raw = [None] * count
                decoded = []
                for value in raw:
                    if isinstance(value, dict) and value.get("__blob__"):
                        decoded.append(None)
                        lossy.add(col.name)
                    else:
                        decoded.append(col.validate(value))
                columns[col.name] = decoded
            table._store.replace_all(columns, count)
        else:
            for row in payload.get("rows", []):
                cleaned = {}
                for key, value in row.items():
                    if isinstance(value, dict) and value.get("__blob__"):
                        cleaned[key] = None
                        lossy.add(key)
                    else:
                        cleaned[key] = value
                table.insert(cleaned)
        table.lossy_columns = sorted(lossy)
        return table

    def pretty(self, limit: int = 10) -> str:
        """A fixed-width text rendering of the first ``limit`` rows."""
        names = self.column_names()
        shown = self.head(limit)

        def fmt(value: Any) -> str:
            if value is None:
                return "NULL"
            if isinstance(value, float):
                return f"{value:.4g}"
            text = str(value)
            return text if len(text) <= 28 else text[:25] + "..."

        widths = {n: len(n) for n in names}
        rendered = []
        for row in shown:
            cells = {n: fmt(row.get(n)) for n in names}
            for n in names:
                widths[n] = max(widths[n], len(cells[n]))
            rendered.append(cells)
        header = " | ".join(n.ljust(widths[n]) for n in names)
        sep = "-+-".join("-" * widths[n] for n in names)
        lines = [header, sep]
        for cells in rendered:
            lines.append(" | ".join(cells[n].ljust(widths[n]) for n in names))
        if len(self) > limit:
            lines.append(f"... ({len(self) - limit} more rows)")
        return "\n".join(lines)

"""On-disk persistence for tables (JSON files in a workspace directory)."""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import List, Union

from repro.errors import StorageError
from repro.relational.table import Table
from repro.utils.io import atomic_write_text


class LossyBlobWarning(UserWarning):
    """A loaded table's BLOB column(s) came back as NULL.

    BLOB payloads are replaced by markers at save time (only a marker is
    stored, matching the paper's practice of persisting file paths rather
    than pixels), so the restore is lossy by design.  This warning — and the
    ``lossy_columns`` attribute on the loaded table — make the loss
    detectable instead of silent.
    """


class TableStorage:
    """Persist tables as one JSON file per table inside a directory.

    KathDB materializes intermediate results and persists generated functions;
    this class covers the table side of that requirement.  Tables are written
    in the **columnar** format (one value vector per column, matching the
    in-memory :class:`~repro.relational.columns.ColumnStore` layout); legacy
    row-major files load transparently — :meth:`~repro.relational.table.Table.from_dict`
    accepts both payload shapes, so old workspaces keep working.  BLOB
    columns (raw pixel arrays) are not serialized — they are replaced by a
    marker and come back as NULL.  :meth:`load` flags such lossy restores:
    the returned table's ``lossy_columns`` lists the affected columns and a
    :class:`LossyBlobWarning` is emitted, so callers that need the payloads
    can re-render them (e.g. from the original image URIs) rather than
    silently reading NULLs.  ``lossy_columns`` survives further round-trips:
    the columnar payload carries it forward explicitly.
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, name: str) -> Path:
        safe = "".join(c if c.isalnum() or c in "-_" else "_" for c in name)
        return self.directory / f"{safe}.json"

    def save(self, table: Table) -> Path:
        """Write one table atomically; returns the file path."""
        path = self._path(table.name)
        try:
            payload = table.to_dict(orient="columnar")
            text = json.dumps(payload, indent=2, default=_json_default)
            atomic_write_text(path, text)
        except (OSError, TypeError, ValueError) as error:
            raise StorageError(f"failed to save table {table.name!r}: {error}") from error
        return path

    def load(self, name: str) -> Table:
        """Load one table by name.

        Emits a :class:`LossyBlobWarning` (and sets ``table.lossy_columns``)
        when BLOB columns were restored as NULL.
        """
        path = self._path(name)
        if not path.exists():
            raise StorageError(f"no stored table named {name!r} in {self.directory}")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            raise StorageError(f"failed to load table {name!r}: {error}") from error
        table = Table.from_dict(payload)
        if table.lossy_columns:
            warnings.warn(
                f"table {name!r} was restored with NULL BLOB column(s) "
                f"{table.lossy_columns} (payloads are not persisted); "
                "check table.lossy_columns before relying on them",
                LossyBlobWarning, stacklevel=2)
        return table

    def exists(self, name: str) -> bool:
        """Whether a stored table with this name exists."""
        return self._path(name).exists()

    def delete(self, name: str) -> bool:
        """Delete a stored table; returns True if a file was removed."""
        path = self._path(name)
        if path.exists():
            path.unlink()
            return True
        return False

    def list_tables(self) -> List[str]:
        """Names of all stored tables."""
        names = []
        for path in sorted(self.directory.glob("*.json")):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                names.append(payload.get("name", path.stem))
            except (OSError, json.JSONDecodeError):
                continue
        return names


def _json_default(value):
    """Fallback serializer: numpy scalars/arrays and sets become plain types."""
    if hasattr(value, "tolist"):
        return value.tolist()
    if isinstance(value, set):
        return sorted(value)
    if isinstance(value, bytes):
        return {"__bytes__": True, "length": len(value)}
    return str(value)

"""A small embedded relational engine.

KathDB's unified semantic layer sits on top of relational semantics: typed
tables, a system catalog, materialized views, and classic relational-algebra
operators.  This package provides that substrate without any external database
dependency.

Public entry points
-------------------
* :class:`~repro.relational.schema.Schema` / :class:`~repro.relational.schema.Column`
* :class:`~repro.relational.table.Table`
* :class:`~repro.relational.catalog.Catalog`
* :mod:`~repro.relational.operators` -- relational algebra
* :mod:`~repro.relational.expressions` -- scalar expression AST
* :func:`~repro.relational.sql.execute_sql` -- the mini-SQL front end
"""

from repro.relational.types import DataType
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.catalog import Catalog, TableStats
from repro.relational import expressions as expr
from repro.relational import operators as ops
from repro.relational.sql import execute_sql, parse_sql
from repro.relational.view import View, MaterializedView
from repro.relational.indexes import HashIndex
from repro.relational.storage import LossyBlobWarning, TableStorage

__all__ = [
    "DataType",
    "Column",
    "Schema",
    "Table",
    "Catalog",
    "TableStats",
    "expr",
    "ops",
    "execute_sql",
    "parse_sql",
    "View",
    "MaterializedView",
    "HashIndex",
    "LossyBlobWarning",
    "TableStorage",
]

"""Multi-tenant fair-share admission scheduler.

Replaces the service's flat thread pool: every admitted request lands on a
bounded per-tenant queue inside one of three priority classes, and a small
worker pool drains the queues under two policies layered together:

* **Class reservations** — each class (``interactive``/``batch``/
  ``background``) reserves a slice of the worker pool.  A class may borrow
  idle capacity beyond its reservation (the scheduler is work-conserving),
  but never so much that another backlogged class cannot reach its own
  reservation.
* **Deficit round-robin across tenants** — within a class, tenants are
  visited in round-robin order and accumulate ``weight`` units of deficit
  per visit; one request costs one unit.  A hog tenant with a deep queue
  therefore gets the same drain rate as a light tenant of equal weight,
  which bounds the light tenant's time-in-queue.

Backpressure is structured, never blocking: a full tenant queue sheds the
request with :class:`~repro.errors.SchedulerRejection` at submit time, and a
lapsed deadline resolves the request's future with a shed result *before*
dispatch (no worker is spent on dead work).  All instrumentation is keyed
off the shared :class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from contextvars import ContextVar
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import SchedulerRejection
from repro.obs.metrics import MetricsRegistry
from repro.sched.cancel import CancelToken, activate

PRIORITY_CLASSES: Tuple[str, ...] = ("interactive", "batch", "background")
DEFAULT_PRIORITY = "interactive"

# How long an idle worker sleeps between wakeup checks.  Workers are also
# notified explicitly on every submit/completion; the timeout only bounds
# how late a *deadline-expired* queued task is discovered when the system
# is otherwise idle.
_IDLE_WAIT_S = 0.05


class ScheduledTask:
    """One admitted request: its runner, bookkeeping stamps, and future."""

    __slots__ = ("runner", "tenant", "sched_class", "token", "future",
                 "enqueue_pc", "dispatch_pc", "queue_ms", "shed_result")

    def __init__(self, runner: Callable[["ScheduledTask"], Any], tenant: str,
                 sched_class: str, token: Optional[CancelToken],
                 shed_result: Optional[Callable[["ScheduledTask", str], Any]] = None):
        self.runner = runner
        self.tenant = tenant
        self.sched_class = sched_class
        self.token = token
        self.future: Future = Future()
        self.enqueue_pc = time.perf_counter()
        self.dispatch_pc: Optional[float] = None
        self.queue_ms = 0.0
        # Producer of a structured "this request was shed" value (reason in
        # {"deadline", "shutdown"}); when None the future gets an exception.
        self.shed_result = shed_result


_CURRENT_TASK: ContextVar[Optional[ScheduledTask]] = ContextVar(
    "kathdb_sched_task", default=None)


def current_task() -> Optional[ScheduledTask]:
    """The task whose runner is executing on this thread, if any.

    ``Session.query`` reads this to backdate a ``queue`` span into the
    query's trace without widening the query API.
    """
    return _CURRENT_TASK.get()


class _TenantQueue:
    __slots__ = ("tenant", "weight", "deficit", "items")

    def __init__(self, tenant: str, weight: float):
        self.tenant = tenant
        self.weight = max(1.0, float(weight))
        self.deficit = 0.0
        self.items: Deque[ScheduledTask] = deque()


class _ClassBoard:
    """All tenant queues of one priority class, drained by deficit RR."""

    __slots__ = ("name", "reserved", "queues", "active", "running", "depth")

    def __init__(self, name: str, reserved: int):
        self.name = name
        self.reserved = reserved
        self.queues: Dict[str, _TenantQueue] = {}
        # Round-robin ring of tenants with queued work.
        self.active: Deque[str] = deque()
        self.running = 0
        self.depth = 0

    def queue_for(self, tenant: str, weight: float) -> _TenantQueue:
        queue = self.queues.get(tenant)
        if queue is None:
            queue = self.queues[tenant] = _TenantQueue(tenant, weight)
        return queue

    def push(self, task: ScheduledTask, weight: float) -> _TenantQueue:
        queue = self.queue_for(task.tenant, weight)
        if not queue.items:
            self.active.append(task.tenant)
        queue.items.append(task)
        self.depth += 1
        return queue

    def pop_next(self) -> Optional[ScheduledTask]:
        """Deficit round-robin: one visit grants ``weight`` units; a pop
        costs one.  Weights are clamped >= 1 so every rotation makes
        progress and the loop terminates."""
        while self.active:
            queue = self.queues[self.active[0]]
            if not queue.items:
                self.active.popleft()
                continue
            if queue.deficit >= 1.0:
                queue.deficit -= 1.0
                task = queue.items.popleft()
                self.depth -= 1
                if queue.items:
                    self.active.rotate(-1)
                else:
                    self.active.popleft()
                    queue.deficit = 0.0
                return task
            queue.deficit += queue.weight
            self.active.rotate(-1)
        return None


def default_reservations(workers: int) -> Dict[str, int]:
    """Split a worker pool into class reservations (sum <= workers).

    Interactive gets half (at least one slot — latency-sensitive work must
    never starve), batch a quarter, background the remainder.
    """
    interactive = max(1, workers // 2)
    batch = workers // 4
    background = max(0, workers - interactive - batch)
    return {"interactive": interactive, "batch": batch, "background": background}


class FairShareScheduler:
    """Weighted fair-share scheduler over a thread worker pool."""

    def __init__(self, workers: int = 4, queue_limit: int = 64,
                 reservations: Optional[Dict[str, int]] = None,
                 tenant_weights: Optional[Dict[str, float]] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 name: str = "sched"):
        if workers < 1:
            raise ValueError("scheduler needs at least one worker")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.workers = workers
        self.queue_limit = queue_limit
        self.tenant_weights = dict(tenant_weights or {})
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.name = name

        reserved = dict(default_reservations(workers))
        for cls, slots in (reservations or {}).items():
            if cls not in PRIORITY_CLASSES:
                raise ValueError(f"unknown priority class {cls!r}")
            reserved[cls] = max(0, int(slots))
        # Reservations are guarantees; they cannot exceed the pool.
        overcommit = sum(reserved.values()) - workers
        for cls in reversed(PRIORITY_CLASSES):
            if overcommit <= 0:
                break
            give = min(reserved[cls], overcommit)
            reserved[cls] -= give
            overcommit -= give
        self.boards: Dict[str, _ClassBoard] = {
            cls: _ClassBoard(cls, reserved[cls]) for cls in PRIORITY_CLASSES}

        self._cond = threading.Condition()
        self._closed = False
        self._running_total = 0
        self._threads: List[threading.Thread] = []
        self._local = threading.local()
        self._tenant_sheds: Dict[str, int] = {}
        self._tenant_expired: Dict[str, int] = {}

        self._admitted = self.metrics.counter(f"{name}.admitted")
        self._shed = self.metrics.counter(f"{name}.shed")
        self._expired = self.metrics.counter(f"{name}.expired")
        self._cancelled = self.metrics.counter(f"{name}.cancelled")
        self._completed = self.metrics.counter(f"{name}.completed")
        self._queue_hist = self.metrics.histogram(f"{name}.queue_ms")
        for cls, board in self.boards.items():
            self.metrics.gauge(f"{name}.depth.{cls}",
                               fn=lambda b=board: float(b.depth))
        self.metrics.gauge(f"{name}.running", fn=lambda: float(self._running_total))

        with self._cond:
            self._spawn_workers_locked(workers)

    # -- worker pool -------------------------------------------------------
    def _spawn_workers_locked(self, target: int) -> None:
        while len(self._threads) < target:
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"kathdb-{self.name}-{len(self._threads)}", daemon=True)
            self._threads.append(thread)
            thread.start()

    def ensure_workers(self, target: int) -> None:
        """Grow the pool to ``target`` workers (never shrinks).

        Reservations keep their configured values — extra workers are pure
        borrowable capacity, so class guarantees still hold.
        """
        with self._cond:
            if self._closed or target <= self.workers:
                return
            self.workers = target
            self._spawn_workers_locked(target)
            self._cond.notify_all()

    def in_worker(self) -> bool:
        """True on a scheduler worker thread (re-entrant submits must run
        inline or a full pool would deadlock on itself)."""
        return bool(getattr(self._local, "is_worker", False))

    # -- submission --------------------------------------------------------
    def submit(self, runner: Callable[[ScheduledTask], Any], tenant: str,
               sched_class: str = DEFAULT_PRIORITY,
               token: Optional[CancelToken] = None,
               shed_result: Optional[Callable[[ScheduledTask, str], Any]] = None,
               ) -> Future:
        """Admit one request; returns a Future resolving to the runner's value.

        Raises :class:`SchedulerRejection` (reason ``"backpressure"`` /
        ``"shutdown"``) instead of blocking when the tenant's queue for this
        class is full or the scheduler is draining.  A deadline that has
        already lapsed resolves the future immediately with the shed result
        (reason ``"deadline"``) without consuming a queue slot.
        """
        if sched_class not in PRIORITY_CLASSES:
            raise SchedulerRejection("unknown-class", tenant, sched_class)
        task = ScheduledTask(runner, tenant, sched_class, token, shed_result)
        if token is not None and token.cancelled:
            self._resolve_shed(task, "deadline")
            return task.future
        weight = self.tenant_weights.get(tenant, 1.0)
        with self._cond:
            if self._closed:
                raise SchedulerRejection("shutdown", tenant, sched_class)
            board = self.boards[sched_class]
            queue = board.queue_for(tenant, weight)
            if len(queue.items) >= self.queue_limit:
                self._shed.inc()
                self._tenant_sheds[tenant] = self._tenant_sheds.get(tenant, 0) + 1
                raise SchedulerRejection(
                    "backpressure", tenant, sched_class, len(queue.items))
            board.push(task, weight)
            self._admitted.inc()
            self._cond.notify()
        return task.future

    def run_inline(self, runner: Callable[[ScheduledTask], Any], tenant: str,
                   sched_class: str = DEFAULT_PRIORITY,
                   token: Optional[CancelToken] = None) -> Any:
        """Execute ``runner`` on the calling thread with full task context.

        Used for re-entrant submissions from inside a worker: queueing them
        could deadlock a saturated pool, and the caller already holds a
        scheduling slot.
        """
        task = ScheduledTask(runner, tenant, sched_class, token)
        task.dispatch_pc = task.enqueue_pc
        self._admitted.inc()
        ctx_task = _CURRENT_TASK.set(task)
        try:
            with activate(token):
                result = runner(task)
            self._completed.inc()
            return result
        finally:
            _CURRENT_TASK.reset(ctx_task)

    # -- dispatch ----------------------------------------------------------
    def _next_locked(self) -> Optional[Tuple[ScheduledTask, _ClassBoard]]:
        free = self.workers - self._running_total
        if free <= 0:
            return None
        backlogged = [b for b in self.boards.values() if b.depth > 0]
        for board in (self.boards[cls] for cls in PRIORITY_CLASSES):
            if board.depth == 0:
                continue
            if board.running < board.reserved:
                task = board.pop_next()
            else:
                # Work-conserving borrow: only take a slot beyond our
                # reservation when the remaining free slots still cover
                # every other backlogged class's unmet reservation.
                unmet = sum(max(0, other.reserved - other.running)
                            for other in backlogged if other is not board)
                if free - 1 < unmet:
                    continue
                task = board.pop_next()
            if task is not None:
                return task, board
        return None

    def _worker_loop(self) -> None:
        self._local.is_worker = True
        while True:
            with self._cond:
                while True:
                    picked = self._next_locked()
                    if picked is not None:
                        task, board = picked
                        board.running += 1
                        self._running_total += 1
                        break
                    if self._closed:
                        return
                    self._cond.wait(_IDLE_WAIT_S)
            try:
                self._dispatch(task)
            finally:
                with self._cond:
                    board.running -= 1
                    self._running_total -= 1
                    self._cond.notify()

    def _dispatch(self, task: ScheduledTask) -> None:
        task.dispatch_pc = time.perf_counter()
        task.queue_ms = (task.dispatch_pc - task.enqueue_pc) * 1000.0
        self._queue_hist.observe(task.queue_ms)
        if task.token is not None and task.token.cancelled:
            # Deadline lapsed while queued: shed before spending a worker.
            self._resolve_shed(task, task.token.reason or "deadline")
            return
        if not task.future.set_running_or_notify_cancel():
            self._cancelled.inc()
            return
        ctx_task = _CURRENT_TASK.set(task)
        try:
            with activate(task.token):
                result = task.runner(task)
        except BaseException as error:  # noqa: BLE001 - forwarded to the future
            self._cancelled.inc()
            task.future.set_exception(error)
        else:
            self._completed.inc()
            task.future.set_result(result)
        finally:
            _CURRENT_TASK.reset(ctx_task)

    def _resolve_shed(self, task: ScheduledTask, reason: str) -> None:
        if reason == "deadline":
            self._expired.inc()
            with self._cond:
                self._tenant_expired[task.tenant] = (
                    self._tenant_expired.get(task.tenant, 0) + 1)
        else:
            self._shed.inc()
        try:
            if task.shed_result is not None:
                task.future.set_result(task.shed_result(task, reason))
            else:
                task.future.set_exception(SchedulerRejection(
                    reason, task.tenant, task.sched_class))
        except InvalidStateError:
            pass  # the caller cancelled the future first

    # -- introspection -----------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Scheduler state snapshot (also exposed as the ``sched`` view)."""
        with self._cond:
            classes: Dict[str, Any] = {}
            tenants: Dict[str, Dict[str, int]] = {}
            for cls, board in self.boards.items():
                classes[cls] = {"depth": board.depth, "running": board.running,
                                "reserved": board.reserved}
                for tenant, queue in board.queues.items():
                    entry = tenants.setdefault(
                        tenant, {"queued": 0, "shed": 0, "expired": 0})
                    entry["queued"] += len(queue.items)
            for tenant, count in self._tenant_sheds.items():
                tenants.setdefault(
                    tenant, {"queued": 0, "shed": 0, "expired": 0})["shed"] = count
            for tenant, count in self._tenant_expired.items():
                tenants.setdefault(
                    tenant, {"queued": 0, "shed": 0, "expired": 0})["expired"] = count
            return {
                "workers": self.workers,
                "running": self._running_total,
                "queued": sum(b.depth for b in self.boards.values()),
                "admitted": self._admitted.value,
                "completed": self._completed.value,
                "shed": self._shed.value,
                "expired": self._expired.value,
                "cancelled": self._cancelled.value,
                "classes": classes,
                "tenants": tenants,
            }

    def tenant_snapshot(self, tenant: str) -> Dict[str, Any]:
        """Small per-tenant view attached to each QueryResponse."""
        with self._cond:
            queued = sum(len(board.queues[tenant].items)
                         for board in self.boards.values()
                         if tenant in board.queues)
            return {
                "tenant": tenant,
                "queued": queued,
                "shed": self._tenant_sheds.get(tenant, 0),
                "expired": self._tenant_expired.get(tenant, 0),
                "running": self._running_total,
                "workers": self.workers,
            }

    def describe(self) -> str:
        stats = self.stats()
        classes = ", ".join(
            f"{cls}={info['reserved']}" for cls, info in stats["classes"].items())
        return (f"fair-share scheduler: {stats['workers']} workers "
                f"(reservations {classes}), {stats['queued']} queued, "
                f"{stats['admitted']} admitted, {stats['shed']} shed, "
                f"{stats['expired']} expired")

    # -- lifecycle ---------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Drain: shed every queued task, then stop the workers."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            pending: List[ScheduledTask] = []
            for board in self.boards.values():
                for queue in board.queues.values():
                    pending.extend(queue.items)
                    queue.items.clear()
                board.active.clear()
                board.depth = 0
            self._cond.notify_all()
        for task in pending:
            self._resolve_shed(task, "shutdown")
        if wait:
            for thread in self._threads:
                thread.join(timeout=5.0)

"""Multi-tenant fair-share admission scheduling.

The scheduler sits between the service API and the execution engine: every
request is enqueued on a per-tenant queue inside its priority class, a small
worker pool drains the queues with deficit round-robin, and deadline /
cancellation state travels with the request as a :class:`CancelToken`.
"""

from repro.sched.cancel import (
    CancelToken,
    activate,
    check_current_cancel,
    current_cancel_token,
)
from repro.sched.scheduler import (
    DEFAULT_PRIORITY,
    PRIORITY_CLASSES,
    FairShareScheduler,
    ScheduledTask,
    current_task,
)

__all__ = [
    "CancelToken",
    "DEFAULT_PRIORITY",
    "FairShareScheduler",
    "PRIORITY_CLASSES",
    "ScheduledTask",
    "activate",
    "check_current_cancel",
    "current_cancel_token",
    "current_task",
]

"""Cooperative cancellation: deadline-bearing tokens plus a context variable.

A :class:`CancelToken` is minted by the scheduler when a request is admitted
and carried on :class:`~repro.executor.context.ExecutionContext`.  Nothing is
pre-empted: the engine checks the token at operator boundaries and the gateway
checks it before each model call, so a lapsed deadline stops in-flight work at
the next safe point.  The token also rides a :class:`~contextvars.ContextVar`
(mirroring how the current trace span propagates) so deeply nested code —
generated function bodies, gateway internals — can observe cancellation
without threading the token through every signature.
"""

from __future__ import annotations

import threading
import time
from contextvars import ContextVar, Token
from typing import Optional

from repro.errors import QueryCancelledError


class CancelToken:
    """A cancellation flag with an optional absolute deadline.

    The deadline is stored on the ``perf_counter`` clock (monotonic and
    shared with the scheduler's enqueue/dispatch stamps) so wall-clock jumps
    never spuriously expire a request.
    """

    __slots__ = ("deadline_pc", "_reason", "_lock")

    def __init__(self, deadline_s: Optional[float] = None):
        self.deadline_pc: Optional[float] = (
            time.perf_counter() + deadline_s if deadline_s is not None else None)
        self._reason: Optional[str] = None
        self._lock = threading.Lock()

    @classmethod
    def with_deadline_ms(cls, deadline_ms: Optional[float]) -> "CancelToken":
        if deadline_ms is None:
            return cls()
        return cls(deadline_s=max(0.0, float(deadline_ms)) / 1000.0)

    def cancel(self, reason: str = "cancelled") -> None:
        """Flag the token; the first reason wins."""
        with self._lock:
            if self._reason is None:
                self._reason = reason

    @property
    def expired(self) -> bool:
        return self.deadline_pc is not None and time.perf_counter() >= self.deadline_pc

    @property
    def cancelled(self) -> bool:
        return self._reason is not None or self.expired

    @property
    def reason(self) -> str:
        """Why the token is cancelled; ``""`` while it is still live."""
        if self._reason is not None:
            return self._reason
        if self.expired:
            return "deadline"
        return ""

    def remaining_s(self) -> Optional[float]:
        """Seconds until the deadline (never negative); None when unbounded."""
        if self.deadline_pc is None:
            return None
        return max(0.0, self.deadline_pc - time.perf_counter())

    def check(self) -> None:
        """Raise :class:`QueryCancelledError` if the token is cancelled."""
        if self.cancelled:
            raise QueryCancelledError(self.reason)


_CURRENT_TOKEN: ContextVar[Optional[CancelToken]] = ContextVar(
    "kathdb_cancel_token", default=None)


def current_cancel_token() -> Optional[CancelToken]:
    """The token governing the current logical request, if any."""
    return _CURRENT_TOKEN.get()


def check_current_cancel() -> None:
    """Check the ambient token; a no-op when no request is being cancelled."""
    token = _CURRENT_TOKEN.get()
    if token is not None:
        token.check()


class activate:
    """Context manager installing ``token`` as the ambient cancel token."""

    def __init__(self, token: Optional[CancelToken]):
        self._token = token
        self._reset: Optional[Token] = None

    def __enter__(self) -> Optional[CancelToken]:
        self._reset = _CURRENT_TOKEN.set(self._token)
        return self._token

    def __exit__(self, *_exc) -> None:
        if self._reset is not None:
            _CURRENT_TOKEN.reset(self._reset)
            self._reset = None

"""A tiny wall-clock timer used by the profiler agent and the benchmarks."""

from __future__ import annotations

import time
from typing import Optional


class Timer:
    """Context-manager timer.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self):
        self._start: Optional[float] = None
        self._elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def start(self) -> None:
        """Start (or restart) the timer."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the timer and return the elapsed time in seconds."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self._elapsed = time.perf_counter() - self._start
        self._start = None
        return self._elapsed

    @property
    def running(self) -> bool:
        """Whether the timer is currently running."""
        return self._start is not None

    @property
    def elapsed(self) -> float:
        """Elapsed seconds for the last start/stop interval."""
        if self._start is not None:
            return time.perf_counter() - self._start
        return self._elapsed

"""Shared utilities: deterministic seeding, text helpers, timing, and I/O."""

from repro.utils.io import atomic_write_text
from repro.utils.seed import SeededRNG, stable_hash
from repro.utils.text import normalize, tokenize, truncate
from repro.utils.timer import Timer

__all__ = [
    "SeededRNG",
    "atomic_write_text",
    "stable_hash",
    "normalize",
    "tokenize",
    "truncate",
    "Timer",
]

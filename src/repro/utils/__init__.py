"""Shared utilities: deterministic seeding, text helpers, and timing."""

from repro.utils.seed import SeededRNG, stable_hash
from repro.utils.text import normalize, tokenize, truncate
from repro.utils.timer import Timer

__all__ = [
    "SeededRNG",
    "stable_hash",
    "normalize",
    "tokenize",
    "truncate",
    "Timer",
]

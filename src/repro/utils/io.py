"""Crash-safe filesystem helpers shared by every persistence path.

All on-disk artifacts (profile caches, table storage, skill-store records)
are small JSON or text documents that get rewritten whole.  A plain
``write_text`` can leave a truncated file behind if the process dies
mid-write; ``atomic_write_text`` writes to a temporary file in the target
directory and ``os.replace``s it into place, which POSIX guarantees to be
atomic on the same filesystem.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union


def atomic_write_text(path: Union[str, Path], text: str, encoding: str = "utf-8") -> Path:
    """Write ``text`` to ``path`` atomically and return the resolved path.

    The parent directory is created when missing.  Readers either see the old
    content or the new content, never a partial write.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    handle, temp_name = tempfile.mkstemp(dir=str(target.parent),
                                         prefix=f".{target.name}.", suffix=".tmp")
    try:
        with os.fdopen(handle, "w", encoding=encoding) as stream:
            stream.write(text)
        os.replace(temp_name, target)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return target

"""Deterministic randomness helpers.

Every simulated component in the reproduction (LLM, VLM, data generator) must
be reproducible: given the same seed and the same inputs it must produce the
same outputs.  ``stable_hash`` provides a hash that is stable across Python
processes (unlike the builtin ``hash`` which is salted), and ``SeededRNG``
wraps ``random.Random`` with a couple of convenience draws used throughout the
code base.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")


def stable_hash(*parts: object, bits: int = 64) -> int:
    """Return a process-stable hash of ``parts``.

    Parameters
    ----------
    parts:
        Arbitrary objects; they are converted with ``repr`` and joined, so any
        objects with stable ``repr`` values are acceptable.
    bits:
        Number of bits to keep from the digest (default 64).
    """
    payload = "␟".join(repr(p) for p in parts).encode("utf-8")
    digest = hashlib.sha256(payload).hexdigest()
    return int(digest, 16) % (1 << bits)


class SeededRNG:
    """A small deterministic random generator used by simulated components."""

    def __init__(self, seed: object = 0):
        self._seed = stable_hash(seed)
        self._rng = random.Random(self._seed)

    @property
    def seed(self) -> int:
        """The integer seed this generator was constructed with."""
        return self._seed

    def fork(self, *parts: object) -> "SeededRNG":
        """Return a new generator deterministically derived from this one."""
        return SeededRNG(stable_hash(self._seed, *parts))

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._rng.randint(low, high)

    def choice(self, options: Sequence[T]) -> T:
        """Pick one element of ``options``."""
        if not options:
            raise ValueError("cannot choose from an empty sequence")
        return self._rng.choice(list(options))

    def sample(self, options: Sequence[T], k: int) -> list:
        """Pick ``k`` distinct elements (or all of them if fewer exist)."""
        pool = list(options)
        k = min(k, len(pool))
        return self._rng.sample(pool, k)

    def shuffle(self, items: Iterable[T]) -> list:
        """Return a shuffled copy of ``items``."""
        copied = list(items)
        self._rng.shuffle(copied)
        return copied

    def gauss(self, mu: float = 0.0, sigma: float = 1.0) -> float:
        """Gaussian draw."""
        return self._rng.gauss(mu, sigma)

    def chance(self, probability: float) -> bool:
        """Return True with the given probability."""
        return self._rng.random() < probability

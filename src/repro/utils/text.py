"""Small text helpers shared by the simulated models and the NL parser."""

from __future__ import annotations

import re
from typing import Iterable, List

_WORD_RE = re.compile(r"[A-Za-z0-9]+(?:'[A-Za-z0-9]+)*")

# A conservative English stopword list; enough for keyword extraction in the
# simulated models without pulling in external NLP dependencies.
STOPWORDS = frozenset(
    """
    a an the and or but if then else of to in on for with without by at from
    as is are was were be been being this that these those it its his her
    their our your my me we you they them he she i do does did done not no
    so such than too very can could should would will shall may might must
    about into over under between against during before after above below up
    down out off again further once here there when where why how all any
    both each few more most other some own same only just also
    """.split()
)


def tokenize(text: str, lowercase: bool = True) -> List[str]:
    """Split ``text`` into word tokens.

    >>> tokenize("Guilty by Suspicion (1991)")
    ['guilty', 'by', 'suspicion', '1991']
    """
    tokens = _WORD_RE.findall(text or "")
    if lowercase:
        tokens = [t.lower() for t in tokens]
    return tokens


def content_words(text: str) -> List[str]:
    """Tokenize and drop stopwords."""
    return [t for t in tokenize(text) if t not in STOPWORDS]


def normalize(text: str) -> str:
    """Lowercase and collapse whitespace; used for fuzzy keyword matching."""
    return re.sub(r"\s+", " ", (text or "").strip().lower())


def truncate(text: str, limit: int = 120, ellipsis: str = "...") -> str:
    """Truncate ``text`` to at most ``limit`` characters."""
    if text is None:
        return ""
    if len(text) <= limit:
        return text
    if limit <= len(ellipsis):
        return text[:limit]
    return text[: limit - len(ellipsis)] + ellipsis


def sentences(text: str) -> List[str]:
    """A very small sentence splitter (periods, question marks, exclamations)."""
    parts = re.split(r"(?<=[.!?])\s+", (text or "").strip())
    return [p.strip() for p in parts if p.strip()]


def snake_case(name: str) -> str:
    """Convert an arbitrary phrase into a snake_case identifier."""
    words = tokenize(name)
    return "_".join(words) if words else "unnamed"


def join_names(names: Iterable[str], conjunction: str = "and") -> str:
    """Join names into natural language: ``a, b and c``."""
    items = [n for n in names if n]
    if not items:
        return ""
    if len(items) == 1:
        return items[0]
    return ", ".join(items[:-1]) + f" {conjunction} " + items[-1]


def estimate_tokens(text: str) -> int:
    """Approximate an LLM token count for cost accounting.

    Uses the common ~4 characters per token heuristic, with a floor of one
    token for non-empty text.
    """
    if not text:
        return 0
    return max(1, len(text) // 4)
